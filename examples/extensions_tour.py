#!/usr/bin/env python3
"""Tour of the extensions the paper sketches but does not evaluate.

Runs, on one workload:

1. the plain energy-aware Heuristic (the paper's online scheduler),
2. the prediction-augmented Heuristic (Section 3.3's future-work idea),
3. the covering-subset scheduler (Section 1's Hadoop "Set-Cover" combo),
4. the Heuristic behind a power-aware block cache (Zhu & Zhou),
5. write off-loading on a write-heavy variant of the workload
   (the Section 2.1 write-path assumption, made executable).

Run with::

    python examples/extensions_tour.py
"""

from dataclasses import replace

from repro import (
    CelloLikeConfig,
    HeuristicScheduler,
    SimulationConfig,
    Workload,
    ZipfOriginalUniformReplicas,
    always_on_baseline,
    generate_cello_like,
    simulate,
)
from repro.analysis.tables import format_table
from repro.cache import PowerAwareLRUCache
from repro.core import (
    CoveringSetScheduler,
    PredictiveHeuristicScheduler,
    WriteOffloadingScheduler,
)
from repro.power import PAPER_EVAL

NUM_DISKS = 27
SCALE = 0.15


def main() -> None:
    rows = []

    # --- read-only workload -------------------------------------------
    workload = Workload(
        generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1)
    )
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=NUM_DISKS,
        seed=11,
    )
    config = SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL)
    baseline = always_on_baseline(requests, catalog, config)

    def record(label, report, extra=""):
        rows.append(
            [
                label,
                f"{report.total_energy / baseline.total_energy:.3f}",
                f"{report.mean_response_time * 1000:.0f}",
                extra,
            ]
        )

    record(
        "Heuristic (paper)",
        simulate(requests, catalog, HeuristicScheduler(), config),
    )
    record(
        "+ prediction",
        simulate(requests, catalog, PredictiveHeuristicScheduler(), config),
    )
    covering = CoveringSetScheduler(catalog)
    record(
        f"+ covering subset ({len(covering.covering)} disks)",
        simulate(requests, catalog, covering, config),
    )
    cached_config = replace(
        config, cache_factory=lambda: PowerAwareLRUCache(800, scan_depth=16)
    )
    cached_report = simulate(
        requests, catalog, HeuristicScheduler(), cached_config
    )
    record(
        "+ PA-LRU cache (800 blocks)",
        cached_report,
        f"hit ratio {cached_report.cache_hit_ratio * 100:.0f}%",
    )

    # --- write-heavy variant ------------------------------------------
    write_config = CelloLikeConfig(
        num_requests=int(70_000 * SCALE),
        num_data=int(30_000 * SCALE),
        burst_rate=120.0 * SCALE,
        quiet_rate=3.0 * SCALE,
        read_fraction=0.3,
    )
    writes = Workload(
        generate_cello_like(write_config, seed=2), include_writes=True
    )
    wrequests, wcatalog = writes.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=NUM_DISKS,
        seed=11,
    )
    wbaseline = always_on_baseline(wrequests, wcatalog, config)
    plain = simulate(wrequests, wcatalog, HeuristicScheduler(), config)
    offloader = WriteOffloadingScheduler(HeuristicScheduler())
    offloaded = simulate(wrequests, wcatalog, offloader, config)
    rows.append(
        [
            "Heuristic, 70% writes",
            f"{plain.total_energy / wbaseline.total_energy:.3f}",
            f"{plain.mean_response_time * 1000:.0f}",
            "",
        ]
    )
    rows.append(
        [
            "+ write off-loading",
            f"{offloaded.total_energy / wbaseline.total_energy:.3f}",
            f"{offloaded.mean_response_time * 1000:.0f}",
            f"{offloader.total_offloaded} writes diverted",
        ]
    )

    print(
        format_table(
            ["configuration", "energy vs always-on", "mean resp (ms)", "notes"],
            rows,
            title=f"extensions tour (cello-like @ {SCALE}, {NUM_DISKS} disks, rf=3)",
        )
    )


if __name__ == "__main__":
    main()
