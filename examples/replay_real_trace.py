#!/usr/bin/env python3
"""Replay a real block-level trace file through the energy-aware stack.

Accepts either the HP Cello text format or the UMass/SPC format (the
published Financial1 trace). If no file is given, a small SPC-format
sample is synthesised on the fly so the example is runnable offline.

Usage::

    python examples/replay_real_trace.py [--format spc|cello] [trace-file]
"""

import argparse
import io
import random
import sys

from repro import (
    HeuristicScheduler,
    SimulationConfig,
    StaticScheduler,
    Workload,
    ZipfOriginalUniformReplicas,
    always_on_baseline,
    simulate,
)
from repro.analysis.tables import format_table
from repro.power import PAPER_EVAL
from repro.traces import parse_hp_cello, parse_spc

NUM_DISKS = 20
REPLICATION = 3


def synthesise_spc_sample(num_lines: int = 8000) -> io.StringIO:
    """A small self-contained SPC-format stream (OLTP-ish)."""
    rng = random.Random(42)
    lines = []
    t = 0.0
    for _ in range(num_lines):
        t += rng.expovariate(4.0)
        asu = rng.randrange(4)
        lba = rng.randrange(2000) * 8
        op = "r" if rng.random() < 0.8 else "w"
        lines.append(f"{asu},{lba},4096,{op},{t:.4f}")
    return io.StringIO("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="path to the trace file")
    parser.add_argument(
        "--format", choices=("spc", "cello"), default="spc", dest="fmt"
    )
    args = parser.parse_args(argv)

    if args.trace:
        with open(args.trace) as handle:
            records = (
                parse_spc(handle) if args.fmt == "spc" else parse_hp_cello(handle)
            )
        print(f"parsed {len(records)} records from {args.trace}")
    else:
        print("no trace file given; synthesising a small SPC-format sample")
        records = parse_spc(synthesise_spc_sample())

    workload = Workload(records)
    print("workload:", workload.stats().describe(), "\n")

    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=REPLICATION),
        num_disks=NUM_DISKS,
        seed=5,
    )
    config = SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL)
    baseline = always_on_baseline(requests, catalog, config)

    rows = []
    for scheduler in (StaticScheduler(), HeuristicScheduler()):
        report = simulate(requests, catalog, scheduler, config)
        rows.append(
            [
                report.scheduler_name,
                f"{report.normalized_energy(baseline.total_energy):.3f}",
                report.spin_operations,
                f"{report.mean_response_time * 1000:.0f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "energy vs always-on", "spin ops", "mean resp (ms)"],
            rows,
            title=f"{NUM_DISKS} disks, replication {REPLICATION}",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
