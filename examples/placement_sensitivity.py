#!/usr/bin/env python3
"""Placement sensitivity study (the paper's Appendix A.1 / Fig. 10).

Sweeps the data-locality exponent z (0 = uniform originals, 1 = Zipf) and
the replication factor, and shows that:

* Static and Random only save energy when the placement is skewed;
* the energy-aware Heuristic keeps saving even under uniform placement,
  as long as it has replicas to choose from.

Run with::

    python examples/placement_sensitivity.py
"""

from repro import (
    CelloLikeConfig,
    HeuristicScheduler,
    RandomScheduler,
    SimulationConfig,
    StaticScheduler,
    Workload,
    ZipfOriginalUniformReplicas,
    always_on_baseline,
    generate_cello_like,
    simulate,
)
from repro.analysis.tables import format_series_table
from repro.power import PAPER_EVAL

NUM_DISKS = 27
SCALE = 0.15
Z_GRID = (0.0, 0.5, 1.0)
RF_GRID = (1, 3, 5)


def main() -> None:
    workload = Workload(
        generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1)
    )
    config = SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL)

    for scheduler_factory, label in (
        (StaticScheduler, "Static"),
        (lambda: RandomScheduler(seed=3), "Random"),
        (HeuristicScheduler, "Energy-aware Heuristic"),
    ):
        series = {}
        for rf in RF_GRID:
            values = []
            for z in Z_GRID:
                requests, catalog = workload.bind(
                    ZipfOriginalUniformReplicas(
                        replication_factor=rf, zipf_exponent=z
                    ),
                    num_disks=NUM_DISKS,
                    seed=11,
                )
                baseline = always_on_baseline(requests, catalog, config)
                report = simulate(
                    requests, catalog, scheduler_factory(), config
                )
                values.append(report.total_energy / baseline.total_energy)
            series[f"rf={rf}"] = values
        print(
            format_series_table(
                "z",
                Z_GRID,
                series,
                title=f"[{label}] energy vs always-on, by locality and replication",
            )
        )
        print()

    print(
        "reading: Static/Random need z -> 1 to save anything; the\n"
        "Heuristic at rf=5 saves heavily even at z=0 (uniform placement),\n"
        "which is the paper's Appendix A.1 conclusion."
    )


if __name__ == "__main__":
    main()
