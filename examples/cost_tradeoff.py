#!/usr/bin/env python3
"""Tune the Heuristic's cost function (the paper's Appendix A.2 / Fig. 11).

Sweeps alpha (energy weight) for several beta (unit factor) values at
replication 3 and prints energy and mean response time, both normalised
to the alpha = 0 run — reproducing the trade-off plot the paper uses to
justify its alpha=0.2, beta=100 operating point.

Run with::

    python examples/cost_tradeoff.py
"""

from repro import (
    CelloLikeConfig,
    CostFunction,
    HeuristicScheduler,
    SimulationConfig,
    Workload,
    ZipfOriginalUniformReplicas,
    generate_cello_like,
    simulate,
)
from repro.analysis.tables import format_series_table
from repro.power import PAPER_EVAL

NUM_DISKS = 27
SCALE = 0.15
ALPHAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
BETAS = (1.0, 100.0, 1000.0)


def main() -> None:
    workload = Workload(
        generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1)
    )
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=NUM_DISKS,
        seed=11,
    )
    config = SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL)

    energy_series = {}
    response_series = {}
    for beta in BETAS:
        energies = []
        responses = []
        for alpha in ALPHAS:
            scheduler = HeuristicScheduler(
                CostFunction(alpha=alpha, beta=beta)
            )
            report = simulate(requests, catalog, scheduler, config)
            energies.append(report.total_energy)
            responses.append(report.mean_response_time)
        energy_series[f"beta={beta:g}"] = [e / energies[0] for e in energies]
        response_series[f"beta={beta:g}"] = [
            r / responses[0] for r in responses
        ]

    print(
        format_series_table(
            "alpha",
            ALPHAS,
            energy_series,
            title="energy, normalised to alpha=0",
        )
    )
    print()
    print(
        format_series_table(
            "alpha",
            ALPHAS,
            response_series,
            title="mean response time, normalised to alpha=0",
        )
    )
    print()
    print(
        "reading: raising alpha trades response time for energy; smaller\n"
        "beta makes the energy term dominate sooner. The paper picks\n"
        "alpha=0.2, beta=100 as the balanced operating point."
    )


if __name__ == "__main__":
    main()
