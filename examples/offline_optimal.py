#!/usr/bin/env python3
"""Walk through the paper's worked example (Figs. 2-4) step by step.

Reconstructs the six-request / four-disk instance, evaluates the paper's
schedules A, B and C, builds the MWIS conflict graph, solves it exactly
and with the GWMIN greedy, and shows that the derived schedule matches
the optimal schedule C with energy 19.

Run with::

    python examples/offline_optimal.py
"""

from repro import MWISOfflineScheduler, Request, SchedulingProblem
from repro.core import OfflineEvaluator
from repro.placement import PlacementCatalog
from repro.power import PAPER_UNIT
from repro.types import Assignment


def build_problem() -> SchedulingProblem:
    """The Fig. 2/3 instance (0-based ids).

    Placement: d1={b1,b2,b3,b5}, d2={b2,b3}, d3={b4,b6}, d4={b3,b4,b5,b6};
    request ri wants bi, arrivals at 0, 1, 3, 5, 12, 13.
    """
    catalog = PlacementCatalog(
        {
            0: [0],
            1: [0, 1],
            2: [0, 1, 3],
            3: [2, 3],
            4: [0, 3],
            5: [2, 3],
        }
    )
    requests = [
        Request(time=t, request_id=i, data_id=i)
        for i, t in enumerate([0.0, 1.0, 3.0, 5.0, 12.0, 13.0])
    ]
    return SchedulingProblem.build(requests, catalog, PAPER_UNIT, 4)


def show_schedule(name: str, problem, mapping) -> None:
    assignment = Assignment.from_mapping(problem.requests, mapping)
    evaluation = OfflineEvaluator(problem).evaluate(assignment)
    chains = {
        f"d{disk + 1}": [f"r{r.request_id + 1}" for r in chain]
        for disk, chain in sorted(assignment.chains().items())
    }
    print(f"schedule {name}: energy = {evaluation.objective_energy:g}  {chains}")


def main() -> None:
    problem = build_problem()
    evaluator = OfflineEvaluator(problem)
    print(
        "instance: 6 requests, 4 disks, unit power model "
        f"(TB = {problem.profile.breakeven_time:g}, "
        f"EPmax = {problem.profile.max_request_energy:g})"
    )
    print(f"always-on energy over the horizon: {evaluator.always_on_energy():g}\n")

    # The schedules discussed in Section 2.3 (0-based request/disk ids).
    show_schedule("B", problem, {0: 0, 1: 0, 2: 0, 4: 0, 3: 2, 5: 2})
    show_schedule("C (optimal)", problem, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3})
    print()

    # Step 1 + 2: build the conflict graph of saving terms X(i, j, k).
    scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=None)
    graph, terms = scheduler.build_graph(problem)
    print(f"conflict graph: {len(graph)} nodes, {graph.num_edges} edges")
    for term in sorted(terms, key=lambda t: (t.disk, t.predecessor)):
        print(
            f"  X(r{term.predecessor + 1}, r{term.successor + 1}, "
            f"d{term.disk + 1}) = {term.weight:g}"
        )
    print()

    # Step 3 + 4: solve and derive, with both the paper's greedy and exact.
    for method in ("gwmin", "exact"):
        result = MWISOfflineScheduler(
            method=method, neighborhood=None
        ).schedule_detailed(problem)
        evaluation = OfflineEvaluator(problem).evaluate(result.assignment)
        selected = ", ".join(
            f"X(r{t.predecessor + 1},r{t.successor + 1},d{t.disk + 1})"
            for t in result.selected
        )
        print(
            f"{method:>6}: selected {{{selected}}} "
            f"(saving {result.estimated_saving:g}) -> "
            f"schedule energy {evaluation.objective_energy:g}"
        )


if __name__ == "__main__":
    main()
