#!/usr/bin/env python3
"""Quickstart: replay a bursty trace through every scheduler.

Builds a scaled Cello-like workload on a small disk array, runs the two
baselines and the three energy-aware schedulers of the paper, and prints
an energy / spin-operations / response-time comparison normalised to the
always-on configuration.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CelloLikeConfig,
    HeuristicScheduler,
    MWISOfflineScheduler,
    RandomScheduler,
    SimulationConfig,
    StaticScheduler,
    WSCBatchScheduler,
    Workload,
    ZipfOriginalUniformReplicas,
    always_on_baseline,
    generate_cello_like,
    run_offline,
    simulate,
)
from repro.analysis.tables import format_table
from repro.power import PAPER_EVAL

NUM_DISKS = 36
REPLICATION = 3
SCALE = 0.2  # fifth of the paper's 70 000 requests; same per-disk density


def main() -> None:
    # 1. Synthesise a bursty (Cello-like) trace and bind it to a placement:
    #    Zipf originals + uniform replicas, the paper's Section 4.2 layout.
    records = generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1)
    workload = Workload(records)
    print("workload:", workload.stats().describe())

    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=REPLICATION),
        num_disks=NUM_DISKS,
        seed=7,
    )

    # 2. One simulation config shared by every run: Barracuda-like power
    #    numbers, 2CPM power management, analytic disk service times.
    config = SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL)
    baseline = always_on_baseline(requests, catalog, config)
    print(f"always-on energy: {baseline.total_energy / 1e6:.2f} MJ\n")

    # 3. Run every scheduler and tabulate.
    rows = []
    for scheduler in (
        StaticScheduler(),
        RandomScheduler(seed=3),
        HeuristicScheduler(),
        WSCBatchScheduler(),
    ):
        report = simulate(requests, catalog, scheduler, config)
        rows.append(
            [
                report.scheduler_name,
                f"{report.normalized_energy(baseline.total_energy):.3f}",
                report.spin_operations,
                f"{report.mean_response_time * 1000:.0f}",
            ]
        )

    # The offline MWIS scheduler sees all arrivals in advance and is
    # evaluated analytically (no spin-up delays by construction).
    evaluation = run_offline(
        requests, catalog, MWISOfflineScheduler(neighborhood=4), config
    )
    rows.append(
        [
            "MWIS(offline)",
            f"{evaluation.normalized_energy:.3f}",
            evaluation.report.spin_operations,
            "n/a (offline)",
        ]
    )

    print(
        format_table(
            ["scheduler", "energy vs always-on", "spin ops", "mean resp (ms)"],
            rows,
            title=f"cello-like trace, {NUM_DISKS} disks, replication {REPLICATION}",
        )
    )


if __name__ == "__main__":
    main()
