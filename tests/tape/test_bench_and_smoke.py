"""Bench-registry grouping and the tape smoke digest CLI.

``repro-storage bench list`` groups bench ids by family so the tape
benches are discoverable next to the figure/ablation/serve tiers; the
smoke CLI pins the tape_tier sweep digest the same way the kernel and
shard smokes do. Both contracts are cheap to regress and load-bearing
for CI, so they get their own tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import pytest

from repro.cli import main as cli_main
from repro.experiments.harness import bench as bench_mod
from repro.experiments.tape_smoke import digest_tape_tier
from repro.experiments.tape_smoke import main as smoke_main

#: Tiny sweep: quick enough to run three times in one test session.
SMOKE_ARGS = ["--scale", "0.02", "--seed", "11"]


def test_bench_list_groups_ids_by_family(
    capsys: "pytest.CaptureFixture[str]",
) -> None:
    assert cli_main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    headers = [line for line in lines if line and not line.startswith(" ")]
    # Families print in registry order, each id indented under its own.
    assert headers == [f"{family}:" for family in bench_mod.BENCH_FAMILIES]
    grouped: Dict[str, List[str]] = {}
    family = ""
    for line in lines:
        if not line:
            continue
        if not line.startswith(" "):
            family = line.rstrip(":")
            grouped[family] = []
        else:
            grouped[family].append(line.split()[0])
    assert "tape_tier" in grouped["tape"]
    assert "serve_sweep" in grouped["serve"]
    assert "fault_sweep" in grouped["ablations"]
    assert "headline" in grouped["figures"]
    # Grouping must not drop or duplicate ids.
    flat: List[str] = [bench_id for ids in grouped.values() for bench_id in ids]
    assert sorted(flat) == sorted(bench_mod.BENCHES)


def test_every_bench_family_is_registered() -> None:
    for definition in bench_mod.BENCHES.values():
        assert definition.family in bench_mod.BENCH_FAMILIES


def test_smoke_digest_is_stable_and_pins_round_trip(
    tmp_path: Path, capsys: "pytest.CaptureFixture[str]"
) -> None:
    pin = tmp_path / "tape_smoke.sha256"
    assert smoke_main([*SMOKE_ARGS, "--write", str(pin)]) == 0
    written = pin.read_text().strip()
    assert written == digest_tape_tier(0.02, 11)
    assert smoke_main([*SMOKE_ARGS, "--check", str(pin)]) == 0
    assert "pin ok" in capsys.readouterr().out


def test_smoke_check_fails_on_a_stale_pin(
    tmp_path: Path, capsys: "pytest.CaptureFixture[str]"
) -> None:
    pin = tmp_path / "tape_smoke.sha256"
    pin.write_text("0" * 64 + "\n")
    assert smoke_main([*SMOKE_ARGS, "--check", str(pin)]) == 1
    assert "digest mismatch" in capsys.readouterr().err


def test_committed_pin_matches_the_default_smoke_cell() -> None:
    pinned = (
        Path(__file__).parent / "data" / "tape_smoke.sha256"
    ).read_text().strip()
    assert digest_tape_tier(0.05, 11) == pinned
