"""Unit tests for the tape drive state machine.

Everything runs on the :data:`~repro.tape.profile.TAPE_UNIT` teaching
profile — instant free mounts, 1 m/s wind, 1 W in every mounted state,
a 10 s mount breakeven — so seek time, seek distance and seek energy
coincide numerically and every expected value below can be computed by
hand.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.tape.drive import TapeDrive
from repro.tape.profile import TAPE_UNIT
from repro.tape.sequencer import make_sequencer
from repro.tape.states import TapePowerState
from repro.types import OpKind, Request


def _request(request_id: int, time: float = 0.0, size_bytes: int = 1) -> Request:
    return Request(
        time=time,
        request_id=request_id,
        data_id=request_id,
        size_bytes=size_bytes,
        op=OpKind.READ,
    )


def _drive(
    engine: SimulationEngine, sequencer: str = "nearest"
) -> Tuple[TapeDrive, List[Tuple[int, float]]]:
    completions: List[Tuple[int, float]] = []

    def on_complete(request: Request, completion_id: int, now: float) -> None:
        completions.append((request.request_id, now))

    drive = TapeDrive(
        drive_id=0,
        engine=engine,
        profile=TAPE_UNIT,
        sequencer=make_sequencer(sequencer),
        on_complete=on_complete,
    )
    return drive, completions


def test_batch_is_served_in_planned_order_with_exact_times() -> None:
    engine = SimulationEngine()
    drive, completions = _drive(engine, "nearest")
    drive.submit(_request(0), 10.0)
    drive.submit(_request(1), 5.0)
    drive.submit(_request(2), 20.0)
    engine.run(until=40.0)
    # The unit profile mounts instantly, so request 0 is planned alone
    # and served first (head 0 -> 10 m); requests 1 and 2 arrive during
    # that seek and form the next batch, which nearest orders 5 -> 20
    # from the 10 m head. Seeks run at 1 m/s with one-byte (nanosecond)
    # reads.
    assert [request_id for request_id, _ in completions] == [0, 1, 2]
    assert [now for _, now in completions] == pytest.approx([10.0, 15.0, 30.0])
    assert drive.head_position_m == 20.0
    assert drive.stats.seek_distance_m == 30.0
    assert drive.stats.mounts == 1
    assert drive.queue_length == 0


def test_idle_drive_unmounts_at_breakeven_and_rewinds() -> None:
    engine = SimulationEngine()
    drive, _ = _drive(engine)
    drive.submit(_request(0), 8.0)
    engine.run(until=8.0 + TAPE_UNIT.mount_breakeven_time + 1.0)
    assert drive.state is TapePowerState.UNMOUNTED
    assert drive.head_position_m == 0.0
    assert drive.stats.unmounts == 1
    # Loaded-idle time is exactly the breakeven window (10 s).
    assert drive.stats.state_time[TapePowerState.LOADED] == pytest.approx(
        TAPE_UNIT.mount_breakeven_time
    )


def test_arrival_before_breakeven_cancels_the_unmount() -> None:
    engine = SimulationEngine()
    drive, completions = _drive(engine)
    drive.submit(_request(0), 4.0)
    engine.schedule(
        4.0 + TAPE_UNIT.mount_breakeven_time / 2,
        lambda: drive.submit(_request(1), 6.0),
    )
    engine.run(until=60.0)
    assert [request_id for request_id, _ in completions] == [0, 1]
    assert drive.stats.mounts == 1  # never unmounted in between
    # The drive unmounts after the *second* idle breakeven only.
    assert drive.stats.unmounts == 1


def test_mid_batch_arrivals_wait_for_the_next_planning_round() -> None:
    engine = SimulationEngine()
    drive, completions = _drive(engine, "nearest")
    drive.submit(_request(0), 50.0)
    # Arrives at t=2 while the drive is winding to 50 m; position 1 m is
    # much closer but the in-flight plan is not reshuffled.
    engine.schedule(2.0, lambda: drive.submit(_request(1), 1.0))
    engine.run(until=200.0)
    assert [request_id for request_id, _ in completions] == [0, 1]
    assert completions[0][1] == pytest.approx(50.0)
    assert completions[1][1] == pytest.approx(50.0 + 49.0)


def test_unit_profile_energy_is_readable_by_hand() -> None:
    engine = SimulationEngine()
    drive, _ = _drive(engine)
    drive.submit(_request(0), 30.0)
    horizon = 30.0 + TAPE_UNIT.mount_breakeven_time  # unmount fires here
    engine.run(until=horizon)
    drive.finalize()
    # 30 s seeking at 1 W + 10 s loaded-idle at 1 W (the nanosecond read
    # shaves the idle tail); mounts and unmounts are free on the unit
    # profile.
    assert drive.stats.energy == pytest.approx(40.0)
    assert drive.stats.total_time == pytest.approx(horizon)


def test_submit_rejects_positions_off_the_tape() -> None:
    engine = SimulationEngine()
    drive, _ = _drive(engine)
    with pytest.raises(ConfigurationError):
        drive.submit(_request(0), TAPE_UNIT.tape_length + 1.0)
    with pytest.raises(ConfigurationError):
        drive.submit(_request(1), -0.5)
