"""Property tests for the LTSP sequencer family.

The three contracts every registered sequencer honours, plus the exact
optimality the ``ltsp`` batch dynamic program claims:

* a plan is a permutation — every pending request is served exactly
  once, none invented, none dropped;
* a plan never winds more tape than serving the batch in FIFO order
  (the base-class guard makes this structural, not statistical);
* planning is a pure function — the same head position and positions
  produce the byte-identical order, across calls and across fresh
  sequencer instances (what makes same-seed runs reproducible).
"""

from __future__ import annotations

from itertools import permutations
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tape.sequencer import (
    LtspSequencer,
    NearestSequencer,
    make_sequencer,
    sequencer_names,
    total_seek_distance,
)

#: Tape positions in metres on a synthetic 100 m cartridge. Fractions
#: of 1/8 keep every arithmetic step exact in binary floating point.
POSITIONS = st.lists(
    st.integers(min_value=0, max_value=800).map(lambda n: n / 8.0),
    min_size=0,
    max_size=40,
)

HEADS = st.integers(min_value=0, max_value=800).map(lambda n: n / 8.0)

ALL_SEQUENCERS = sorted(sequencer_names())


@pytest.mark.parametrize("name", ALL_SEQUENCERS)
@given(head=HEADS, positions=POSITIONS)
@settings(max_examples=150, deadline=None)
def test_plan_serves_every_request_exactly_once(
    name: str, head: float, positions: List[float]
) -> None:
    order = make_sequencer(name).plan(head, positions)
    assert sorted(order) == list(range(len(positions)))


@pytest.mark.parametrize("name", ALL_SEQUENCERS)
@given(head=HEADS, positions=POSITIONS)
@settings(max_examples=150, deadline=None)
def test_plan_never_winds_more_tape_than_fifo(
    name: str, head: float, positions: List[float]
) -> None:
    order = make_sequencer(name).plan(head, positions)
    planned = total_seek_distance(head, positions, order)
    fifo = total_seek_distance(head, positions)
    assert planned <= fifo


@pytest.mark.parametrize("name", ALL_SEQUENCERS)
@given(head=HEADS, positions=POSITIONS)
@settings(max_examples=100, deadline=None)
def test_plan_is_deterministic_across_instances(
    name: str, head: float, positions: List[float]
) -> None:
    sequencer = make_sequencer(name)
    first = sequencer.plan(head, positions)
    assert sequencer.plan(head, positions) == first
    assert make_sequencer(name).plan(head, positions) == first


def _batch_latency(head: float, positions: List[float], order: List[int]) -> float:
    """Sum of completion times (in seconds at unit wind speed, zero
    read time) of serving ``positions`` in ``order``."""
    at = head
    elapsed = 0.0
    total = 0.0
    for index in order:
        elapsed += abs(positions[index] - at)
        at = positions[index]
        total += elapsed
    return total


@given(
    head=st.integers(min_value=0, max_value=64).map(float),
    positions=st.lists(
        st.integers(min_value=0, max_value=64).map(float),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=150, deadline=None)
def test_ltsp_dp_matches_brute_force_minimum_latency(
    head: float, positions: List[float]
) -> None:
    """The batch DP attains the exhaustive minimum sum of completion
    times (``_dp_order`` is checked below the FIFO guard on purpose —
    the guard trades latency optimality for the seek-distance bound)."""
    dp_order = LtspSequencer()._dp_order(head, positions)
    assert sorted(dp_order) == list(range(len(positions)))
    best = min(
        _batch_latency(head, positions, list(order))
        for order in permutations(range(len(positions)))
    )
    assert _batch_latency(head, positions, dp_order) == pytest.approx(best)


@given(head=HEADS, positions=POSITIONS)
@settings(max_examples=100, deadline=None)
def test_ltsp_above_cutoff_falls_back_to_nearest(
    head: float, positions: List[float]
) -> None:
    capped = LtspSequencer(dp_cutoff=0)
    assert capped.plan(head, positions) == NearestSequencer().plan(
        head, positions
    )


def test_registry_rejects_unknown_names() -> None:
    with pytest.raises(ConfigurationError):
        make_sequencer("zigzag")


def test_registry_contains_the_documented_families() -> None:
    assert {"fifo", "nearest", "scan", "ltsp"} <= set(sequencer_names())
