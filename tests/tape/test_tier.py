"""Tiered disk+tape system tests: routing, promotion, reports, bytes.

Small deterministic workloads (a few hundred requests over a few dozen
ids) drive the full :class:`~repro.tape.tier.TieredStorageSystem` stack
— engine, disk tier, tape drives, sequencer — and check the accounting
identities, the report payload contract (the ``tape`` key is strictly
additive), and same-seed byte stability.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core.heuristic import HeuristicScheduler
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.harness.serialize import (
    canonical_report_json,
    report_from_payload,
    report_to_payload,
)
from repro.placement.catalog import PlacementCatalog
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.placement.zipf import ZipfSampler
from repro.sim.config import SimulationConfig
from repro.sim.runner import simulate
from repro.tape.config import TierConfig
from repro.tape.tier import TieredStorageSystem
from repro.types import OpKind, Request

NUM_DISKS = 4
NUM_IDS = 60
NUM_REQUESTS = 250


def _workload(seed: int = 3) -> List[Request]:
    arrival_rng = random.Random(seed)
    sampler = ZipfSampler(NUM_IDS, 1.0)
    sample_rng = random.Random(seed + 1)
    requests: List[Request] = []
    time_s = 0.0
    for request_id in range(NUM_REQUESTS):
        time_s += arrival_rng.expovariate(2.0)
        requests.append(
            Request(
                time=time_s,
                request_id=request_id,
                data_id=sampler.sample(sample_rng),
                size_bytes=256 * 1024,
                op=OpKind.READ,
            )
        )
    return requests


def _catalog(seed: int = 3) -> PlacementCatalog:
    return ZipfOriginalUniformReplicas(replication_factor=2).place(
        list(range(NUM_IDS)), NUM_DISKS, random.Random(seed + 2)
    )


def _config(hot_fraction: float = 0.2, sequencer: str = "nearest") -> SimulationConfig:
    return SimulationConfig(
        num_disks=NUM_DISKS,
        seed=7,
        tier=TierConfig(hot_fraction=hot_fraction, sequencer=sequencer),
    )


def test_tier_split_accounts_for_every_request() -> None:
    report = simulate(_workload(), _catalog(), HeuristicScheduler(), _config())
    tape = report.tape
    assert tape is not None
    assert tape.requests_to_disk + tape.requests_to_tape == report.requests_offered
    assert tape.requests_to_tape > 0  # the cold tail actually goes to tape
    # The drain slack lets the planned sequencer finish everything.
    assert tape.tape_requests_completed == tape.requests_to_tape
    assert report.requests_completed == report.requests_offered
    assert len(tape.tape_response_times) == tape.tape_requests_completed
    assert tape.mounts >= 1
    assert tape.tape_energy > 0.0
    assert report.total_energy > tape.tape_energy  # disks still burn joules


def test_promote_on_access_keeps_the_hot_set_bounded() -> None:
    system = TieredStorageSystem(_catalog(), HeuristicScheduler(), _config(0.1))
    report = system.run(_workload())
    tape = report.tape
    assert tape is not None
    assert tape.promotions > 0
    assert tape.demotions == tape.promotions  # the set was full at seed time
    assert len(system.hot_ids) <= tape.hot_capacity
    assert "+tape-nearest" in report.scheduler_name


def test_disk_only_payload_has_no_tape_key() -> None:
    config = SimulationConfig(num_disks=NUM_DISKS, seed=7)
    report = simulate(_workload(), _catalog(), HeuristicScheduler(), config)
    assert report.tape is None
    assert "tape" not in report_to_payload(report)


def test_tiered_report_round_trips_through_the_payload() -> None:
    report = simulate(_workload(), _catalog(), HeuristicScheduler(), _config())
    restored = report_from_payload(report_to_payload(report))
    assert restored.tape is not None
    assert canonical_report_json(restored) == canonical_report_json(report)
    assert restored.tape.sequencer == "nearest"
    assert restored.tape.state_time_s == dict(report.tape.state_time_s)  # type: ignore[union-attr]


@pytest.mark.parametrize("sequencer", ["fifo", "nearest", "scan", "ltsp"])
def test_same_seed_tiered_runs_are_byte_identical(sequencer: str) -> None:
    first = simulate(
        _workload(), _catalog(), HeuristicScheduler(), _config(0.15, sequencer)
    )
    second = simulate(
        _workload(), _catalog(), HeuristicScheduler(), _config(0.15, sequencer)
    )
    assert canonical_report_json(first) == canonical_report_json(second)


def test_tiered_system_requires_a_tier_config() -> None:
    with pytest.raises(ConfigurationError):
        TieredStorageSystem(
            _catalog(),
            HeuristicScheduler(),
            SimulationConfig(num_disks=NUM_DISKS, seed=7),
        )


def test_tiered_system_is_single_use() -> None:
    system = TieredStorageSystem(_catalog(), HeuristicScheduler(), _config())
    system.run(_workload())
    with pytest.raises(SimulationError):
        system.run(_workload())
