"""Whole-program rule families: determinism (RPL1xx), asyncio (RPL2xx),
layering (RPL3xx), and the interprocedural half of RPL007.

Single-module behaviour is driven through ``check_source`` with crafted
paths (the path decides which scopes the snippet lands in); cross-module
behaviour — call chains, import contracts — is driven through
``check_paths`` over synthetic packages built on ``tmp_path``.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.checks import check_paths, check_source

SIM_PATH = "src/repro/sim/engine.py"
ANALYSIS_PATH = "src/repro/analysis/agg.py"


def codes(source: str, path: str = SIM_PATH) -> List[str]:
    return [v.code for v in check_source(textwrap.dedent(source), path=path)]


def project(tmp_path, files: Dict[str, str]):
    """Materialise ``files`` under ``tmp_path/src`` and lint the tree.

    Package ``__init__.py`` files are created for every directory so the
    filesystem-based module naming resolves dotted names.
    """
    root = tmp_path / "src"
    for relative, content in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
        package_dir = target.parent
        while package_dir != root:
            marker = package_dir / "__init__.py"
            if not marker.exists():
                marker.write_text("")
            package_dir = package_dir.parent
    return check_paths([root])


# ---------------------------------------------------------------- RPL101


def test_rpl101_flags_wall_clock_in_sim_function():
    source = """
        import time

        def advance(queue):
            return time.time()
    """
    assert "RPL101" in codes(source)


def test_rpl101_flags_aliased_import():
    source = """
        from time import monotonic

        def advance(queue):
            return monotonic()
    """
    assert "RPL101" in codes(source)


def test_rpl101_flags_import_time_call():
    source = """
        import time

        STARTED = time.time()
    """
    assert "RPL101" in codes(source)


def test_rpl101_ignores_code_outside_the_determinism_scope():
    source = """
        import time

        def advance(queue):
            return time.time()
    """
    assert "RPL101" not in codes(source, path=ANALYSIS_PATH)


def test_rpl101_follows_calls_into_helper_modules(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/sim/engine.py": """
                from repro.util.clock import stamp

                def advance(queue):
                    return stamp()
            """,
            "repro/util/clock.py": """
                import time

                def stamp():
                    return time.time()
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL101"]
    assert len(findings) == 1
    assert findings[0].path.endswith("clock.py")
    assert "repro.sim.engine.advance -> repro.util.clock.stamp" in (
        findings[0].message
    )


# ---------------------------------------------------------------- RPL102


def test_rpl102_flags_optional_seed_reaching_rng():
    source = """
        import random

        def simulate(seed=None):
            return random.Random(seed)
    """
    assert "RPL102" in codes(source)


def test_rpl102_flags_seed_keyword():
    source = """
        import numpy

        def simulate(seed=None):
            return numpy.random.default_rng(seed=seed)
    """
    assert "RPL102" in codes(source)


def test_rpl102_passes_with_a_concrete_default():
    source = """
        import random

        def simulate(seed=0):
            return random.Random(seed)
    """
    assert "RPL102" not in codes(source)


def test_rpl102_ignores_out_of_scope_modules():
    source = """
        import random

        def simulate(seed=None):
            return random.Random(seed)
    """
    assert "RPL102" not in codes(source, path=ANALYSIS_PATH)


# ---------------------------------------------------------------- RPL103


def test_rpl103_flags_set_iteration_in_serialiser():
    source = """
        def as_dict(flags):
            out = []
            for flag in {"a", "b"} | flags:
                out.append(flag)
            return out
    """
    assert "RPL103" in codes(source, path=ANALYSIS_PATH)


def test_rpl103_flags_list_materialisation_of_a_set():
    source = """
        def to_json(entries):
            return list(set(entries))
    """
    assert "RPL103" in codes(source, path=ANALYSIS_PATH)


def test_rpl103_passes_when_sorted():
    source = """
        def as_dict(flags):
            return sorted({"a", "b"} | flags)
    """
    assert "RPL103" not in codes(source, path=ANALYSIS_PATH)


def test_rpl103_ignores_non_serialisation_functions():
    source = """
        def shuffle(flags):
            return list(set(flags))
    """
    assert "RPL103" not in codes(source, path=ANALYSIS_PATH)


# ---------------------------------------------------------------- RPL201


def test_rpl201_flags_blocking_call_in_async_def():
    source = """
        import time

        async def pump(queue):
            time.sleep(0.1)
    """
    assert "RPL201" in codes(source, path=ANALYSIS_PATH)


def test_rpl201_passes_on_asyncio_sleep():
    source = """
        import asyncio

        async def pump(queue):
            await asyncio.sleep(0.1)
    """
    assert "RPL201" not in codes(source, path=ANALYSIS_PATH)


def test_rpl201_follows_sync_helpers_called_from_async(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/serve/app.py": """
                from repro.util.net import fetch

                async def pump(queue):
                    return fetch()
            """,
            "repro/util/net.py": """
                import time

                def fetch():
                    time.sleep(1.0)
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL201"]
    assert len(findings) == 1
    assert findings[0].path.endswith("net.py")
    assert "repro.serve.app.pump -> repro.util.net.fetch" in findings[0].message


def test_rpl201_does_not_cross_into_other_async_functions():
    # ``await helper()`` runs on the loop, not inline: helper is its own
    # root, and only *its* body decides whether it blocks.
    source = """
        import asyncio

        async def helper():
            await asyncio.sleep(0.1)

        async def pump(queue):
            await helper()
    """
    assert "RPL201" not in codes(source, path=ANALYSIS_PATH)


# ---------------------------------------------------------------- RPL202


def test_rpl202_flags_bare_coroutine_call():
    source = """
        async def flush(queue):
            pass

        async def pump(queue):
            flush(queue)
    """
    assert "RPL202" in codes(source, path=ANALYSIS_PATH)


def test_rpl202_passes_when_awaited():
    source = """
        async def flush(queue):
            pass

        async def pump(queue):
            await flush(queue)
    """
    assert "RPL202" not in codes(source, path=ANALYSIS_PATH)


def test_rpl202_resolves_coroutines_across_modules(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/serve/app.py": """
                async def flush(queue):
                    pass
            """,
            "repro/serve/loop.py": """
                from repro.serve.app import flush

                def drain(queue):
                    flush(queue)
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL202"]
    assert len(findings) == 1
    assert findings[0].path.endswith("loop.py")


# ---------------------------------------------------------------- RPL203


def test_rpl203_flags_discarded_task_handle():
    source = """
        import asyncio

        async def boot(queue):
            asyncio.create_task(queue.drain())
    """
    assert "RPL203" in codes(source, path=ANALYSIS_PATH)


def test_rpl203_flags_loop_method_spawn():
    source = """
        def boot(loop, queue):
            loop.create_task(queue.drain())
    """
    assert "RPL203" in codes(source, path=ANALYSIS_PATH)


def test_rpl203_passes_when_the_task_is_retained():
    source = """
        import asyncio

        async def boot(queue):
            task = asyncio.create_task(queue.drain())
            return task
    """
    assert "RPL203" not in codes(source, path=ANALYSIS_PATH)


# ---------------------------------------------------------------- RPL301


def test_rpl301_forbids_core_importing_serve(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/core/sched.py": """
                from repro.serve.app import launch

                def plan(requests):
                    return launch(requests)
            """,
            "repro/serve/app.py": """
                def launch(requests):
                    return requests
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL301"]
    assert len(findings) == 1
    assert findings[0].path.endswith("sched.py")
    assert "forbidden by the layering contract" in findings[0].message


def test_rpl301_restricts_checks_to_the_foundation(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/checks/tool.py": """
                from repro.sim.engine import advance

                def lint(tree):
                    return advance(tree)
            """,
            "repro/sim/engine.py": """
                def advance(queue):
                    return queue
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL301"]
    assert len(findings) == 1
    assert "may only import" in findings[0].message


def test_rpl301_allows_downward_imports(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/serve/app.py": """
                from repro.core.sched import plan

                def launch(requests):
                    return plan(requests)
            """,
            "repro/core/sched.py": """
                def plan(requests):
                    return requests
            """,
        },
    )
    assert all(v.code != "RPL301" for v in report.violations)


def test_rpl301_forbids_tape_importing_upward(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/tape/drive.py": """
                from repro.experiments.tape_tier import run_tape_tier

                def mount(drive):
                    return run_tape_tier(drive)
            """,
            "repro/experiments/tape_tier.py": """
                def run_tape_tier(drive):
                    return drive
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL301"]
    assert len(findings) == 1
    assert findings[0].path.endswith("drive.py")
    assert "forbidden by the layering contract" in findings[0].message


def test_rpl301_allows_tape_importing_placement_and_sim(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/tape/tier.py": """
                from repro.placement.zipf import ZipfSampler
                from repro.sim.engine import advance

                def route(request):
                    return advance(ZipfSampler(request))
            """,
            "repro/placement/zipf.py": """
                class ZipfSampler:
                    def __init__(self, request):
                        self.request = request
            """,
            "repro/sim/engine.py": """
                def advance(queue):
                    return queue
            """,
        },
    )
    assert all(v.code != "RPL301" for v in report.violations)


# ------------------------------------------------- RPL007 interprocedural


def test_rpl007_follows_calls_out_of_hot_functions(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/core/hot.py": """
                from repro.util.agg import gather

                def cost(disk, request):
                    return gather(disk)
            """,
            "repro/util/agg.py": """
                def gather(disk):
                    return [q.size for q in disk.queue]
            """,
        },
    )
    findings = [v for v in report.violations if v.code == "RPL007"]
    assert len(findings) == 1
    assert findings[0].path.endswith("agg.py")
    assert "repro.core.hot.cost -> repro.util.agg.gather" in findings[0].message


def test_rpl007_helper_is_exempt_when_not_reached(tmp_path):
    report = project(
        tmp_path,
        {
            "repro/core/cold.py": """
                from repro.util.agg import gather

                def summarise(disk):
                    return gather(disk)
            """,
            "repro/util/agg.py": """
                def gather(disk):
                    return [q.size for q in disk.queue]
            """,
        },
    )
    assert all(v.code != "RPL007" for v in report.violations)


# ---------------------------------------------------------------- pragmas


def test_project_findings_respect_line_pragmas():
    source = """
        import time

        def advance(queue):
            return time.time()  # reprolint: disable=RPL101
    """
    assert "RPL101" not in codes(source)
