"""Per-rule fixtures: at least one passing and one failing snippet per RPL code."""

from __future__ import annotations

import textwrap

import pytest

from repro.checks import check_source, get_rule


def lint(snippet: str) -> list:
    """Run all rules over a dedented snippet, returning violations."""
    return check_source(textwrap.dedent(snippet), path="fixture.py")


def codes(snippet: str) -> set:
    """The set of rule codes that fire on a snippet."""
    return {violation.code for violation in lint(snippet)}


# ---------------------------------------------------------------- RPL001

RPL001_FAIL = """
def drain(queue, now, deadline):
    if now == deadline:
        return []
"""

RPL001_FAIL_ATTRIBUTE = """
def same_instant(request, view):
    return request.time != view.now
"""

RPL001_PASS = """
import math

def drain(queue, now, deadline):
    if now >= deadline or math.isclose(now, deadline):
        return []
"""


def test_rpl001_flags_float_equality_on_time():
    violations = [v for v in lint(RPL001_FAIL) if v.code == "RPL001"]
    assert violations
    assert "deadline" in violations[0].message or "now" in violations[0].message


def test_rpl001_flags_attribute_time_comparison():
    assert "RPL001" in codes(RPL001_FAIL_ATTRIBUTE)


def test_rpl001_allows_ordering_and_isclose():
    assert "RPL001" not in codes(RPL001_PASS)


def test_rpl001_allows_none_comparison():
    assert "RPL001" not in codes("def f(t_last):\n    return t_last == None\n")


# ---------------------------------------------------------------- RPL002

RPL002_FAIL = """
def spin_budget(interval: float) -> float:
    return interval * 2.0
"""

RPL002_PASS_SUFFIX = """
def spin_budget(interval_seconds: float) -> float:
    return interval_seconds * 2.0
"""

RPL002_PASS_DOC = '''
def spin_budget(interval: float) -> float:
    """Twice the scheduling interval, both in seconds."""
    return interval * 2.0
'''

RPL002_PASS_PRIVATE = """
def _spin_budget(interval: float) -> float:
    return interval * 2.0
"""

RPL002_PASS_NON_NUMERIC = """
def label(energy: "EnergyReport") -> str:
    return energy.name
"""

RPL002_FAIL_ATTRIBUTE = """
class Budget:
    idle_power: float
"""


def test_rpl002_flags_bare_quantity_parameter():
    fired = [v for v in lint(RPL002_FAIL) if v.code == "RPL002"]
    assert fired and "interval" in fired[0].message


def test_rpl002_accepts_unit_suffix():
    assert "RPL002" not in codes(RPL002_PASS_SUFFIX)


def test_rpl002_accepts_documented_unit():
    assert "RPL002" not in codes(RPL002_PASS_DOC)


def test_rpl002_ignores_private_functions():
    assert "RPL002" not in codes(RPL002_PASS_PRIVATE)


def test_rpl002_ignores_non_numeric_annotations():
    assert "RPL002" not in codes(RPL002_PASS_NON_NUMERIC)


def test_rpl002_flags_undocumented_class_attribute():
    assert "RPL002" in codes(RPL002_FAIL_ATTRIBUTE)


def test_rpl002_accepts_inherited_method_docstring():
    snippet = '''
    class Base:
        def idle_timeout(self) -> float:
            """Seconds before spin-down."""

    class Child(Base):
        def idle_timeout(self) -> float:
            return 5.0
    '''
    assert "RPL002" not in codes(snippet)


# ---------------------------------------------------------------- RPL003

RPL003_FAIL_MODULE_CALL = """
import random

def jitter():
    return random.random()
"""

RPL003_FAIL_UNSEEDED_CTOR = """
import random

def make_rng():
    return random.Random()
"""

RPL003_FAIL_NUMPY = """
import numpy as np

def noise(n):
    return np.random.uniform(size=n)
"""

RPL003_FAIL_NUMPY_UNSEEDED_RNG = """
import numpy as np

def make_rng():
    return np.random.default_rng()
"""

RPL003_PASS = """
import random

def make_rng(seed: int):
    return random.Random(seed)

def jitter(rng: random.Random):
    return rng.random()
"""

RPL003_PASS_NUMPY = """
import numpy as np

def make_rng(seed: int):
    return np.random.default_rng(seed)
"""


@pytest.mark.parametrize(
    "snippet",
    [
        RPL003_FAIL_MODULE_CALL,
        RPL003_FAIL_UNSEEDED_CTOR,
        RPL003_FAIL_NUMPY,
        RPL003_FAIL_NUMPY_UNSEEDED_RNG,
    ],
)
def test_rpl003_flags_nondeterministic_rng(snippet):
    assert "RPL003" in codes(snippet)


@pytest.mark.parametrize("snippet", [RPL003_PASS, RPL003_PASS_NUMPY])
def test_rpl003_accepts_seeded_injected_rng(snippet):
    assert "RPL003" not in codes(snippet)


# ---------------------------------------------------------------- RPL004

RPL004_FAIL_MISSING_METHOD = """
class LazyScheduler(OnlineScheduler):
    def helper(self):
        return 1
"""

RPL004_FAIL_MUTATION = """
class GreedyScheduler(OnlineScheduler):
    def choose(self, request, view):
        request.time = 0.0
        return 0
"""

RPL004_FAIL_SETATTR = """
class SneakyScheduler(OnlineScheduler):
    def choose(self, request, view):
        object.__setattr__(request, "time", 0.0)
        return 0
"""

RPL004_PASS = """
class FineScheduler(OnlineScheduler):
    def choose(self, request, view):
        return min(view.locations(request.data_id))
"""

RPL004_PASS_ABSTRACT = """
from abc import abstractmethod

class StillAbstract(OnlineScheduler):
    @abstractmethod
    def helper(self): ...
"""


def test_rpl004_flags_missing_family_method():
    violations = [v for v in lint(RPL004_FAIL_MISSING_METHOD) if v.code == "RPL004"]
    assert violations and "choose" in violations[0].message


def test_rpl004_flags_request_mutation():
    violations = [v for v in lint(RPL004_FAIL_MUTATION) if v.code == "RPL004"]
    assert violations and "frozen Request" in violations[0].message


def test_rpl004_flags_object_setattr_bypass():
    assert "RPL004" in codes(RPL004_FAIL_SETATTR)


def test_rpl004_accepts_conforming_scheduler():
    assert "RPL004" not in codes(RPL004_PASS)


def test_rpl004_skips_abstract_intermediates():
    assert "RPL004" not in codes(RPL004_PASS_ABSTRACT)


def test_rpl004_batch_and_offline_contracts():
    assert "RPL004" in codes("class B(BatchScheduler):\n    pass\n")
    assert "RPL004" in codes("class O(OfflineScheduler):\n    pass\n")
    assert "RPL004" not in codes(
        "class B(BatchScheduler):\n    def choose_batch(self, requests, view):\n"
        "        return {}\n"
    )


# ---------------------------------------------------------------- RPL005

RPL005_FAIL = """
def collect(request, bucket=[]):
    bucket.append(request)
    return bucket
"""

RPL005_PASS = """
def collect(request, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(request)
    return bucket
"""


def test_rpl005_flags_mutable_default():
    violations = [v for v in lint(RPL005_FAIL) if v.code == "RPL005"]
    assert violations and "bucket" in violations[0].message


def test_rpl005_flags_constructor_and_kwonly_defaults():
    assert "RPL005" in codes("def f(x=dict()):\n    return x\n")
    assert "RPL005" in codes("def f(*, x={}):\n    return x\n")


def test_rpl005_accepts_none_sentinel():
    assert "RPL005" not in codes(RPL005_PASS)


def test_rpl005_accepts_immutable_defaults():
    assert "RPL005" not in codes("def f(x=(), y=0, z='a'):\n    return x\n")


# ---------------------------------------------------------------- RPL006

RPL006_FAIL_BARE = """
def load(path):
    try:
        return open(path).read()
    except:
        return None
"""

RPL006_FAIL_BROAD = """
def load(path):
    try:
        return open(path).read()
    except Exception:
        return None
"""

RPL006_PASS_NARROW = """
def load(path):
    try:
        return open(path).read()
    except OSError:
        return None
"""

RPL006_PASS_RERAISE = """
def load(path):
    try:
        return open(path).read()
    except Exception:
        log("failed")
        raise
"""


def test_rpl006_flags_bare_except():
    violations = [v for v in lint(RPL006_FAIL_BARE) if v.code == "RPL006"]
    assert violations and "bare except" in violations[0].message


def test_rpl006_flags_broad_except_without_reraise():
    assert "RPL006" in codes(RPL006_FAIL_BROAD)


def test_rpl006_accepts_narrow_except():
    assert "RPL006" not in codes(RPL006_PASS_NARROW)


def test_rpl006_accepts_broad_except_with_reraise():
    assert "RPL006" not in codes(RPL006_PASS_RERAISE)


# ---------------------------------------------------------------- RPL007

HOT_PATH = "src/repro/sim/fixture.py"

RPL007_FAIL_LISTCOMP = """
def choose(self, request, view):
    candidates = [d for d in view.locations(request.data_id)]
    return candidates[0]
"""

RPL007_FAIL_TUPLE_GENEXP = """
def available_locations(self, data_id):
    disks = self._disks
    return tuple(d for d in self._all if disks[d].is_available)
"""

RPL007_PASS_COLD_FUNCTION = """
def summarise(self):
    return [d for d in self._disks]
"""

RPL007_PASS_PLAIN_GENEXP = """
def cost(self, disk, now):
    return sum(weight for weight in self._weights)
"""

RPL007_PASS_PRAGMA = """
def available_locations(self, data_id):
    disks = self._disks
    return tuple(  # reprolint: disable=RPL007 -- fault path only
        d for d in self._all if disks[d].is_available
    )
"""


def lint_hot(snippet: str) -> list:
    """Lint a snippet as if it lived in the simulation core."""
    return check_source(textwrap.dedent(snippet), path=HOT_PATH)


def test_rpl007_flags_list_comprehension_in_hot_function():
    violations = [v for v in lint_hot(RPL007_FAIL_LISTCOMP) if v.code == "RPL007"]
    assert violations and "choose" in violations[0].message


def test_rpl007_flags_materialised_genexp_at_the_call_line():
    violations = [
        v for v in lint_hot(RPL007_FAIL_TUPLE_GENEXP) if v.code == "RPL007"
    ]
    # Reported once, anchored at the tuple(...) call so a line pragma works.
    assert len(violations) == 1
    assert violations[0].line == 4
    assert "tuple" in violations[0].message


def test_rpl007_ignores_cold_functions():
    assert all(v.code != "RPL007" for v in lint_hot(RPL007_PASS_COLD_FUNCTION))


def test_rpl007_ignores_unmaterialised_generators():
    assert all(v.code != "RPL007" for v in lint_hot(RPL007_PASS_PLAIN_GENEXP))


def test_rpl007_out_of_scope_module_is_exempt():
    violations = check_source(
        textwrap.dedent(RPL007_FAIL_LISTCOMP), path="src/repro/analysis/agg.py"
    )
    assert all(v.code != "RPL007" for v in violations)


def test_rpl007_pragma_waives_the_call_line():
    assert all(v.code != "RPL007" for v in lint_hot(RPL007_PASS_PRAGMA))


# ---------------------------------------------------------------- catalogue


def test_every_rule_has_a_failing_fixture():
    """Meta-check: every registered code has fixture coverage.

    RPL001–007 are exercised above; the whole-program families
    (RPL1xx/RPL2xx/RPL3xx) are exercised in ``test_project_rules.py``.
    """
    from repro.checks import all_rules

    exercised = {
        "RPL001",
        "RPL002",
        "RPL003",
        "RPL004",
        "RPL005",
        "RPL006",
        "RPL007",
        "RPL101",
        "RPL102",
        "RPL103",
        "RPL201",
        "RPL202",
        "RPL203",
        "RPL301",
    }
    assert {rule.code for rule in all_rules()} == exercised


def test_get_rule_roundtrip():
    rule = get_rule("RPL005")
    assert rule.code == "RPL005"
    assert rule.name == "mutable-default-argument"
