"""Framework behaviour: suppression pragmas, reporters, runner, and CLI wiring."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.checks import CheckConfig, check_paths, check_source, main
from repro.checks.registry import all_rules
from repro.checks.reporting import render_json, render_text
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

MUTABLE_DEFAULT = "def collect(bucket=[]):\n    return bucket\n"


# ---------------------------------------------------------------- suppression


def test_line_pragma_suppresses_single_code():
    source = "def collect(bucket=[]):  # reprolint: disable=RPL005\n    return bucket\n"
    assert check_source(source) == []


def test_line_pragma_with_wrong_code_does_not_suppress():
    source = "def collect(bucket=[]):  # reprolint: disable=RPL001\n    return bucket\n"
    assert [v.code for v in check_source(source)] == ["RPL005"]


def test_line_pragma_accepts_comma_separated_codes():
    source = (
        "def collect(bucket=[]):  # reprolint: disable=RPL001,RPL005\n"
        "    return bucket\n"
    )
    assert check_source(source) == []


def test_file_pragma_suppresses_whole_file():
    source = "# reprolint: disable-file=RPL005\n" + MUTABLE_DEFAULT
    assert check_source(source) == []


def test_all_keyword_suppresses_every_rule():
    source = "# reprolint: disable-file=all\n" + MUTABLE_DEFAULT
    assert check_source(source) == []


def test_pragma_inside_string_literal_is_ignored():
    source = 'PRAGMA = "# reprolint: disable-file=all"\n' + MUTABLE_DEFAULT
    assert [v.code for v in check_source(source)] == ["RPL005"]


# ---------------------------------------------------------------- config


def test_select_restricts_to_chosen_codes():
    source = MUTABLE_DEFAULT + "def f(now, deadline):\n    return now == deadline\n"
    config = CheckConfig(select=frozenset({"RPL001"}))
    assert [v.code for v in check_source(source, config=config)] == ["RPL001"]


def test_ignore_drops_chosen_codes():
    config = CheckConfig(ignore=frozenset({"RPL005"}))
    assert check_source(MUTABLE_DEFAULT, config=config) == []


# ---------------------------------------------------------------- runner


def test_check_paths_walks_directories(tmp_path):
    (tmp_path / "bad.py").write_text(MUTABLE_DEFAULT)
    (tmp_path / "good.py").write_text("X = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "stale.py").write_text(MUTABLE_DEFAULT)
    report = check_paths([tmp_path])
    assert report.files_checked == 2
    assert [v.code for v in report.violations] == ["RPL005"]
    assert report.exit_code == 1


def test_check_paths_records_parse_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = check_paths([tmp_path])
    assert report.parse_errors and not report.ok
    assert report.exit_code == 1


def test_check_source_raises_on_syntax_error():
    with pytest.raises(SyntaxError):
        check_source("def f(:\n")


# ---------------------------------------------------------------- reporters


def test_text_reporter_formats_gcc_style(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    report = check_paths([bad])
    text = render_text(report)
    assert f"{bad}:1:" in text
    assert "RPL005" in text
    assert "1 file checked" in text


def test_json_reporter_roundtrips(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    payload = json.loads(render_json(check_paths([bad])))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    [finding] = payload["violations"]
    assert finding["code"] == "RPL005"
    assert finding["line"] == 1


# ---------------------------------------------------------------- CLI


def test_repo_source_tree_is_lint_clean():
    """The repository's own library code passes reprolint (ISSUE acceptance)."""
    assert main([str(SRC)]) == 0


def test_cli_lint_subcommand_is_clean():
    assert cli_main(["lint", str(SRC)]) == 0


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    assert cli_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPL005" in out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"][0]["code"] == "RPL005"


def test_cli_select_and_ignore(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    assert main([str(bad), "--ignore", "RPL005"]) == 0
    assert main([str(bad), "--select", "RPL001"]) == 0
    assert main([str(bad), "--select", "RPL005"]) == 1


def test_cli_rejects_unknown_rule_code(capsys):
    assert main(["--select", "RPL999"]) == 2
    assert "RPL999" in capsys.readouterr().err


def test_cli_rejects_missing_path(capsys):
    assert main(["/no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_cli_changed_mode_reports_only_edited_files(tmp_path, capsys, monkeypatch):
    """--changed scopes findings to files edited versus HEAD."""
    monkeypatch.chdir(tmp_path)
    git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
    subprocess.run([*git, "init", "-q"], check=True)
    (tmp_path / "bad.py").write_text(MUTABLE_DEFAULT)
    (tmp_path / "good.py").write_text("X = 1\n")
    subprocess.run([*git, "add", "."], check=True)
    subprocess.run([*git, "commit", "-q", "-m", "seed"], check=True)
    # Nothing changed: nothing to lint, exit 0 despite bad.py's finding.
    assert main([".", "--changed"]) == 0
    capsys.readouterr()
    # Touch only the clean file: still 0 (bad.py is out of scope).
    (tmp_path / "good.py").write_text("X = 2\n")
    assert main([".", "--changed"]) == 0
    capsys.readouterr()
    # Touch the bad file: its finding is now in scope.
    (tmp_path / "bad.py").write_text(MUTABLE_DEFAULT + "\n")
    assert main([".", "--changed"]) == 1
    assert "RPL005" in capsys.readouterr().out


def test_cli_changed_mode_requires_git(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
    assert main([".", "--changed"]) == 2
    assert "git" in capsys.readouterr().err


def test_module_entry_point_runs_as_script(tmp_path):
    """`python -m repro.checks` works and propagates the exit code."""
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    env_src = str(SRC)
    result = subprocess.run(
        [sys.executable, "-m", "repro.checks", str(bad)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 1
    assert "RPL005" in result.stdout


# ---------------------------------------------------------------- registry


def test_rules_are_sorted_and_well_formed():
    rules = all_rules()
    assert [r.code for r in rules] == sorted(r.code for r in rules)
    for rule in rules:
        assert rule.code.startswith("RPL") and len(rule.code) == 6
        assert rule.name and rule.summary
