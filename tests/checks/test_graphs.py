"""The whole-program analysis substrate: module naming, import graph,
symbol tables, call graph, and reachability — exercised over synthetic
packages parsed in memory (no filesystem needed beyond naming tests)."""

from __future__ import annotations

import ast
import textwrap
from typing import Dict

from repro.checks.analysis import (
    build_project,
    module_name_for_path,
)
from repro.checks.config import CheckConfig


def project(files: Dict[str, str]):
    """Build a ProjectContext from ``{path: source}`` (paths decide names)."""
    sources = []
    for path, raw in files.items():
        source = textwrap.dedent(raw)
        sources.append((path, source, ast.parse(source, filename=path)))
    return build_project(sources, CheckConfig())


# ---------------------------------------------------------------- naming


def test_module_name_textual_fallback_strips_src_prefix():
    assert module_name_for_path("src/repro/sim/engine.py") == "repro.sim.engine"


def test_module_name_for_package_init():
    assert module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"


def test_module_name_climbs_real_packages(tmp_path):
    root = tmp_path / "top" / "pkg" / "sub"
    root.mkdir(parents=True)
    (tmp_path / "top" / "pkg" / "__init__.py").write_text("")
    (root / "__init__.py").write_text("")
    (root / "mod.py").write_text("X = 1\n")
    # ``top`` has no __init__.py, so the dotted name starts at ``pkg``.
    assert module_name_for_path(str(root / "mod.py")) == "pkg.sub.mod"


# ---------------------------------------------------------------- imports


def test_import_graph_records_plain_and_from_imports():
    context = project(
        {
            "src/repro/a.py": """
                import repro.b
                from repro.c import helper
            """,
            "src/repro/b.py": "X = 1\n",
            "src/repro/c.py": "def helper():\n    return 1\n",
        }
    )
    targets = {
        edge.imported for edge in context.imports.imports_of("repro.a")
    }
    assert targets == {"repro.b", "repro.c"}


def test_import_graph_resolves_relative_imports():
    context = project(
        {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/a.py": "from . import b\nfrom .b import helper\n",
            "src/repro/pkg/b.py": "def helper():\n    return 1\n",
        }
    )
    targets = {
        edge.imported for edge in context.imports.imports_of("repro.pkg.a")
    }
    assert targets == {"repro.pkg.b"}


def test_project_edges_exclude_stdlib():
    context = project(
        {
            "src/repro/a.py": "import json\nimport repro.b\n",
            "src/repro/b.py": "X = 1\n",
        }
    )
    assert {edge.imported for edge in context.imports.project_edges()} == {
        "repro.b"
    }


# ---------------------------------------------------------------- symbols


def test_symbol_table_resolves_bare_and_dotted_calls():
    context = project(
        {
            "src/repro/a.py": """
                from repro.b import helper

                def run():
                    return helper()
            """,
            "src/repro/b.py": "def helper():\n    return 1\n",
        }
    )
    info = context.symbols.resolve_call("repro.a", ("helper",))
    assert info is not None and info.function_id == "repro.b:helper"


def test_symbol_table_resolves_self_methods_through_bases():
    context = project(
        {
            "src/repro/a.py": """
                class Base:
                    def shared(self):
                        return 1

                class Child(Base):
                    def run(self):
                        return self.shared()
            """,
        }
    )
    info = context.symbols.resolve_call(
        "repro.a", ("self", "shared"), class_name="Child"
    )
    assert info is not None and info.qualname == "Base.shared"


def test_symbol_table_treats_class_call_as_init():
    context = project(
        {
            "src/repro/a.py": """
                class Engine:
                    def __init__(self):
                        self.t = 0

                def boot():
                    return Engine()
            """,
        }
    )
    info = context.symbols.resolve_call("repro.a", ("Engine",))
    assert info is not None and info.qualname == "Engine.__init__"


def test_unresolvable_dynamic_call_produces_no_edge():
    context = project(
        {
            "src/repro/a.py": """
                def run(callback):
                    return callback()
            """,
        }
    )
    assert context.calls.edges == ()


# ---------------------------------------------------------------- calls


def test_call_graph_reachability_with_chain():
    context = project(
        {
            "src/repro/a.py": """
                from repro.b import middle

                def top():
                    return middle()
            """,
            "src/repro/b.py": """
                def middle():
                    return bottom()

                def bottom():
                    return 1
            """,
        }
    )
    parents = context.calls.reachable_from(["repro.a:top"])
    assert "repro.b:bottom" in parents
    assert list(context.calls.path_to(parents, "repro.b:bottom")) == [
        "repro.a:top",
        "repro.b:middle",
        "repro.b:bottom",
    ]


def test_reachability_stops_at_async_boundaries_when_asked():
    context = project(
        {
            "src/repro/a.py": """
                async def other():
                    return helper()

                def helper():
                    return 1

                async def entry():
                    return await other()
            """,
        }
    )
    expanded = context.calls.reachable_from(["repro.a:entry"])
    assert "repro.a:helper" in expanded
    # With expand_async=False the awaited coroutine is reached but not
    # expanded: it is its own root with its own findings.
    bounded = context.calls.reachable_from(
        ["repro.a:entry"], expand_async=False
    )
    assert "repro.a:other" in bounded
    assert "repro.a:helper" not in bounded
