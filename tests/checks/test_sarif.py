"""SARIF reporter: structural validation against a SARIF 2.1.0 schema subset.

The full OASIS schema is ~250 KB and would need a network fetch; the
subset below transcribes the portions covering everything reprolint
emits — run/tool/driver/rule shapes, result locations, invocation
notifications — with ``required`` and type constraints intact, so a
regression in the emitted shape fails validation rather than only
failing string asserts.
"""

from __future__ import annotations

import json

import jsonschema
import pytest

from repro.checks.registry import all_rules
from repro.checks.reporting import render_sarif
from repro.checks.runner import CheckReport
from repro.checks.violation import Violation

#: Transcribed subset of sarif-schema-2.1.0 (oasis-tcs/sarif-spec).
SARIF_SCHEMA_SUBSET = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {"$ref": "#/definitions/run"},
        },
    },
    "definitions": {
        "run": {
            "type": "object",
            "required": ["tool"],
            "properties": {
                "tool": {
                    "type": "object",
                    "required": ["driver"],
                    "properties": {
                        "driver": {"$ref": "#/definitions/toolComponent"}
                    },
                },
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
                "invocations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/invocation"},
                },
            },
        },
        "toolComponent": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
        },
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string"},
                "shortDescription": {"$ref": "#/definitions/message"},
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {
                            "enum": ["none", "note", "warning", "error"]
                        }
                    },
                },
            },
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": -1},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
            },
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {
                                "uri": {"type": "string", "format": "uri-reference"}
                            },
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {"type": "integer", "minimum": 1},
                                "startColumn": {"type": "integer", "minimum": 1},
                            },
                        },
                    },
                }
            },
        },
        "invocation": {
            "type": "object",
            "required": ["executionSuccessful"],
            "properties": {
                "executionSuccessful": {"type": "boolean"},
                "toolExecutionNotifications": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/notification"},
                },
            },
        },
        "notification": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
            },
        },
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
    },
}

REPORT = CheckReport(
    violations=(
        Violation(
            path="src/repro/sim/engine.py",
            line=12,
            column=5,
            code="RPL101",
            message="wall-clock read",
        ),
        Violation(
            path="src\\repro\\core\\sched.py",
            line=3,
            column=1,
            code="RPL301",
            message="layering breach",
        ),
    ),
    parse_errors=(("src/broken.py", "syntax error: invalid syntax (line 1)"),),
    files_checked=3,
)


def validate(document: dict) -> None:
    jsonschema.validate(instance=document, schema=SARIF_SCHEMA_SUBSET)


def test_sarif_document_validates_against_schema_subset():
    validate(json.loads(render_sarif(REPORT)))


def test_empty_report_validates_too():
    validate(json.loads(render_sarif(CheckReport(files_checked=0))))


def test_sarif_results_carry_location_and_rule_id():
    document = json.loads(render_sarif(REPORT))
    [run] = document["runs"]
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["RPL101", "RPL301"]
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/sim/engine.py"
    assert location["region"] == {"startLine": 12, "startColumn": 5}


def test_sarif_uris_are_forward_slashed():
    document = json.loads(render_sarif(REPORT))
    [run] = document["runs"]
    uri = run["results"][1]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert uri == "src/repro/core/sched.py"


def test_sarif_rule_index_points_into_the_catalogue():
    document = json.loads(render_sarif(REPORT))
    [run] = document["runs"]
    rules = run["tool"]["driver"]["rules"]
    assert [rule.code for rule in all_rules()] == [r["id"] for r in rules]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_sarif_parse_errors_become_notifications():
    document = json.loads(render_sarif(REPORT))
    [invocation] = document["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is False
    [notification] = invocation["toolExecutionNotifications"]
    assert "syntax error" in notification["message"]["text"]


def test_clean_run_reports_successful_invocation():
    document = json.loads(render_sarif(CheckReport(files_checked=5)))
    [invocation] = document["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is True
    assert invocation["toolExecutionNotifications"] == []


def test_cli_sarif_format(tmp_path, capsys):
    from repro.checks import main

    bad = tmp_path / "bad.py"
    bad.write_text("def collect(bucket=[]):\n    return bucket\n")
    assert main([str(bad), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    validate(document)
    assert document["runs"][0]["results"][0]["ruleId"] == "RPL005"
