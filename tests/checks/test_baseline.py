"""Baseline mechanics: fingerprinting, round-trips, staleness, CLI wiring."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.checks import main
from repro.checks.baseline import (
    BASELINE_FILENAME,
    BaselineError,
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.runner import CheckReport, check_paths
from repro.checks.violation import Violation

MUTABLE_DEFAULT = "def collect(bucket=[]):\n    return bucket\n"


def lint_dir(tmp_path):
    (tmp_path / "bad.py").write_text(MUTABLE_DEFAULT)
    return check_paths([tmp_path])


# ------------------------------------------------------------- round trip


def test_write_then_apply_suppresses_the_finding(tmp_path):
    report = lint_dir(tmp_path)
    assert report.exit_code == 1
    target = tmp_path / BASELINE_FILENAME
    write_baseline(report, str(target))
    outcome = apply_baseline(report, load_baseline(str(target)))
    assert outcome.report.violations == ()
    assert outcome.report.exit_code == 0
    assert len(outcome.suppressed) == 1
    assert outcome.stale == ()
    assert outcome.ok


def test_fixed_finding_turns_the_entry_stale(tmp_path):
    report = lint_dir(tmp_path)
    target = tmp_path / BASELINE_FILENAME
    write_baseline(report, str(target))
    (tmp_path / "bad.py").write_text("def collect(bucket=()):\n    return bucket\n")
    outcome = apply_baseline(check_paths([tmp_path]), load_baseline(str(target)))
    assert outcome.report.violations == ()
    assert len(outcome.stale) == 1
    assert not outcome.ok  # a clean report with stale debt still fails


def test_matching_is_line_insensitive(tmp_path):
    report = lint_dir(tmp_path)
    target = tmp_path / BASELINE_FILENAME
    write_baseline(report, str(target))
    # Push the finding down two lines; the fingerprint must still match.
    (tmp_path / "bad.py").write_text("X = 1\nY = 2\n" + MUTABLE_DEFAULT)
    outcome = apply_baseline(check_paths([tmp_path]), load_baseline(str(target)))
    assert outcome.report.violations == ()
    assert outcome.stale == ()


def test_changed_message_is_a_new_finding():
    report = CheckReport(
        violations=(
            Violation(path="a.py", line=1, column=1, code="RPL005", message="new"),
        ),
        files_checked=1,
    )
    baseline = write_baseline(
        CheckReport(
            violations=(
                Violation(
                    path="a.py", line=1, column=1, code="RPL005", message="old"
                ),
            ),
            files_checked=1,
        ),
        path="/dev/null",
    )
    # /dev/null is never re-read; we only exercise the in-memory matcher.
    outcome = apply_baseline(report, baseline)
    assert len(outcome.report.violations) == 1
    assert len(outcome.stale) == 1


def test_rewrite_carries_existing_justifications(tmp_path):
    report = lint_dir(tmp_path)
    target = tmp_path / BASELINE_FILENAME
    first = write_baseline(report, str(target))
    edited = json.loads(target.read_text())
    edited["entries"][0]["justification"] = "triaged: demo fixture"
    target.write_text(json.dumps(edited))
    second = write_baseline(report, str(target), existing=load_baseline(str(target)))
    assert second.entries[0].justification == "triaged: demo fixture"
    assert first.entries[0].justification != "triaged: demo fixture"


# ------------------------------------------------------------- validation


def test_justification_is_mandatory(tmp_path):
    target = tmp_path / BASELINE_FILENAME
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"path": "a.py", "code": "RPL005", "message": "m"}
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(target))


def test_blank_justification_is_rejected(tmp_path):
    target = tmp_path / BASELINE_FILENAME
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "path": "a.py",
                        "code": "RPL005",
                        "message": "m",
                        "justification": "   ",
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(target))


def test_unsupported_version_is_rejected(tmp_path):
    target = tmp_path / BASELINE_FILENAME
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError, match="version"):
        load_baseline(str(target))


def test_unknown_fields_are_rejected(tmp_path):
    target = tmp_path / BASELINE_FILENAME
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "path": "a.py",
                        "code": "RPL005",
                        "message": "m",
                        "justification": "ok",
                        "line": 3,
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="unknown field"):
        load_baseline(str(target))


def test_malformed_json_is_rejected(tmp_path):
    target = tmp_path / BASELINE_FILENAME
    target.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(str(target))


# -------------------------------------------------------------- discovery


def test_find_baseline_walks_upward(tmp_path):
    (tmp_path / BASELINE_FILENAME).write_text("{}")
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    assert find_baseline(str(nested)) == str(tmp_path / BASELINE_FILENAME)


def test_find_baseline_returns_none_when_absent(tmp_path):
    nested = tmp_path / "src"
    nested.mkdir()
    assert find_baseline(str(nested)) is None


# -------------------------------------------------------------------- CLI


def test_cli_write_then_lint_round_trip(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    target = tmp_path / BASELINE_FILENAME
    assert main([str(tmp_path), "--write-baseline", "--baseline", str(target)]) == 0
    assert main([str(tmp_path)]) == 0  # discovered by the upward walk
    assert main([str(tmp_path), "--no-baseline"]) == 1
    capsys.readouterr()


def test_cli_fails_on_stale_entry(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    target = tmp_path / BASELINE_FILENAME
    assert main([str(tmp_path), "--write-baseline", "--baseline", str(target)]) == 0
    bad.write_text("def collect(bucket=()):\n    return bucket\n")
    assert main([str(tmp_path)]) == 1
    assert "stale baseline entry" in capsys.readouterr().err


def test_cli_rejects_entries_without_justification(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(MUTABLE_DEFAULT)
    target = tmp_path / BASELINE_FILENAME
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"path": "bad.py", "code": "RPL005", "message": "m"}
                ],
            }
        )
    )
    assert main([str(tmp_path), "--baseline", str(target)]) == 2
    assert "justification" in capsys.readouterr().err


def test_cli_baseline_matches_across_directories(tmp_path, capsys):
    """Entry paths are relative to the baseline file, not the cwd."""
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bad.py").write_text(MUTABLE_DEFAULT)
    target = tmp_path / BASELINE_FILENAME
    assert main([str(package), "--write-baseline", "--baseline", str(target)]) == 0
    entry = json.loads(target.read_text())["entries"][0]
    assert entry["path"] == "pkg/bad.py"
    assert main([str(package)]) == 0
    capsys.readouterr()
