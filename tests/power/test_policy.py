"""Tests for power-management policies."""

import pytest

from repro.errors import ConfigurationError
from repro.power.policy import (
    AlwaysOnPolicy,
    FixedThresholdPolicy,
    ScaledBreakevenPolicy,
    TwoCompetitivePolicy,
)
from repro.power.profile import BARRACUDA, PAPER_UNIT


class TestTwoCompetitive:
    def test_timeout_is_breakeven(self):
        policy = TwoCompetitivePolicy()
        assert policy.idle_timeout(BARRACUDA) == pytest.approx(
            BARRACUDA.breakeven_time
        )

    def test_respects_override(self):
        assert TwoCompetitivePolicy().idle_timeout(PAPER_UNIT) == 5.0

    def test_name(self):
        assert TwoCompetitivePolicy().name == "2CPM"


class TestAlwaysOn:
    def test_never_times_out(self):
        assert AlwaysOnPolicy().idle_timeout(BARRACUDA) is None


class TestFixedThreshold:
    def test_uses_given_threshold(self):
        assert FixedThresholdPolicy(12.5).idle_timeout(BARRACUDA) == 12.5

    def test_zero_threshold_allowed(self):
        assert FixedThresholdPolicy(0.0).idle_timeout(BARRACUDA) == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdPolicy(-1.0)

    def test_name_includes_threshold(self):
        assert "12.5" in FixedThresholdPolicy(12.5).name


class TestScaledBreakeven:
    def test_scales_breakeven(self):
        policy = ScaledBreakevenPolicy(0.5)
        assert policy.idle_timeout(BARRACUDA) == pytest.approx(
            BARRACUDA.breakeven_time / 2
        )

    def test_factor_one_matches_2cpm(self):
        assert ScaledBreakevenPolicy(1.0).idle_timeout(BARRACUDA) == (
            TwoCompetitivePolicy().idle_timeout(BARRACUDA)
        )

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaledBreakevenPolicy(-0.1)
