"""Tests for the breakeven-time math (the 2CPM foundation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.breakeven import (
    always_on_interval_energy,
    breakeven_time,
    breakeven_time_with_standby,
    competitive_ratio_bound,
    idle_interval_energy,
)
from repro.power.profile import BARRACUDA, PAPER_EVAL, DiskPowerProfile


class TestBreakevenTime:
    def test_classic_formula(self):
        assert breakeven_time(100.0, 10.0) == pytest.approx(10.0)

    def test_zero_transition_energy_gives_zero_threshold(self):
        assert breakeven_time(0.0, 5.0) == 0.0

    def test_requires_positive_idle_power(self):
        with pytest.raises(ConfigurationError):
            breakeven_time(100.0, 0.0)

    def test_rejects_negative_transition_energy(self):
        with pytest.raises(ConfigurationError):
            breakeven_time(-1.0, 5.0)


class TestBreakevenWithStandby:
    def test_reduces_to_classic_when_standby_is_zero(self):
        classic = breakeven_time(100.0, 10.0)
        refined = breakeven_time_with_standby(100.0, 10.0, 0.0)
        assert refined == pytest.approx(classic)

    def test_standby_power_lengthens_threshold(self):
        # Sleeping is less profitable when standby still draws power.
        classic = breakeven_time(100.0, 10.0)
        refined = breakeven_time_with_standby(100.0, 10.0, 2.0)
        assert refined > classic

    def test_idle_must_exceed_standby(self):
        with pytest.raises(ConfigurationError):
            breakeven_time_with_standby(100.0, 5.0, 5.0)

    @given(
        energy=st.floats(min_value=0.0, max_value=1e4),
        idle=st.floats(min_value=0.5, max_value=50.0),
        standby_fraction=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_never_negative(self, energy, idle, standby_fraction):
        threshold = breakeven_time_with_standby(
            energy, idle, idle * standby_fraction
        )
        assert threshold >= 0.0


class TestIntervalEnergy:
    def test_short_gap_stays_idle(self):
        gap = BARRACUDA.breakeven_time / 2
        assert idle_interval_energy(BARRACUDA, gap) == pytest.approx(
            gap * BARRACUDA.idle_power
        )

    def test_long_gap_sleeps(self):
        gap = BARRACUDA.breakeven_time * 10
        energy = idle_interval_energy(BARRACUDA, gap)
        assert energy < always_on_interval_energy(BARRACUDA, gap)

    def test_gap_at_threshold_boundary_stays_idle(self):
        # Gaps inside [TB, TB + Tup + Tdown) ride out idle (Lemma 1 case II).
        gap = BARRACUDA.breakeven_time + BARRACUDA.transition_time / 2
        assert idle_interval_energy(BARRACUDA, gap) == pytest.approx(
            gap * BARRACUDA.idle_power
        )

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            idle_interval_energy(BARRACUDA, -1.0)

    @given(gap=st.floats(min_value=0.0, max_value=1e5))
    def test_2cpm_never_exceeds_twice_always_on_plus_transition(self, gap):
        """The 2-competitiveness sanity bound on a single interval."""
        online = idle_interval_energy(PAPER_EVAL, gap)
        offline_best = min(
            always_on_interval_energy(PAPER_EVAL, gap),
            PAPER_EVAL.transition_energy + gap * PAPER_EVAL.standby_power,
        )
        if offline_best > 0:
            assert online <= 2.0 * offline_best + 1e-9


class TestCompetitiveRatio:
    def test_bound_is_at_most_two_for_zero_standby(self):
        profile = DiskPowerProfile(
            name="zero-standby",
            idle_power=10.0,
            active_power=12.0,
            standby_power=0.0,
            spin_up_power=20.0,
            spin_down_power=10.0,
            spin_up_time=5.0,
            spin_down_time=1.0,
        )
        ratio = competitive_ratio_bound(profile)
        assert 1.0 <= ratio <= 2.0 + 1e-9

    def test_bound_exceeds_one_when_sleeping_costs(self):
        assert competitive_ratio_bound(PAPER_EVAL) > 1.0
