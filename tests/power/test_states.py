"""Tests for disk power states."""

from repro.power.states import STATE_ORDER, DiskPowerState


def test_five_states_exist():
    assert len(DiskPowerState) == 5


def test_spinning_states():
    assert DiskPowerState.IDLE.is_spinning
    assert DiskPowerState.ACTIVE.is_spinning
    assert not DiskPowerState.STANDBY.is_spinning
    assert not DiskPowerState.SPIN_UP.is_spinning
    assert not DiskPowerState.SPIN_DOWN.is_spinning


def test_transitioning_states():
    assert DiskPowerState.SPIN_UP.is_transitioning
    assert DiskPowerState.SPIN_DOWN.is_transitioning
    assert not DiskPowerState.IDLE.is_transitioning
    assert not DiskPowerState.ACTIVE.is_transitioning
    assert not DiskPowerState.STANDBY.is_transitioning


def test_state_order_covers_all_states():
    assert set(STATE_ORDER) == set(DiskPowerState)
