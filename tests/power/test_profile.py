"""Tests for disk power profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.power.profile import (
    BARRACUDA,
    CHEETAH_15K5,
    PAPER_EVAL,
    PAPER_UNIT,
    PROFILES,
    DiskPowerProfile,
    get_profile,
)
from repro.power.states import DiskPowerState


class TestDerivedQuantities:
    def test_spin_up_energy_is_power_times_time(self):
        assert BARRACUDA.spin_up_energy == pytest.approx(24.0 * 6.0)

    def test_spin_down_energy_is_power_times_time(self):
        assert BARRACUDA.spin_down_energy == pytest.approx(9.3 * 2.0)

    def test_transition_energy_sums_both_directions(self):
        assert BARRACUDA.transition_energy == pytest.approx(
            BARRACUDA.spin_up_energy + BARRACUDA.spin_down_energy
        )

    def test_transition_time_sums_both_directions(self):
        assert BARRACUDA.transition_time == pytest.approx(8.0)

    def test_breakeven_is_transition_energy_over_idle_power(self):
        expected = BARRACUDA.transition_energy / BARRACUDA.idle_power
        assert BARRACUDA.breakeven_time == pytest.approx(expected)

    def test_breakeven_override_wins(self):
        assert PAPER_UNIT.breakeven_time == 5.0

    def test_max_request_energy_formula(self):
        profile = PAPER_EVAL
        expected = (
            profile.transition_energy
            + profile.breakeven_time * profile.idle_power
        )
        assert profile.max_request_energy == pytest.approx(expected)

    def test_unit_model_max_request_energy_is_breakeven(self):
        # Eup/down = 0, TB = 5, PI = 1 -> EPmax = 5 (used all over Fig. 3).
        assert PAPER_UNIT.max_request_energy == pytest.approx(5.0)


class TestStatePowers:
    def test_power_per_state(self):
        assert BARRACUDA.power(DiskPowerState.IDLE) == 9.3
        assert BARRACUDA.power(DiskPowerState.ACTIVE) == 12.6
        assert BARRACUDA.power(DiskPowerState.STANDBY) == 0.8
        assert BARRACUDA.power(DiskPowerState.SPIN_UP) == 24.0
        assert BARRACUDA.power(DiskPowerState.SPIN_DOWN) == 9.3

    def test_state_powers_covers_every_state(self):
        powers = BARRACUDA.state_powers()
        assert set(powers) == set(DiskPowerState)

    def test_standby_draws_far_less_than_idle(self):
        # The premise of the whole paper (Section 1: ~one tenth).
        for profile in (BARRACUDA, CHEETAH_15K5, PAPER_EVAL):
            assert profile.standby_power < profile.idle_power / 4


class TestValidation:
    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskPowerProfile(
                name="bad",
                idle_power=-1.0,
                active_power=1.0,
                standby_power=0.0,
                spin_up_power=1.0,
                spin_down_power=1.0,
                spin_up_time=1.0,
                spin_down_time=1.0,
            )

    def test_zero_idle_power_requires_override(self):
        with pytest.raises(ConfigurationError):
            DiskPowerProfile(
                name="bad",
                idle_power=0.0,
                active_power=1.0,
                standby_power=0.0,
                spin_up_power=1.0,
                spin_down_power=1.0,
                spin_up_time=1.0,
                spin_down_time=1.0,
            )

    def test_negative_override_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskPowerProfile(
                name="bad",
                idle_power=1.0,
                active_power=1.0,
                standby_power=0.0,
                spin_up_power=1.0,
                spin_down_power=1.0,
                spin_up_time=1.0,
                spin_down_time=1.0,
                breakeven_override=-1.0,
            )


class TestRegistry:
    def test_all_builtins_registered(self):
        for profile in (BARRACUDA, CHEETAH_15K5, PAPER_UNIT, PAPER_EVAL):
            assert PROFILES[profile.name] is profile

    def test_get_profile_by_name(self):
        assert get_profile("seagate-barracuda") is BARRACUDA

    def test_get_profile_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown power profile"):
            get_profile("does-not-exist")


class TestOverridesAndDescribe:
    def test_with_overrides_returns_new_profile(self):
        tweaked = BARRACUDA.with_overrides(idle_power=5.0)
        assert tweaked.idle_power == 5.0
        assert BARRACUDA.idle_power == 9.3
        assert tweaked.name == BARRACUDA.name

    def test_describe_mentions_breakeven(self):
        text = PAPER_EVAL.describe()
        assert "breakeven" in text
        assert "42.7" in text
