"""Tests for the offline-optimal power oracle and competitive ratios."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.oracle import (
    empirical_competitive_ratio,
    gap_idle_energy,
    gap_sleep_energy,
    optimal_gap_energy,
    oracle_energy,
    two_cpm_energy,
)
from repro.power.profile import BARRACUDA, PAPER_EVAL, DiskPowerProfile

ZERO_STANDBY = DiskPowerProfile(
    name="zero-standby",
    idle_power=10.0,
    active_power=12.0,
    standby_power=0.0,
    spin_up_power=20.0,
    spin_down_power=10.0,
    spin_up_time=5.0,
    spin_down_time=1.0,
)


class TestGapDecision:
    def test_short_gap_stays_idle(self):
        decision = optimal_gap_energy(BARRACUDA, 1.0)
        assert not decision.sleep
        assert decision.energy == pytest.approx(gap_idle_energy(BARRACUDA, 1.0))

    def test_long_gap_sleeps(self):
        decision = optimal_gap_energy(BARRACUDA, 10_000.0)
        assert decision.sleep
        assert decision.energy == pytest.approx(
            gap_sleep_energy(BARRACUDA, 10_000.0)
        )

    def test_gap_below_transition_cannot_sleep(self):
        gap = BARRACUDA.transition_time / 2
        assert gap_sleep_energy(BARRACUDA, gap) == float("inf")
        assert not optimal_gap_energy(BARRACUDA, gap).sleep

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_gap_energy(BARRACUDA, -1.0)

    @given(gap=st.floats(min_value=0.0, max_value=1e5))
    def test_decision_is_the_min(self, gap):
        decision = optimal_gap_energy(PAPER_EVAL, gap)
        assert decision.energy == pytest.approx(
            min(
                gap_idle_energy(PAPER_EVAL, gap),
                gap_sleep_energy(PAPER_EVAL, gap),
            )
        )


class TestOracleChain:
    def test_empty_chain_is_all_standby(self):
        result = oracle_energy(BARRACUDA, [], 100.0)
        assert result.energy == pytest.approx(100.0 * BARRACUDA.standby_power)
        assert result.spin_cycles == 0

    def test_unsorted_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            oracle_energy(BARRACUDA, [5.0, 1.0], 100.0)

    def test_horizon_before_last_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            oracle_energy(BARRACUDA, [50.0], 10.0)

    def test_dense_chain_stays_up(self):
        times = [float(t) for t in range(0, 100, 2)]
        result = oracle_energy(BARRACUDA, times, 200.0)
        # Only the lead-in sleep and the tail sleep.
        assert result.spin_cycles == 2

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_oracle_never_worse_than_2cpm(self, seed):
        rng = random.Random(seed)
        times = []
        t = 0.0
        for _ in range(rng.randint(0, 30)):
            t += rng.expovariate(0.05)
            times.append(t)
        horizon = (times[-1] if times else 0.0) + 100.0
        oracle = oracle_energy(PAPER_EVAL, times, horizon).energy
        online = two_cpm_energy(PAPER_EVAL, times, horizon)
        assert oracle <= online + 1e-6

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_2cpm_is_two_competitive_for_zero_standby(self, seed):
        """The Irani et al. bound, measured."""
        rng = random.Random(seed)
        times = []
        t = 0.0
        for _ in range(rng.randint(1, 30)):
            t += rng.expovariate(0.05)
            times.append(t)
        horizon = times[-1] + 100.0
        ratio = empirical_competitive_ratio(ZERO_STANDBY, [times], horizon)
        assert ratio <= 2.0 + 1e-6


class TestEmpiricalRatio:
    def test_ratio_at_least_one(self):
        chains = [[0.0, 100.0, 105.0], [50.0]]
        ratio = empirical_competitive_ratio(PAPER_EVAL, chains, 500.0)
        assert ratio >= 1.0 - 1e-9

    def test_no_chains_ratio_one(self):
        assert empirical_competitive_ratio(PAPER_EVAL, [], 10.0) == 1.0
