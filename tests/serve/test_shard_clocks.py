"""Regression tier: virtual clocks are per-process, never shared.

PR 5's drain deadline implicitly assumed one process, one
:class:`VirtualTimeLoop`. Sharding breaks that assumption on purpose:
every worker owns its own virtual timeline, and the router's collection
barrier must synchronise on *queues and liveness only* — if it ever
waited on a cross-shard clock, two shards with wildly different virtual
horizons would deadlock it (the fast shard's clock can never "catch up"
to the slow one's, because there is nothing connecting them).

These tests pin that down with two shards whose horizons differ by
~1000x: both must drain, in-process and across real worker processes,
and the merged ``time.now_s`` gauge must be the *max* across shards
(a sum or an average would be meaningless across independent clocks).
"""

from __future__ import annotations

import multiprocessing
from typing import List

from repro.serve.loadgen import LoadgenConfig
from repro.serve.shard import (
    ShardRequest,
    ShardedServiceConfig,
    build_topology,
    run_shard_session,
    run_sharded,
    sharded_document,
)
from repro.serve.shard.messages import ShardProgress, ShardResult
from repro.serve.shard.worker import shard_worker_main

CONFIG = ShardedServiceConfig(num_shards=2, num_disks=12, seed=11)

#: Virtual horizons of the two hand-crafted streams, seconds. The slow
#: shard's last arrival lands ~1000x beyond the fast shard's.
FAST_HORIZON_S = 1.0
SLOW_HORIZON_S = 1_000.0


def _stream(shard_id: int, horizon_s: float, count: int) -> List[ShardRequest]:
    """``count`` arrivals spread over ``[0, horizon_s]`` on one shard,
    addressing only data ids that shard owns."""
    spec = build_topology(CONFIG)[shard_id]
    return [
        ShardRequest(
            index=position,
            arrival_s=horizon_s * position / count,
            client_id=f"clock-{shard_id}",
            data_id=spec.data_ids[position % len(spec.data_ids)],
        )
        for position in range(count)
    ]


def test_virtual_clocks_are_per_session() -> None:
    """Two sessions in one process keep fully independent timelines."""
    specs = build_topology(CONFIG)
    slow = run_shard_session(specs[0], _stream(0, SLOW_HORIZON_S, 40))
    fast = run_shard_session(specs[1], _stream(1, FAST_HORIZON_S, 40))
    assert slow.virtual_elapsed_s >= SLOW_HORIZON_S * 0.9
    # The fast session starts from virtual zero again: the slow
    # session's horizon must not leak into it through any shared loop
    # or clock state. (Its elapsed exceeds its 1 s arrival horizon by a
    # queue-drain tail, but stays orders of magnitude under the slow
    # shard's 1000 s.)
    assert fast.virtual_elapsed_s < SLOW_HORIZON_S * 0.1
    assert slow.virtual_elapsed_s / fast.virtual_elapsed_s > 10.0
    assert len(slow.outcomes) == len(fast.outcomes) == 40


def _result(response_q: "multiprocessing.queues.Queue[object]") -> ShardResult:
    """Next non-heartbeat reply off a worker's response queue."""
    while True:
        reply = response_q.get(timeout=60)
        if isinstance(reply, ShardProgress):
            continue
        assert isinstance(reply, ShardResult)
        return reply


def test_skewed_horizons_do_not_wedge_the_barrier() -> None:
    """Real worker processes with ~1000x horizon skew both reply.

    The regression this guards: a barrier that waited for shards to
    reach a common virtual instant would hang here forever, because the
    fast shard's clock stops at ~1 s while the slow shard's runs to
    ~1000 s. The actual barrier waits on response queues + liveness,
    so both replies arrive promptly (virtual time costs no wall time).
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    specs = build_topology(CONFIG)
    streams = [_stream(0, SLOW_HORIZON_S, 30), _stream(1, FAST_HORIZON_S, 30)]
    request_qs = [context.Queue() for _ in specs]
    response_qs = [context.Queue() for _ in specs]
    processes = [
        context.Process(
            target=shard_worker_main,
            args=(spec, request_qs[shard_id], response_qs[shard_id]),
            daemon=True,
        )
        for shard_id, spec in enumerate(specs)
    ]
    try:
        for process in processes:
            process.start()
        for shard_id, stream in enumerate(streams):
            request_qs[shard_id].put(stream)
            request_qs[shard_id].put(None)
        # A generous wall bound: if the barrier semantics regressed to
        # clock-coupling, this get would hang and the timeout fails the
        # test instead of wedging the suite. Heartbeats precede the
        # result on the response queue; skip past them.
        replies = [_result(response_qs[shard_id]) for shard_id in (0, 1)]
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
            process.join()
        for q in request_qs + response_qs:
            q.close()
            q.cancel_join_thread()
    assert replies[0].virtual_elapsed_s >= SLOW_HORIZON_S * 0.9
    assert replies[1].virtual_elapsed_s < SLOW_HORIZON_S * 0.1
    assert len(replies[0].outcomes) == len(replies[1].outcomes) == 30


def test_merged_now_s_gauge_is_the_max_across_shards() -> None:
    """``time.now_s`` merges by max — the deployment's horizon is the
    slowest shard's horizon, not the sum of unrelated clocks."""
    load = LoadgenConfig(num_requests=300, rate_per_s=200.0, seed=11)
    run = run_sharded(CONFIG, load, multiprocess=False)
    per_shard_now = [
        result.registry_dump["gauges"]["time.now_s"]
        for result in run.shard_results
    ]
    document = sharded_document(CONFIG, load, run)
    merged_now = document["result"]["metrics"]["gauges"]["time.now_s"]
    assert merged_now == max(per_shard_now)
    assert merged_now == max(r.virtual_elapsed_s for r in run.shard_results)
