"""Tests for SchedulingService: policies, drain semantics, rejections.

The micro-batch edge cases (empty window ticks, a batch force-flushed
exactly at the drain deadline, queue-full shedding) all run under the
virtual clock — no wall sleeps anywhere.
"""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.serve.admission import Completed, Outcome, Rejected, RejectReason
from repro.serve.clock import virtual_run
from repro.serve.service import SchedulingService, ServiceConfig


def small_config(policy: str, **overrides: object) -> ServiceConfig:
    defaults: dict = dict(
        policy=policy,
        num_disks=6,
        replication_factor=2,
        num_data=100,
        seed=5,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def test_config_validation() -> None:
    with pytest.raises(ConfigurationError):
        ServiceConfig(policy="clairvoyant")
    with pytest.raises(ConfigurationError):
        ServiceConfig(window_s=0.0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_batch=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(num_data=0)


def test_lifecycle_errors() -> None:
    async def main() -> None:
        service = SchedulingService(small_config("online"))
        with pytest.raises(SimulationError):
            await service.submit("a", 0)  # not started
        await service.start()
        with pytest.raises(SimulationError):
            await service.start()  # double start
        await service.drain()
        with pytest.raises(SimulationError):
            await service.drain()  # already stopped

    virtual_run(main())


def test_online_requests_complete_on_replicas() -> None:
    async def main() -> List[Outcome]:
        service = SchedulingService(small_config("online"))
        await service.start()
        outcomes = list(
            await asyncio.gather(
                *(service.submit("client", data_id) for data_id in range(5))
            )
        )
        await service.drain()
        for outcome in outcomes:
            assert isinstance(outcome, Completed)
            assert outcome.disk_id in service.backend.locations(outcome.data_id)
            assert outcome.completed_s >= outcome.arrival_s
        return outcomes

    outcomes = virtual_run(main())
    assert len(outcomes) == 5


def test_micro_batch_empty_window_ticks_are_counted() -> None:
    """Window ticks with nothing queued increment the empty-tick counter
    and dispatch no batches."""

    async def main() -> SchedulingService:
        service = SchedulingService(
            small_config("micro-batch", window_s=0.1)
        )
        await service.start()
        await service.clock.sleep(1.05)  # ~10 windows pass with no load
        await service.drain()
        return service

    service = virtual_run(main())
    snap = service.metrics_snapshot()
    assert snap["counters"]["batches.empty_ticks"] >= 5
    assert snap["counters"]["batches.dispatched"] == 0
    assert snap["counters"]["requests.completed"] == 0


def test_micro_batch_flushes_queued_batch_exactly_at_drain_deadline() -> None:
    """Requests still queued when the drain deadline lands are dispatched
    as one final full batch at exactly the deadline — not shed."""

    async def main() -> SchedulingService:
        # Window far longer than the drain grace: the regular tick would
        # land at t=50, so only the deadline flush can dispatch.
        service = SchedulingService(
            small_config("micro-batch", window_s=50.0)
        )
        await service.start()
        tasks = [
            asyncio.get_running_loop().create_task(
                service.submit("client", data_id)
            )
            for data_id in range(3)
        ]
        await asyncio.sleep(0)  # let the submits enqueue
        assert service.queue_depth == 3
        await service.drain(grace_s=2.0)
        outcomes = await asyncio.gather(*tasks)
        for outcome in outcomes:
            assert isinstance(outcome, Completed)
        return service

    service = virtual_run(main())
    snap = service.metrics_snapshot()
    assert snap["counters"]["batches.dispatched"] == 1
    histogram = snap["histograms"]["batch.size"]
    assert isinstance(histogram, dict)
    assert histogram["max"] == 3.0
    # The batch waited in the queue until the deadline (2 s after the
    # arrivals at ~0), so the recorded queue wait is the grace period.
    waits = snap["histograms"]["queue_wait_s"]
    assert isinstance(waits, dict)
    assert waits["min"] >= 2.0
    assert waits["max"] == pytest.approx(2.0, abs=1e-6)


def test_zero_grace_drain_flushes_immediately() -> None:
    async def main() -> List[Outcome]:
        service = SchedulingService(
            small_config("micro-batch", window_s=30.0)
        )
        await service.start()
        tasks = [
            asyncio.get_running_loop().create_task(
                service.submit("client", data_id)
            )
            for data_id in range(2)
        ]
        await asyncio.sleep(0)
        await service.drain(grace_s=0.0)
        return list(await asyncio.gather(*tasks))

    outcomes = virtual_run(main())
    assert all(isinstance(outcome, Completed) for outcome in outcomes)


def test_full_ingress_queue_sheds_with_typed_rejection() -> None:
    """Submits beyond the bounded queue resolve to QUEUE_FULL instantly,
    and the queued requests still complete."""

    async def main() -> List[Outcome]:
        service = SchedulingService(
            small_config("micro-batch", window_s=40.0, queue_limit=2)
        )
        await service.start()
        tasks = [
            asyncio.get_running_loop().create_task(
                service.submit("client", data_id)
            )
            for data_id in range(5)
        ]
        # Two loop turns: first lets every submit run its admission
        # check, second lets the rejected tasks finish.
        await asyncio.sleep(0)
        await asyncio.sleep(0)
        assert service.queue_depth == 2
        await service.drain(grace_s=1.0)
        return list(await asyncio.gather(*tasks))

    outcomes = virtual_run(main())
    completed = [o for o in outcomes if isinstance(o, Completed)]
    rejected = [o for o in outcomes if isinstance(o, Rejected)]
    assert len(completed) == 2
    assert len(rejected) == 3
    assert all(o.reason is RejectReason.QUEUE_FULL for o in rejected)


def test_rate_limited_client_sheds_with_typed_rejection() -> None:
    async def main() -> List[Outcome]:
        service = SchedulingService(
            small_config(
                "online", client_rate_per_s=1.0, client_burst=2.0
            )
        )
        await service.start()
        outcomes: List[Outcome] = []
        tasks = [
            asyncio.get_running_loop().create_task(
                service.submit("greedy", data_id)
            )
            for data_id in range(4)
        ]
        outcomes = list(await asyncio.gather(*tasks))
        await service.drain()
        return outcomes

    outcomes = virtual_run(main())
    rejected = [o for o in outcomes if isinstance(o, Rejected)]
    assert len(rejected) == 2
    assert all(o.reason is RejectReason.RATE_LIMITED for o in rejected)


def test_submits_during_drain_are_shed_as_shutting_down() -> None:
    async def main() -> Outcome:
        service = SchedulingService(small_config("online"))
        await service.start()
        first = await service.submit("client", 1)
        assert isinstance(first, Completed)
        drain_task = asyncio.get_running_loop().create_task(
            service.drain(grace_s=1.0)
        )
        await asyncio.sleep(0)  # drain flag set, service still stopping
        late = await service.submit("client", 2)
        await drain_task
        return late

    late = virtual_run(main())
    assert isinstance(late, Rejected)
    assert late.reason is RejectReason.SHUTTING_DOWN


def test_max_batch_caps_regular_ticks_but_not_final_flush() -> None:
    async def main() -> SchedulingService:
        service = SchedulingService(
            small_config("micro-batch", window_s=0.5, max_batch=2)
        )
        await service.start()
        tasks = [
            asyncio.get_running_loop().create_task(
                service.submit("client", data_id)
            )
            for data_id in range(5)
        ]
        await asyncio.sleep(0)
        # First tick at 0.5 dispatches 2; the rest wait for later ticks.
        await service.clock.sleep_until(0.6)
        snap = service.metrics_snapshot()
        histogram = snap["histograms"]["batch.size"]
        assert isinstance(histogram, dict)
        assert histogram["max"] == 2.0
        await service.drain(grace_s=0.0)  # final flush ignores max_batch
        await asyncio.gather(*tasks)
        return service

    service = virtual_run(main())
    snap = service.metrics_snapshot()
    histogram = snap["histograms"]["batch.size"]
    assert isinstance(histogram, dict)
    assert histogram["max"] == 3.0
    assert snap["counters"]["requests.completed"] == 5


def test_metrics_snapshot_is_complete_and_consistent() -> None:
    async def main() -> SchedulingService:
        service = SchedulingService(small_config("online"))
        await service.start()
        await asyncio.gather(
            *(service.submit("client", data_id) for data_id in range(4))
        )
        await service.drain()
        return service

    service = virtual_run(main())
    snap = service.metrics_snapshot()
    assert snap["counters"]["requests.offered"] == 4
    assert snap["counters"]["requests.admitted"] == 4
    assert snap["counters"]["requests.completed"] == 4
    assert snap["counters"]["requests.rejected"] == 0
    gauges = snap["gauges"]
    assert gauges["queue.depth"] == 0
    assert gauges["inflight.depth"] == 0
    assert gauges["energy.joules"] > 0.0
    assert gauges["requests.submitted_to_disks"] == 4
    assert gauges["engine.events_processed"] > 0
    latency = snap["histograms"]["response_s"]
    assert isinstance(latency, dict)
    assert latency["count"] == 4
    assert latency["p99"] >= latency["p50"] > 0.0
