"""Tests for the virtual-time asyncio loop and the service clock."""

from __future__ import annotations

import asyncio
import time
from typing import List, Tuple

from repro.serve.clock import ServiceClock, VirtualTimeLoop, virtual_run


def test_virtual_sleeps_fire_in_deadline_order() -> None:
    events: List[Tuple[str, float]] = []

    async def sleeper(tag: str, delay_s: float, clock: ServiceClock) -> None:
        await clock.sleep(delay_s)
        events.append((tag, clock.now))

    async def main() -> None:
        clock = ServiceClock()
        await asyncio.gather(
            sleeper("slow", 5.0, clock),
            sleeper("fast", 1.0, clock),
            sleeper("mid", 2.5, clock),
        )

    virtual_run(main())
    assert events == [("fast", 1.0), ("mid", 2.5), ("slow", 5.0)]


def test_hours_of_virtual_time_cost_no_wall_time() -> None:
    async def main() -> float:
        clock = ServiceClock()
        await clock.sleep(3_600.0)
        return clock.now

    start = time.perf_counter()
    elapsed_virtual_s = virtual_run(main())
    elapsed_wall_s = time.perf_counter() - start
    assert elapsed_virtual_s == 3_600.0
    assert elapsed_wall_s < 5.0  # CI-safe bound; really milliseconds


def test_wait_for_timeout_advances_virtual_time() -> None:
    async def main() -> float:
        clock = ServiceClock()
        event = asyncio.Event()
        try:
            await asyncio.wait_for(event.wait(), timeout=7.5)
        except asyncio.TimeoutError:
            pass
        return clock.now

    assert virtual_run(main()) == 7.5


def test_short_timeout_retry_loop_makes_progress() -> None:
    """A retry loop around tiny timeouts must advance time, not spin.

    Regression test for the resolution-slack freeze: a timer one float
    ulp ahead of the frozen clock kept firing "due" without the virtual
    clock moving, so a retry loop never progressed.
    """

    async def main() -> float:
        clock = ServiceClock()
        event = asyncio.Event()
        for _ in range(100):
            try:
                await asyncio.wait_for(event.wait(), timeout=1e-9)
            except asyncio.TimeoutError:
                pass
        return clock.now

    elapsed_s = virtual_run(main())
    assert elapsed_s > 0.0


def test_sleep_until_and_non_positive_sleep() -> None:
    async def main() -> Tuple[float, float]:
        clock = ServiceClock()
        await clock.sleep_until(2.0)
        at_two = clock.now
        await clock.sleep(-5.0)  # yields without going backwards
        return at_two, clock.now

    at_two, after = virtual_run(main())
    assert at_two == 2.0
    assert after == 2.0


def test_virtual_loop_time_starts_at_zero() -> None:
    loop = VirtualTimeLoop()
    try:
        assert loop.time() == 0.0
    finally:
        loop.close()


def test_virtual_run_returns_coroutine_result() -> None:
    async def main() -> str:
        await asyncio.sleep(0.5)
        return "done"

    assert virtual_run(main()) == "done"
