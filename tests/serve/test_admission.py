"""Tests for admission control: token buckets, gates, typed outcomes."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import (
    AdmissionController,
    Completed,
    Rejected,
    RejectReason,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self) -> None:
        bucket = TokenBucket(rate_per_s=1.0, burst=3.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_refills_from_timestamps(self) -> None:
        bucket = TokenBucket(rate_per_s=2.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self) -> None:
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0)
        assert bucket.available(1_000.0) == 2.0

    def test_time_going_backwards_does_not_refill(self) -> None:
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1.0, burst=0.5)
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            bucket.try_acquire(0.0, cost=0.0)


class TestAdmissionController:
    def test_admits_below_all_limits(self) -> None:
        controller = AdmissionController(queue_limit=4)
        assert controller.admit("a", 0.0, queue_depth=0) is None

    def test_full_queue_rejects(self) -> None:
        controller = AdmissionController(queue_limit=2)
        assert (
            controller.admit("a", 0.0, queue_depth=2)
            is RejectReason.QUEUE_FULL
        )

    def test_rate_limit_rejects_after_burst(self) -> None:
        controller = AdmissionController(
            queue_limit=100, client_rate_per_s=1.0, client_burst=2.0
        )
        assert controller.admit("a", 0.0, queue_depth=0) is None
        assert controller.admit("a", 0.0, queue_depth=0) is None
        assert (
            controller.admit("a", 0.0, queue_depth=0)
            is RejectReason.RATE_LIMITED
        )

    def test_buckets_are_per_client(self) -> None:
        controller = AdmissionController(
            queue_limit=100, client_rate_per_s=1.0, client_burst=1.0
        )
        assert controller.admit("a", 0.0, queue_depth=0) is None
        assert (
            controller.admit("a", 0.0, queue_depth=0)
            is RejectReason.RATE_LIMITED
        )
        assert controller.admit("b", 0.0, queue_depth=0) is None

    def test_full_queue_does_not_charge_the_bucket(self) -> None:
        controller = AdmissionController(
            queue_limit=1, client_rate_per_s=1.0, client_burst=1.0
        )
        assert (
            controller.admit("a", 0.0, queue_depth=1)
            is RejectReason.QUEUE_FULL
        )
        # The queue-full rejection above must not have consumed a token.
        assert controller.admit("a", 0.0, queue_depth=0) is None

    def test_no_rate_limit_means_no_buckets(self) -> None:
        controller = AdmissionController(queue_limit=4)
        assert controller.bucket("a") is None

    def test_bad_config_fails_at_construction(self) -> None:
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_limit=4, client_rate_per_s=-1.0)


class TestOutcomes:
    def test_completed_response_time(self) -> None:
        outcome = Completed(
            request_id=1,
            client_id="a",
            data_id=2,
            disk_id=3,
            arrival_s=1.5,
            completed_s=4.0,
        )
        assert outcome.accepted
        assert outcome.response_time_s == 2.5

    def test_rejected_is_not_accepted(self) -> None:
        outcome = Rejected(
            client_id="a",
            data_id=2,
            reason=RejectReason.QUEUE_FULL,
            rejected_s=1.0,
        )
        assert not outcome.accepted
        assert outcome.reason.value == "queue_full"
