"""Tests for the load generator (open/closed loop, arrival shapes)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import Completed
from repro.serve.clock import virtual_run
from repro.serve.loadgen import LoadgenConfig, LoadResult, run_load
from repro.serve.service import SchedulingService, ServiceConfig


def run_session(load: LoadgenConfig, policy: str = "online") -> LoadResult:
    service = SchedulingService(
        ServiceConfig(
            policy=policy,
            num_disks=6,
            replication_factor=2,
            num_data=200,
            seed=11,
        )
    )

    async def go() -> LoadResult:
        return await run_load(service, load, drain_grace_s=1.0)

    return virtual_run(go())


def test_config_validation() -> None:
    with pytest.raises(ConfigurationError):
        LoadgenConfig(num_requests=0)
    with pytest.raises(ConfigurationError):
        LoadgenConfig(rate_per_s=0.0)
    with pytest.raises(ConfigurationError):
        LoadgenConfig(arrival="uniform")
    with pytest.raises(ConfigurationError):
        LoadgenConfig(loop="half-open")
    with pytest.raises(ConfigurationError):
        LoadgenConfig(burst_factor=0.5)


def test_open_loop_completes_all_below_saturation() -> None:
    result = run_session(
        LoadgenConfig(num_requests=200, rate_per_s=50.0, seed=2)
    )
    assert result.offered == 200
    assert result.completed == 200
    assert result.rejected == 0
    assert result.completed_fraction == 1.0
    assert len(result.response_times_s) == 200
    assert all(rt >= 0.0 for rt in result.response_times_s)


def test_open_loop_outcomes_are_in_submission_order() -> None:
    result = run_session(
        LoadgenConfig(num_requests=50, rate_per_s=50.0, seed=2)
    )
    arrivals = [
        outcome.arrival_s
        for outcome in result.outcomes
        if isinstance(outcome, Completed)
    ]
    assert arrivals == sorted(arrivals)


def test_same_seed_reproduces_the_same_run() -> None:
    load = LoadgenConfig(num_requests=150, rate_per_s=80.0, seed=9)
    first = run_session(load)
    second = run_session(load)
    assert first.outcomes == second.outcomes


def test_different_seeds_differ() -> None:
    first = run_session(LoadgenConfig(num_requests=100, rate_per_s=80.0, seed=1))
    second = run_session(LoadgenConfig(num_requests=100, rate_per_s=80.0, seed=2))
    assert first.outcomes != second.outcomes


def test_bursty_arrivals_are_burstier_than_poisson() -> None:
    """The MMPP schedule has higher inter-arrival variance at one rate."""
    import random

    poisson = LoadgenConfig(num_requests=500, rate_per_s=100.0, seed=4)
    bursty = LoadgenConfig(
        num_requests=500, rate_per_s=100.0, seed=4, arrival="bursty"
    )

    def cv(config: LoadgenConfig) -> float:
        times = config.arrival_process().generate(500, random.Random(4))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var**0.5 / mean

    assert cv(bursty) > cv(poisson)


def test_closed_loop_completes_everything() -> None:
    result = run_session(
        LoadgenConfig(
            num_requests=120, rate_per_s=60.0, num_clients=4, loop="closed", seed=3
        )
    )
    assert result.offered == 120
    assert result.completed == 120


def test_closed_loop_is_deterministic() -> None:
    load = LoadgenConfig(
        num_requests=80, rate_per_s=40.0, num_clients=3, loop="closed", seed=6
    )
    assert run_session(load).outcomes == run_session(load).outcomes


def test_tally_counts_rejections_by_reason() -> None:
    service = SchedulingService(
        ServiceConfig(
            policy="micro-batch",
            num_disks=6,
            replication_factor=2,
            num_data=200,
            seed=11,
            queue_limit=4,
            window_s=10.0,
        )
    )
    load = LoadgenConfig(num_requests=100, rate_per_s=500.0, seed=5)

    async def go() -> LoadResult:
        return await run_load(service, load, drain_grace_s=0.5)

    result = virtual_run(go())
    assert result.rejected > 0
    assert result.completed + result.rejected == 100
    by_reason = dict(result.rejected_by_reason)
    assert by_reason["queue_full"] == result.rejected
