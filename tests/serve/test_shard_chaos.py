"""Chaos e2e: SIGKILL one shard worker mid-traffic.

The sharded reading of the ``repro.faults`` drill idiom: the failure is
scripted (a :class:`ShardKill` at a fixed schedule instant), so the
degraded run is as reproducible as a healthy one. The drill asserts the
blast radius precisely:

* only the victim's keyspace is shed, every shed outcome typed
  ``shard_down``;
* survivors' keyspaces complete at 1.0 — no collateral damage;
* total lost requests are bounded by the victim's keyspace traffic;
* the merged report stays schema-valid and records the loss.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness.schema import validate_bench_payload
from repro.serve.admission import Completed, Rejected, RejectReason
from repro.serve.loadgen import LoadgenConfig
from repro.serve.shard import (
    ShardKill,
    ShardedServiceConfig,
    assign_data,
    run_sharded,
    sharded_document,
)

CONFIG = ShardedServiceConfig(num_shards=3, num_disks=18, seed=5)
LOAD = LoadgenConfig(num_requests=450, rate_per_s=300.0, num_clients=8, seed=5)
VICTIM = 1
KILL_AT_S = 0.5


def _owned_by(shard_id: int) -> set:
    table = assign_data(CONFIG)
    return {
        data_id
        for data_id in sorted(range(CONFIG.num_data))
        if table[data_id] == shard_id
    }


def test_killing_one_shard_sheds_only_its_keyspace() -> None:
    run = run_sharded(
        CONFIG, LOAD, kills=[ShardKill(shard_id=VICTIM, time_s=KILL_AT_S)]
    )
    assert run.shards_down == (VICTIM,)
    assert [r.shard_id for r in run.shard_results] == [0, 2]

    victim_keys = _owned_by(VICTIM)
    shed = [
        outcome
        for outcome in run.outcomes
        if isinstance(outcome, Rejected)
        and outcome.reason is RejectReason.SHARD_DOWN
    ]
    # Typed shard_down outcomes, and nothing shed outside the victim's
    # keyspace.
    assert shed, "the drill must actually shed something"
    for outcome in shed:
        assert outcome.data_id in victim_keys
    # No other rejection kinds anywhere (the workload is below
    # saturation), so survivors completed their keyspaces at 1.0.
    for outcome in run.outcomes:
        if isinstance(outcome, Rejected):
            assert outcome.reason is RejectReason.SHARD_DOWN
        else:
            assert isinstance(outcome, Completed)
            assert outcome.data_id not in victim_keys

    # Lost requests are bounded by the victim's total keyspace traffic;
    # requests the victim completed before the kill never reached it
    # anyway (the whole schedule routes up front), so here the bound is
    # exact.
    victim_traffic = sum(
        1 for o in run.outcomes if o.data_id in victim_keys
    )
    assert run.requests_lost == len(shed) == victim_traffic
    assert run.requests_lost < len(run.outcomes)


def test_chaos_report_is_schema_valid_and_records_the_loss() -> None:
    run = run_sharded(
        CONFIG, LOAD, kills=[ShardKill(shard_id=VICTIM, time_s=KILL_AT_S)]
    )
    document = sharded_document(CONFIG, LOAD, run)
    validate_bench_payload(document)
    result = document["result"]
    assert result["chaos"] == {
        "shards_down": [VICTIM],
        "requests_lost": run.requests_lost,
    }
    assert (
        result["outcome"]["rejected_by_reason"]["shard_down"]
        == run.requests_lost
    )
    # The merged registry folds the router-shed requests in, so the
    # global counters still balance.
    counters = result["metrics"]["counters"]
    assert counters["requests.offered"] == LOAD.num_requests
    assert counters["rejected.shard_down"] == run.requests_lost
    assert (
        counters["requests.completed"] + counters["requests.rejected"]
        == LOAD.num_requests
    )


def test_chaos_drill_is_reproducible() -> None:
    kills = [ShardKill(shard_id=VICTIM, time_s=KILL_AT_S)]
    first = run_sharded(CONFIG, LOAD, kills=kills)
    second = run_sharded(CONFIG, LOAD, kills=kills)
    assert first.outcomes == second.outcomes
    assert first.shards_down == second.shards_down
    assert first.requests_lost == second.requests_lost


def test_kill_validation() -> None:
    with pytest.raises(ConfigurationError):
        run_sharded(
            CONFIG,
            LOAD,
            multiprocess=False,
            kills=[ShardKill(shard_id=0, time_s=0.1)],
        )
    with pytest.raises(ConfigurationError):
        run_sharded(CONFIG, LOAD, kills=[ShardKill(shard_id=9, time_s=0.1)])
    with pytest.raises(ConfigurationError):
        run_sharded(
            CONFIG,
            LOAD,
            kills=[
                ShardKill(shard_id=0, time_s=0.1),
                ShardKill(shard_id=0, time_s=0.2),
            ],
        )
    with pytest.raises(ConfigurationError):
        run_sharded(
            CONFIG,
            LOAD,
            kills=[
                ShardKill(shard_id=s, time_s=0.1)
                for s in range(CONFIG.num_shards)
            ],
        )