"""End-to-end acceptance tests for the serving stack.

Drives >= 10k requests through SchedulingService under the virtual
clock in both dispatch modes and asserts the PR's acceptance criteria:

1. two same-seed runs produce byte-identical report documents,
2. micro-batching yields lower energy than online dispatch at the
   same arrival rate, and
3. overload against a bounded ingress queue sheds load with typed
   rejections rather than hanging or crashing.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.experiments.harness.schema import validate_bench_payload
from repro.serve.admission import RejectReason, Rejected
from repro.serve.clock import virtual_run
from repro.serve.loadgen import LoadgenConfig, LoadResult, run_load
from repro.serve.reporting import serve_document
from repro.serve.service import SchedulingService, ServiceConfig

NUM_REQUESTS = 10_000
RATE_PER_S = 100.0
DRAIN_GRACE_S = 2.0

LOAD = LoadgenConfig(num_requests=NUM_REQUESTS, rate_per_s=RATE_PER_S, seed=7)


def run_policy(policy: str) -> Dict[str, Any]:
    """Run one full session and return its canonical report document."""
    service = SchedulingService(
        ServiceConfig(policy=policy, seed=3, window_s=1.0)
    )

    async def go() -> LoadResult:
        return await run_load(service, LOAD, drain_grace_s=DRAIN_GRACE_S)

    result = virtual_run(go())
    return serve_document(service, LOAD, result, virtual_clock=True)


class TestAcceptance:
    """One shared run per policy; every criterion checks those runs."""

    documents: Dict[str, Dict[str, Any]] = {}

    @classmethod
    def setup_class(cls) -> None:
        cls.documents = {
            policy: run_policy(policy)
            for policy in ("online", "micro-batch")
        }

    def test_all_requests_complete_in_both_modes(self) -> None:
        for policy, document in self.documents.items():
            outcome = document["result"]["outcome"]
            assert outcome["offered"] == NUM_REQUESTS, policy
            assert outcome["completed"] == NUM_REQUESTS, policy
            assert outcome["rejected"] == 0, policy

    def test_reports_validate_against_bench_schema(self) -> None:
        for document in self.documents.values():
            assert validate_bench_payload(document) == []

    def test_same_seed_runs_are_byte_identical(self) -> None:
        for policy, document in self.documents.items():
            repeat = run_policy(policy)
            first = json.dumps(document, sort_keys=True)
            second = json.dumps(repeat, sort_keys=True)
            assert first == second, policy

    def test_micro_batching_saves_energy_at_equal_load(self) -> None:
        def energy_j(policy: str) -> float:
            gauges = self.documents[policy]["result"]["metrics"]["gauges"]
            joules = gauges["energy.joules"]
            assert isinstance(joules, float)
            return joules

        online_j = energy_j("online")
        batch_j = energy_j("micro-batch")
        assert batch_j < online_j
        # The measured gap at this operating point is ~5%; require at
        # least 2% so the assertion is meaningful, not a coin flip.
        assert (online_j - batch_j) / online_j > 0.02

    def test_virtual_clock_reports_are_wall_free(self) -> None:
        for document in self.documents.values():
            assert document["created_unix"] == 0.0
            assert document["peak_rss_bytes"] is None
            assert document["wall_clock_s"] > 90.0  # ~100 s of virtual time


def test_overload_sheds_with_typed_rejections() -> None:
    """A bounded queue under a >10x overload rejects the excess with
    QUEUE_FULL while still completing what it admitted."""
    service = SchedulingService(
        ServiceConfig(
            policy="micro-batch",
            seed=3,
            window_s=1.0,
            queue_limit=32,
        )
    )
    load = LoadgenConfig(num_requests=2_000, rate_per_s=5_000.0, seed=7)

    async def go() -> LoadResult:
        return await run_load(service, load, drain_grace_s=DRAIN_GRACE_S)

    result = virtual_run(go())
    assert result.offered == 2_000
    assert result.completed + result.rejected == 2_000
    assert result.rejected > 1_000  # overload, most load is shed
    assert result.completed >= 32  # but admitted work still finishes
    for outcome in result.outcomes:
        if isinstance(outcome, Rejected):
            assert outcome.reason is RejectReason.QUEUE_FULL
    snap = service.metrics_snapshot()
    assert snap["counters"]["requests.rejected"] == result.rejected
    assert snap["counters"]["rejected.queue_full"] == result.rejected
