"""Property tests for the consistent-hash routing ring.

The three contract properties the sharded router leans on:

* every key resolves to exactly one shard from the live set;
* removing a shard remaps only the keys it owned (everyone else's
  assignment is untouched), and that moved share is ~1/N;
* the mapping is a pure function of ``(num_shards, vnodes, seed)`` —
  stable across processes, because points come from ``blake2b``, never
  from Python's per-process ``hash()``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve.shard.ring import HashRing

KEYS = st.one_of(
    st.integers(min_value=0, max_value=100_000),
    st.text(min_size=0, max_size=24),
)


@given(
    num_shards=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    key=KEYS,
)
@settings(max_examples=200, deadline=None)
def test_every_key_maps_to_exactly_one_known_shard(
    num_shards: int, seed: int, key: object
) -> None:
    ring = HashRing(num_shards, vnodes=16, seed=seed)
    owner = ring.lookup(key)
    assert 0 <= owner < num_shards
    # Deterministic: the same lookup twice is the same shard.
    assert ring.lookup(key) == owner


@given(
    num_shards=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    key=KEYS,
    victim=st.integers(min_value=0, max_value=11),
)
@settings(max_examples=200, deadline=None)
def test_removal_touches_only_the_victims_keys(
    num_shards: int, seed: int, key: object, victim: int
) -> None:
    victim = victim % num_shards
    ring = HashRing(num_shards, vnodes=16, seed=seed)
    before = ring.lookup(key)
    live = [s for s in range(num_shards) if s != victim]
    after = ring.lookup(key, live=live)
    if before != victim:
        assert after == before  # survivor keys must not move
    else:
        assert after != victim  # victim keys must land on a survivor


@given(
    num_shards=st.integers(min_value=1, max_value=8),
    vnodes=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
    key=KEYS,
)
@settings(max_examples=100, deadline=None)
def test_live_set_of_all_shards_equals_default_lookup(
    num_shards: int, vnodes: int, seed: int, key: object
) -> None:
    ring = HashRing(num_shards, vnodes=vnodes, seed=seed)
    assert ring.lookup(key) == ring.lookup(key, live=range(num_shards))


def test_removal_moves_roughly_one_nth_of_keys() -> None:
    """At 4 shards, removing one remaps its ~25% share, nothing more."""
    num_keys = 4_000
    ring = HashRing(4, seed=7)
    keys = list(range(num_keys))
    before = ring.ownership(keys)
    after = ring.ownership(keys, live=[0, 1, 3])
    moved = sum(1 for b, a in zip(before, after) if b != a)
    owned_by_victim = sum(1 for b in before if b == 2)
    assert moved == owned_by_victim
    # The victim's share is ~1/4 at default vnode density; allow slack
    # for hash variance but catch gross imbalance.
    assert 0.15 * num_keys <= moved <= 0.35 * num_keys


def _ownership_in_subprocess(args: "tuple[int, int, int]") -> List[int]:
    """Module-level so ProcessPoolExecutor can pickle it (spawn-safe)."""
    num_shards, seed, num_keys = args
    ring = HashRing(num_shards, seed=seed)
    return ring.ownership(list(range(num_keys)))


def test_routing_is_stable_across_processes() -> None:
    """A fresh process (fresh ``PYTHONHASHSEED``) builds the same ring."""
    args = (5, 42, 500)
    local = _ownership_in_subprocess(args)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(_ownership_in_subprocess, args).result()
    assert remote == local


def test_lookup_validates_the_live_set() -> None:
    ring = HashRing(3, seed=1)
    with pytest.raises(ConfigurationError):
        ring.lookup("k", live=[])
    with pytest.raises(ConfigurationError):
        ring.lookup("k", live=[0, 7])
    with pytest.raises(ConfigurationError):
        HashRing(0)
    with pytest.raises(ConfigurationError):
        HashRing(2, vnodes=0)
