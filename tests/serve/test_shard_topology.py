"""Topology invariants: partitioning of disks, data, and popularity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.shard.topology import (
    ShardedServiceConfig,
    assign_data,
    build_topology,
)


def test_data_partition_is_disjoint_and_complete() -> None:
    config = ShardedServiceConfig(num_shards=4, num_disks=24, num_data=1_000)
    specs = build_topology(config)
    seen: dict = {}
    for spec in specs:
        assert list(spec.data_ids) == sorted(spec.data_ids)
        for data_id in spec.data_ids:
            assert data_id not in seen, "data id owned by two shards"
            seen[data_id] = spec.shard_id
    assert sorted(seen) == list(range(config.num_data))


def test_disk_slices_are_contiguous_and_cover_the_fleet() -> None:
    config = ShardedServiceConfig(num_shards=3, num_disks=20, num_data=100)
    specs = build_topology(config)
    covered = []
    for spec in specs:
        ids = list(spec.global_disk_ids)
        assert ids == list(range(ids[0], ids[-1] + 1)), "slice not contiguous"
        assert spec.service.num_disks == len(ids)
        covered.extend(ids)
    assert covered == list(range(config.num_disks))


def test_replicas_of_one_object_stay_on_one_shard() -> None:
    """Each shard's catalog must place only over its own local disks."""
    config = ShardedServiceConfig(num_shards=3, num_disks=18, num_data=300)
    for spec in build_topology(config):
        catalog = spec.make_catalog()
        for data_id in spec.data_ids:
            locations = catalog.locations(data_id)
            assert len(locations) == config.replication_factor
            for disk_id in locations:
                assert 0 <= disk_id < spec.service.num_disks


def test_routing_table_matches_topology_ownership() -> None:
    config = ShardedServiceConfig(num_shards=5, num_disks=30, num_data=777)
    owners = assign_data(config)
    for spec in build_topology(config):
        for data_id in spec.data_ids:
            assert owners[data_id] == spec.shard_id


def test_hot_head_is_weight_balanced() -> None:
    """The Zipf head must spread its expected load across all shards.

    With pure consistent hashing one shard would own rank 0 and with it
    ~12% of all traffic (zipf 1.0, 4000 ids). Greedy weight assignment
    caps the hot-head expected-load spread near 1/num_shards.
    """
    config = ShardedServiceConfig(num_shards=4, num_disks=24, num_data=4_000)
    owners = assign_data(config)
    loads = [0.0] * config.num_shards
    for rank in range(config.hot_data_ids):
        loads[owners[rank]] += (rank + 1) ** -config.zipf_exponent
    mean = sum(loads) / len(loads)
    for load in loads:
        assert abs(load - mean) / mean < 0.25


def test_shard_seeds_are_distinct() -> None:
    config = ShardedServiceConfig(num_shards=8, num_disks=48, num_data=100)
    seeds = [spec.service.seed for spec in build_topology(config)]
    assert len(set(seeds)) == len(seeds)
    assert config.seed not in seeds


def test_validation_rejects_starved_shards() -> None:
    with pytest.raises(ConfigurationError):
        # 10 disks over 4 shards leaves 2-disk shards < replication 3.
        ShardedServiceConfig(num_shards=4, num_disks=10, replication_factor=3)
    with pytest.raises(ConfigurationError):
        ShardedServiceConfig(num_shards=0)
    with pytest.raises(ConfigurationError):
        ShardedServiceConfig(policy="clairvoyant")
    with pytest.raises(ConfigurationError):
        ShardedServiceConfig(hot_data_ids=-1)
