"""Self-healing drills: failover, supervised restart, hangs, disk death.

Four fault families, each asserting the availability contract the PR 8
issue sets out, on top of the shed-only drills in
``test_shard_chaos.py``:

* **cross-shard failover** — at ``shard_replication_factor = 2`` a
  SIGKILLed shard's keys are served by replica shards: *zero*
  ``shard_down`` terminal outcomes, availability >= 99.9%;
* **supervised recovery** — a scripted restart (and the barrier-entry
  sweep for terminal kills under ``supervise=True``) replays the dead
  worker's outbox; the restarted shard rejoins the live set within the
  run, asserted through its :class:`RecoveryReport` *and* its presence
  in the merged per-shard results, with first-wins request-id dedup
  proving no duplicate completions;
* **hangs** — a SIGSTOPped worker is alive but silent; the barrier's
  response timeout escalates it instead of wedging (the satellite
  regression this PR hardens the collection barrier against);
* **in-shard disk death** — a disk crash-stop under traffic drains its
  queue back through the scheduler onto surviving replicas, and only a
  key with *no* surviving in-shard replica is shed as the typed
  ``data_unavailable``.

Chaos runs are scripted on the schedule clock, so each drill is also
re-run and byte-compared: a fault-injected run is exactly as
reproducible as a healthy one.
"""

from __future__ import annotations

from repro.serve.admission import Completed, Rejected, RejectReason
from repro.serve.loadgen import LoadgenConfig, tally_outcomes
from repro.serve.shard import (
    ShardHang,
    ShardKill,
    ShardedServiceConfig,
    assign_data,
    run_sharded,
    sharded_document,
)
from repro.serve.shard.messages import ShardResult
from repro.serve.shard.reporting import canonical_json
from repro.serve.shard.router import _place_outcomes
from repro.experiments.harness.schema import validate_bench_payload

LOAD = LoadgenConfig(num_requests=450, rate_per_s=300.0, num_clients=8, seed=5)

R2_CONFIG = ShardedServiceConfig(
    num_shards=3,
    num_disks=18,
    seed=5,
    shard_replication_factor=2,
)

R1_CONFIG = ShardedServiceConfig(num_shards=3, num_disks=18, seed=5)

VICTIM = 1
KILL_AT_S = 0.5


def test_replicated_kill_fails_over_with_zero_shard_down() -> None:
    """The tentpole acceptance drill: R=2, one shard SIGKILLed mid-run."""
    run = run_sharded(
        R2_CONFIG, LOAD, kills=(ShardKill(shard_id=VICTIM, time_s=KILL_AT_S),)
    )
    assert run.shards_down == (VICTIM,)
    # Zero terminal shard_down outcomes: every key the dead shard owned
    # was served by (or shed from) its replica shard instead.
    reasons = [o.reason for o in run.outcomes if isinstance(o, Rejected)]
    assert RejectReason.SHARD_DOWN not in reasons
    assert run.availability >= 0.999
    # Failover actually happened and is visible in the result...
    assert run.requests_failed_over > 0
    assert run.failed_over_indices
    # ...and everything that travelled through failover was a key whose
    # primary owner is the dead shard.
    owners = assign_data(R2_CONFIG)
    for index in run.failed_over_indices:
        assert owners[run.outcomes[index].data_id] == VICTIM
    # The merged report stays schema-valid and records the new mode.
    document = sharded_document(R2_CONFIG, LOAD, run)
    validate_bench_payload(document)
    result = document["result"]
    assert result["deployment"]["shard_replication_factor"] == 2
    counters = result["metrics"]["counters"]
    assert counters["router.requests_failed_over"] == run.requests_failed_over
    assert result["recovery"]["requests_failed_over"] == len(
        run.failed_over_indices
    )
    histograms = result["metrics"]["histograms"]
    completed_over = sum(
        1
        for index in run.failed_over_indices
        if isinstance(run.outcomes[index], Completed)
    )
    assert histograms["failover.latency_s"]["count"] == completed_over


def test_replicated_kill_drill_is_reproducible() -> None:
    """Scripted chaos is deterministic: two runs, identical bytes."""
    kills = (ShardKill(shard_id=VICTIM, time_s=KILL_AT_S),)
    first = run_sharded(R2_CONFIG, LOAD, kills=kills)
    second = run_sharded(R2_CONFIG, LOAD, kills=kills)
    assert first.outcomes == second.outcomes
    assert first.failed_over_indices == second.failed_over_indices
    assert canonical_json(
        sharded_document(R2_CONFIG, LOAD, first)
    ) == canonical_json(sharded_document(R2_CONFIG, LOAD, second))


def test_scripted_recovery_replays_and_rejoins() -> None:
    """Kill at 0.5, restart at 1.0: the shard rejoins within the run."""
    run = run_sharded(
        R1_CONFIG,
        LOAD,
        kills=(
            ShardKill(shard_id=VICTIM, time_s=KILL_AT_S, recover_at_s=1.0),
        ),
        supervise=True,
    )
    # Rejoined: not down at the end, and its session result is present
    # in the merged per-shard results like any healthy shard's.
    assert run.shards_down == ()
    assert [r.shard_id for r in run.shard_results] == [0, 1, 2]
    assert run.availability == 1.0
    assert run.requests_lost == 0
    # The replay is visible: a typed report with the outbox re-send.
    assert len(run.recoveries) == 1
    report = run.recoveries[0]
    assert report.shard_id == VICTIM
    assert report.reason == "killed"
    assert report.spawn_attempts >= 1
    assert report.requests_replayed > 0
    assert report.requests_replayed == run.requests_replayed
    assert report.downtime_wall_s >= 0.0
    # First-wins request-id dedup: every schedule slot resolved exactly
    # once, nothing needed suppressing.
    assert run.duplicates_suppressed == 0
    assert report.duplicates_suppressed == 0
    assert len(run.outcomes) == LOAD.num_requests
    document = sharded_document(R1_CONFIG, LOAD, run)
    validate_bench_payload(document)
    recovery = document["result"]["recovery"]
    assert recovery["restarts"] == 1
    assert recovery["recovered_shards"] == [VICTIM]
    assert recovery["requests_replayed"] == run.requests_replayed
    counters = document["result"]["metrics"]["counters"]
    assert counters["recovery.restarts"] == 1
    assert counters["router.requests_replayed"] == run.requests_replayed


def test_kill_during_recovery_restarts_again_at_the_barrier() -> None:
    """The restarted incarnation is felled too; supervision still heals."""
    run = run_sharded(
        R1_CONFIG,
        LOAD,
        kills=(
            ShardKill(shard_id=VICTIM, time_s=0.3, recover_at_s=0.6),
            ShardKill(shard_id=VICTIM, time_s=0.9),
        ),
        supervise=True,
    )
    assert run.shards_down == ()
    assert run.availability == 1.0
    assert len(run.recoveries) == 2
    assert all(r.shard_id == VICTIM for r in run.recoveries)
    # The second (barrier-entry) replay covers the whole outbox, so it
    # is at least as large as the first.
    assert run.recoveries[1].requests_replayed >= (
        run.recoveries[0].requests_replayed
    )
    assert run.duplicates_suppressed == 0


def test_hung_worker_is_escalated_not_awaited() -> None:
    """SIGSTOP regression: silence must escalate, never wedge.

    Without supervision the escalated shard stays down and its keyspace
    is shed exactly like a kill — but *typed* and bounded, proving the
    barrier's response timeout fires on a worker that is alive and
    consuming nothing.
    """
    run = run_sharded(
        R1_CONFIG,
        LOAD,
        hangs=(ShardHang(shard_id=VICTIM, time_s=KILL_AT_S),),
        response_timeout_s=1.0,
        barrier_timeout_s=120.0,
    )
    assert run.shards_down == (VICTIM,)
    shed = [
        o
        for o in run.outcomes
        if isinstance(o, Rejected) and o.reason is RejectReason.SHARD_DOWN
    ]
    assert shed  # the hung shard's keyspace was shed, typed
    assert run.requests_lost == len(shed)
    assert run.recoveries == ()


def test_hung_worker_recovers_under_supervision() -> None:
    """SIGSTOP + supervise: escalated, restarted, replayed, no loss."""
    run = run_sharded(
        R1_CONFIG,
        LOAD,
        hangs=(ShardHang(shard_id=VICTIM, time_s=KILL_AT_S),),
        supervise=True,
        response_timeout_s=1.0,
        barrier_timeout_s=120.0,
    )
    assert run.shards_down == ()
    assert run.availability == 1.0
    assert len(run.recoveries) == 1
    assert run.recoveries[0].reason == "hung"
    assert run.recoveries[0].requests_replayed > 0
    assert run.duplicates_suppressed == 0


def test_place_outcomes_dedup_is_first_wins() -> None:
    """The merge-time request-id dedup, unit-tested directly."""
    outcome = Rejected(
        client_id="c",
        data_id=0,
        reason=RejectReason.QUEUE_FULL,
        rejected_s=0.0,
    )
    result = ShardResult(
        shard_id=0,
        indices=(2, 0),
        outcomes=(outcome, outcome),
        registry_dump={},
        document={},
        virtual_elapsed_s=0.0,
        compute_cpu_s=0.0,
        events_processed=0,
    )
    slots: "list[object]" = [None, None, None]
    assert _place_outcomes(slots, result) == 0  # type: ignore[arg-type]
    assert slots[0] is outcome and slots[2] is outcome and slots[1] is None
    # A replayed duplicate of the same slots is fully suppressed.
    assert _place_outcomes(slots, result) == 2  # type: ignore[arg-type]
    assert slots[0] is outcome and slots[2] is outcome


def test_disk_death_redispatches_onto_surviving_replicas() -> None:
    """One in-shard disk dies under traffic; replicas absorb it."""
    config = ShardedServiceConfig(
        num_shards=2,
        num_disks=12,
        seed=5,
        disk_deaths=((0, 0.5),),  # shard 0, local disk 0
    )
    run = run_sharded(config, LOAD)
    by_reason = dict(tally_outcomes(run.outcomes).rejected_by_reason)
    # In-shard replication (3 copies) absorbs a single disk death.
    assert by_reason.get("data_unavailable", 0) == 0
    assert run.shards_down == ()
    document = sharded_document(config, LOAD, run)
    validate_bench_payload(document)
    counters = document["result"]["metrics"]["counters"]
    assert counters["disks.failed"] == 1
    # Nothing completed on the dead disk after its death instant
    # (``disk_id`` in outcomes is shard-local; shard 0's local 0 is the
    # global disk 0 the script killed).
    owners = assign_data(config)
    for outcome in run.outcomes:
        if isinstance(outcome, Completed) and outcome.completed_s > 0.5:
            assert (owners[outcome.data_id], outcome.disk_id) != (0, 0)


def test_losing_every_replica_disk_sheds_typed_data_unavailable() -> None:
    """Kill shard 0's whole slice: its keys become ``data_unavailable``."""
    config = ShardedServiceConfig(
        num_shards=2,
        num_disks=12,
        seed=5,
        disk_deaths=tuple((disk, 0.5) for disk in range(6)),
    )
    run = run_sharded(config, LOAD)
    by_reason = dict(tally_outcomes(run.outcomes).rejected_by_reason)
    assert by_reason["data_unavailable"] > 0
    # The worker survived its disks: this is data loss, not shard loss.
    assert run.shards_down == ()
    document = sharded_document(config, LOAD, run)
    validate_bench_payload(document)
    counters = document["result"]["metrics"]["counters"]
    assert counters["disks.failed"] == 6
    assert counters["rejected.data_unavailable"] == (
        by_reason["data_unavailable"]
    )
