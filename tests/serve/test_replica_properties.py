"""Property tests for cross-shard replica placement and failover order.

The contracts the self-healing router leans on:

* :func:`replica_table` places every data id on exactly
  ``shard_replication_factor`` *distinct* shards whenever the
  deployment has at least that many shards, with the primary owner
  (:func:`assign_data`'s answer) first;
* the failover order is a pure function of the deployment config —
  stable across processes (no per-process ``hash()``) and across
  live-set changes (a key never re-targets because some *other* shard
  died);
* the ring's live-aware ``lookup`` and its ``successors`` chain agree:
  looking a key up against any live set returns the first live entry
  of the key's successor chain, which is exactly the router's
  first-live-replica rule.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.shard.ring import HashRing
from repro.serve.shard.topology import (
    ShardedServiceConfig,
    assign_data,
    replica_table,
)

KEYS = st.integers(min_value=0, max_value=100_000)


def _config(num_shards: int, factor: int, seed: int) -> ShardedServiceConfig:
    # 3 disks per shard keeps the smallest shard >= the in-shard
    # replication factor at every deployment width drawn below.
    return ShardedServiceConfig(
        num_shards=num_shards,
        num_disks=3 * num_shards,
        num_data=200,
        seed=seed,
        shard_replication_factor=factor,
    )


@given(
    num_shards=st.integers(min_value=1, max_value=8),
    factor=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_replicas_land_on_distinct_shards_primary_first(
    num_shards: int, factor: int, seed: int
) -> None:
    factor = min(factor, num_shards)  # config validates factor <= N
    config = _config(num_shards, factor, seed)
    owners = assign_data(config)
    table = replica_table(config, owners)
    assert len(table) == config.num_data
    for data_id, chain in enumerate(table):
        assert len(chain) == factor
        assert len(set(chain)) == factor  # R *distinct* shards
        assert chain[0] == owners[data_id]  # primary is untouched
        assert all(0 <= shard < num_shards for shard in chain)


@given(
    num_shards=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
    key=KEYS,
    dead_mask=st.integers(min_value=0, max_value=2**8 - 2),
)
@settings(max_examples=200, deadline=None)
def test_live_lookup_is_the_first_live_successor(
    num_shards: int, seed: int, key: int, dead_mask: int
) -> None:
    """``lookup(key, live)`` == first live entry of ``successors(key)``.

    This identity is what makes the router's failover deterministic
    *and* stable: the successor chain never depends on the live set, so
    a key's failover target moves only when a shard **on its own
    chain** changes state.
    """
    ring = HashRing(num_shards, vnodes=16, seed=seed)
    live = [s for s in range(num_shards) if not dead_mask & (1 << s)]
    if not live:
        return  # lookup validates against an empty live set
    chain = ring.successors(key)
    assert sorted(chain) == list(range(num_shards))  # a permutation
    assert chain[0] == ring.lookup(key)
    expected = next(s for s in chain if s in live)
    assert ring.lookup(key, live=live) == expected


@given(
    num_shards=st.integers(min_value=2, max_value=6),
    factor=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**20),
    data_id=st.integers(min_value=0, max_value=199),
    other=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_failover_target_ignores_unrelated_deaths(
    num_shards: int, factor: int, seed: int, data_id: int, other: int
) -> None:
    """Killing a shard *not* on a key's chain never moves the key."""
    factor = min(factor, num_shards)
    config = _config(num_shards, factor, seed)
    chain = replica_table(config)[data_id]
    victim = other % num_shards
    if victim in chain:
        return
    live_all = set(range(num_shards))
    live_without = live_all - {victim}
    pick = lambda live: next(s for s in chain if s in live)  # noqa: E731
    assert pick(live_all) == pick(live_without)


def _table_in_subprocess(
    args: "tuple[int, int, int]",
) -> List[Tuple[int, ...]]:
    """Module-level so ProcessPoolExecutor can pickle it (spawn-safe)."""
    num_shards, factor, seed = args
    return replica_table(_config(num_shards, factor, seed))


def test_failover_order_is_stable_across_processes() -> None:
    """A fresh process (fresh ``PYTHONHASHSEED``) derives the same
    replica table, so router and restarted workers can never disagree
    about failover priority."""
    args = (5, 3, 42)
    local = _table_in_subprocess(args)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(_table_in_subprocess, args).result()
    assert remote == local


def test_r1_table_is_exactly_the_routing_table() -> None:
    """The replication machinery is invisible at R=1 — byte-compat."""
    config = _config(4, 1, 9)
    owners = assign_data(config)
    assert replica_table(config, owners) == [(owner,) for owner in owners]
