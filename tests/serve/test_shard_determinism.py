"""The sharded determinism tier: serial ≡ multiprocess, digest pinned.

Three layers of the contract, in increasing strictness:

1. the same deployment run twice (multiprocess) is byte-identical;
2. the serial reference path and the multiprocess path produce
   byte-identical per-shard documents *and* merged document;
3. the merged document's SHA-256 for the canonical smoke parameters is
   pinned in ``tests/serve/data/shard_smoke.sha256`` — the same digest
   CI's ``shard-smoke`` job checks against a fresh CLI run, extending
   the byte-equality determinism tier in
   ``tests/experiments/test_determinism.py`` across the process
   boundary.

Any scheduling, placement, metrics or serialisation change that moves
a single byte of the merged report fails layer 3 loudly — update the
pinned digest deliberately, with the change that moved it.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import List

from repro.experiments.harness.schema import validate_bench_payload
from repro.serve.admission import Outcome
from repro.serve.clock import virtual_run
from repro.serve.loadgen import LoadgenConfig
from repro.serve.service import SchedulingService
from repro.serve.shard import (
    ShardedServiceConfig,
    assign_data,
    build_topology,
    plan_messages,
    run_sharded,
    sharded_document,
)
from repro.serve.shard.reporting import canonical_json, document_digest

DATA_DIR = Path(__file__).parent / "data"

#: The canonical smoke parameters — keep in lockstep with the CI
#: ``shard-smoke`` job and ``tests/serve/data/shard_smoke.sha256``.
#: ``window_s`` pins the CLI's default so the CI job can run the real
#: ``repro-storage serve --shards 2`` with no extra flags.
SMOKE_CONFIG = ShardedServiceConfig(
    policy="online",
    num_shards=2,
    num_disks=18,
    replication_factor=3,
    seed=5,
    window_s=1.0,
)
SMOKE_LOAD = LoadgenConfig(
    num_requests=800, rate_per_s=200.0, num_clients=8, seed=5
)

#: The replicated smoke: same fleet and load, three shards holding every
#: data id on two of them. No faults are injected, so the digest pins
#: that replication alone (catalog growth, failover-capable routing)
#: changes no outcome bytes non-deterministically — keep in lockstep
#: with the CI ``shard-smoke`` job and
#: ``tests/serve/data/shard_smoke_r2.sha256``.
SMOKE_R2_CONFIG = ShardedServiceConfig(
    policy="online",
    num_shards=3,
    num_disks=18,
    replication_factor=3,
    shard_replication_factor=2,
    seed=5,
    window_s=1.0,
)


def test_multiprocess_run_is_byte_reproducible() -> None:
    first = run_sharded(SMOKE_CONFIG, SMOKE_LOAD)
    second = run_sharded(SMOKE_CONFIG, SMOKE_LOAD)
    assert first.outcomes == second.outcomes
    assert canonical_json(
        sharded_document(SMOKE_CONFIG, SMOKE_LOAD, first)
    ) == canonical_json(sharded_document(SMOKE_CONFIG, SMOKE_LOAD, second))


def test_serial_and_multiprocess_paths_are_byte_identical() -> None:
    serial = run_sharded(SMOKE_CONFIG, SMOKE_LOAD, multiprocess=False)
    multi = run_sharded(SMOKE_CONFIG, SMOKE_LOAD, multiprocess=True)
    assert serial.outcomes == multi.outcomes
    assert len(serial.shard_results) == SMOKE_CONFIG.num_shards
    for ours, theirs in zip(serial.shard_results, multi.shard_results):
        assert ours.shard_id == theirs.shard_id
        assert ours.indices == theirs.indices
        assert ours.outcomes == theirs.outcomes
        assert ours.registry_dump == theirs.registry_dump
        assert ours.virtual_elapsed_s == theirs.virtual_elapsed_s
        assert canonical_json(dict(ours.document)) == canonical_json(
            dict(theirs.document)
        )
    assert canonical_json(
        sharded_document(SMOKE_CONFIG, SMOKE_LOAD, serial)
    ) == canonical_json(sharded_document(SMOKE_CONFIG, SMOKE_LOAD, multi))


def test_merged_document_digest_matches_the_pinned_tier() -> None:
    run = run_sharded(SMOKE_CONFIG, SMOKE_LOAD, multiprocess=False)
    document = sharded_document(SMOKE_CONFIG, SMOKE_LOAD, run)
    validate_bench_payload(document)
    pinned = (DATA_DIR / "shard_smoke.sha256").read_text().strip()
    assert document_digest(document) == pinned, (
        "merged shard report changed bytes; if intentional, regenerate "
        "tests/serve/data/shard_smoke.sha256 (see its sibling README)"
    )


def test_replicated_paths_are_byte_identical() -> None:
    """Layer 2 again, at ``shard_replication_factor = 2``."""
    serial = run_sharded(SMOKE_R2_CONFIG, SMOKE_LOAD, multiprocess=False)
    multi = run_sharded(SMOKE_R2_CONFIG, SMOKE_LOAD, multiprocess=True)
    assert serial.outcomes == multi.outcomes
    assert canonical_json(
        sharded_document(SMOKE_R2_CONFIG, SMOKE_LOAD, serial)
    ) == canonical_json(sharded_document(SMOKE_R2_CONFIG, SMOKE_LOAD, multi))
    # Healthy replicated run: nothing failed over, nothing replayed.
    assert multi.requests_failed_over == 0
    assert multi.requests_replayed == 0
    assert multi.recoveries == ()
    completed = sum(1 for outcome in multi.outcomes if outcome.accepted)
    assert multi.availability == completed / len(multi.outcomes)


def test_replicated_document_digest_matches_the_pinned_tier() -> None:
    run = run_sharded(SMOKE_R2_CONFIG, SMOKE_LOAD, multiprocess=False)
    document = sharded_document(SMOKE_R2_CONFIG, SMOKE_LOAD, run)
    validate_bench_payload(document)
    deployment = document["result"]["deployment"]
    assert deployment["shard_replication_factor"] == 2
    assert "recovery" not in document["result"]
    pinned = (DATA_DIR / "shard_smoke_r2.sha256").read_text().strip()
    assert document_digest(document) == pinned, (
        "replicated merged report changed bytes; if intentional, "
        "regenerate tests/serve/data/shard_smoke_r2.sha256 (see its "
        "sibling README)"
    )


def test_shard_worker_equals_an_independent_unsharded_service() -> None:
    """The tentpole contract, tested without the worker's own code.

    A plain :class:`SchedulingService` over shard 0's sub-fleet
    (its config, catalog and request sub-stream, driven by a session
    written here from scratch) must produce the exact outcomes the
    worker process reports for shard 0.
    """
    spec = build_topology(SMOKE_CONFIG)[0]
    table = assign_data(SMOKE_CONFIG)
    sub_stream = [
        message
        for message in plan_messages(SMOKE_CONFIG, SMOKE_LOAD)
        if table[message.data_id] == spec.shard_id
    ]

    async def session() -> List[Outcome]:
        service = SchedulingService(spec.service, catalog=spec.make_catalog())
        await service.start()
        loop = asyncio.get_running_loop()
        tasks: "List[asyncio.Task[Outcome]]" = []
        for message in sub_stream:
            await service.clock.sleep_until(message.arrival_s)
            tasks.append(
                loop.create_task(
                    service.submit(message.client_id, message.data_id)
                )
            )
        outcomes = list(await asyncio.gather(*tasks))
        await service.drain(grace_s=spec.drain_grace_s)
        return outcomes

    direct = virtual_run(session())
    run = run_sharded(SMOKE_CONFIG, SMOKE_LOAD, multiprocess=True)
    assert tuple(direct) == run.shard_results[spec.shard_id].outcomes


def test_per_shard_reports_are_schema_valid() -> None:
    run = run_sharded(SMOKE_CONFIG, SMOKE_LOAD, multiprocess=False)
    for result in run.shard_results:
        validate_bench_payload(dict(result.document))
