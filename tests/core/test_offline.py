"""Tests for the offline-model analytic evaluator."""

import pytest

from repro.core.offline import OfflineEvaluator, chain_energies
from repro.core.problem import SchedulingProblem
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import BARRACUDA, PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.types import Assignment, Request


def single_disk_problem(times, profile=PAPER_UNIT):
    catalog = PlacementCatalog({i: [0] for i in range(len(times))})
    requests = [
        Request(time=t, request_id=i, data_id=i) for i, t in enumerate(times)
    ]
    return SchedulingProblem.build(requests, catalog, profile, 1)


def full_assignment(problem, disk=0):
    assignment = Assignment(problem.requests)
    for request in problem.requests:
        assignment.assign(request.request_id, disk)
    return assignment


class TestObjective:
    def test_single_request_costs_epmax(self):
        problem = single_disk_problem([0.0])
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        assert evaluation.objective_energy == pytest.approx(
            problem.profile.max_request_energy
        )

    def test_close_pair_costs_gap_plus_epmax(self):
        problem = single_disk_problem([0.0, 2.0])
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        assert evaluation.objective_energy == pytest.approx(2.0 + 5.0)

    def test_far_pair_costs_two_epmax(self):
        problem = single_disk_problem([0.0, 100.0])
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        assert evaluation.objective_energy == pytest.approx(10.0)

    def test_total_saving_complements_objective(self):
        problem = single_disk_problem([0.0, 1.0, 2.0])
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        epmax = problem.profile.max_request_energy
        assert evaluation.total_saving == pytest.approx(
            3 * epmax - evaluation.objective_energy
        )

    def test_incomplete_schedule_rejected(self):
        problem = single_disk_problem([0.0, 1.0])
        assignment = Assignment(problem.requests)
        assignment.assign(0, 0)
        with pytest.raises(Exception):
            OfflineEvaluator(problem).evaluate(assignment)


class TestPhysicalBreakdown:
    def test_state_times_cover_horizon_on_every_disk(self):
        catalog = PlacementCatalog({0: [0], 1: [1]})
        requests = [
            Request(time=10.0, request_id=0, data_id=0),
            Request(time=400.0, request_id=1, data_id=1),
        ]
        problem = SchedulingProblem.build(requests, catalog, BARRACUDA, 3)
        assignment = Assignment.from_mapping(requests, {0: 0, 1: 1})
        evaluation = OfflineEvaluator(problem).evaluate(assignment)
        horizon = evaluation.horizon
        for stats in evaluation.report.disk_stats.values():
            assert stats.total_time == pytest.approx(horizon, rel=1e-6)

    def test_unused_disk_is_all_standby(self):
        catalog = PlacementCatalog({0: [0]})
        requests = [Request(time=5.0, request_id=0, data_id=0)]
        problem = SchedulingProblem.build(requests, catalog, BARRACUDA, 2)
        assignment = Assignment.from_mapping(requests, {0: 0})
        evaluation = OfflineEvaluator(problem).evaluate(assignment)
        idle_disk = evaluation.report.disk_stats[1]
        assert idle_disk.standby_fraction() == pytest.approx(1.0)

    def test_spin_counts_per_chain(self):
        # Two requests far apart on one disk: up, down, up, down.
        problem = single_disk_problem([0.0, 500.0], BARRACUDA)
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        stats = evaluation.report.disk_stats[0]
        assert stats.spin_ups == 2
        assert stats.spin_downs == 2

    def test_close_requests_single_spin_cycle(self):
        problem = single_disk_problem([0.0, 1.0, 2.0], BARRACUDA)
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        stats = evaluation.report.disk_stats[0]
        assert stats.spin_ups == 1
        assert stats.spin_downs == 1

    def test_case_ii_gap_stays_idle(self):
        profile = BARRACUDA
        gap = profile.breakeven_time + profile.transition_time / 2
        problem = single_disk_problem([0.0, gap], profile)
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        stats = evaluation.report.disk_stats[0]
        assert stats.spin_ups == 1  # only the initial one
        assert stats.state_time[DiskPowerState.IDLE] == pytest.approx(
            gap + profile.breakeven_time
        )

    def test_physical_energy_below_always_on_when_sleepy(self):
        problem = single_disk_problem([0.0, 5000.0], BARRACUDA)
        evaluation = OfflineEvaluator(problem).evaluate(full_assignment(problem))
        assert evaluation.normalized_energy < 0.5


class TestHorizon:
    def test_horizon_is_last_arrival_plus_threshold_and_spin_down(self):
        problem = single_disk_problem([0.0, 13.0])
        assert OfflineEvaluator(problem).horizon() == pytest.approx(18.0)

    def test_always_on_energy_scales_with_disks(self):
        catalog = PlacementCatalog({0: [0]})
        requests = [Request(time=0.0, request_id=0, data_id=0)]
        small = SchedulingProblem.build(requests, catalog, PAPER_UNIT, 2)
        large = SchedulingProblem.build(requests, catalog, PAPER_UNIT, 8)
        assert OfflineEvaluator(large).always_on_energy() == pytest.approx(
            4 * OfflineEvaluator(small).always_on_energy()
        )


class TestChainEnergies:
    def test_matches_objective_total(self, paper_problem):
        assignment = Assignment.from_mapping(
            paper_problem.requests, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3}
        )
        per_disk = chain_energies(assignment, paper_problem)
        evaluation = OfflineEvaluator(paper_problem).evaluate(assignment)
        assert sum(per_disk.values()) == pytest.approx(
            evaluation.objective_energy
        )
