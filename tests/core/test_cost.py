"""Tests for the Eq. 5/6/7 cost functions."""

import pytest

from repro.core.cost import (
    PAPER_COST_FUNCTION,
    CostFunction,
    energy_cost,
    performance_cost,
)
from repro.errors import ConfigurationError
from repro.power.profile import BARRACUDA, PAPER_EVAL
from repro.power.states import DiskPowerState


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class TestEnergyCost:
    def test_active_is_free(self):
        assert energy_cost(DiskPowerState.ACTIVE, 0.0, 10.0, BARRACUDA) == 0.0

    def test_spin_up_is_free(self):
        """Paper: prefer a spinning-up disk — it overlays requests."""
        assert energy_cost(DiskPowerState.SPIN_UP, 0.0, 10.0, BARRACUDA) == 0.0

    def test_standby_costs_full_cycle(self):
        expected = (
            BARRACUDA.transition_energy
            + BARRACUDA.breakeven_time * BARRACUDA.idle_power
        )
        assert energy_cost(
            DiskPowerState.STANDBY, None, 10.0, BARRACUDA
        ) == pytest.approx(expected)

    def test_spin_down_costs_like_standby(self):
        assert energy_cost(
            DiskPowerState.SPIN_DOWN, 5.0, 10.0, BARRACUDA
        ) == energy_cost(DiskPowerState.STANDBY, 5.0, 10.0, BARRACUDA)

    def test_idle_costs_extension(self):
        # Tlast = 4, Tnow = 10 -> six seconds of extension at idle power.
        assert energy_cost(
            DiskPowerState.IDLE, 4.0, 10.0, BARRACUDA
        ) == pytest.approx(6.0 * BARRACUDA.idle_power)

    def test_idle_never_touched_is_free(self):
        assert energy_cost(DiskPowerState.IDLE, None, 10.0, BARRACUDA) == 0.0

    def test_idle_future_tlast_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_cost(DiskPowerState.IDLE, 20.0, 10.0, BARRACUDA)

    def test_recently_touched_idle_cheaper_than_standby(self):
        """The core preference ordering of the Heuristic."""
        idle = energy_cost(DiskPowerState.IDLE, 9.0, 10.0, PAPER_EVAL)
        standby = energy_cost(DiskPowerState.STANDBY, None, 10.0, PAPER_EVAL)
        assert idle < standby

    def test_long_idle_approaches_standby_cost(self):
        # An idle disk about to hit its threshold costs nearly EPmax...
        threshold = PAPER_EVAL.breakeven_time
        idle = energy_cost(DiskPowerState.IDLE, 10.0, 10.0 + threshold, PAPER_EVAL)
        standby = energy_cost(DiskPowerState.STANDBY, None, 10.0, PAPER_EVAL)
        # ...but still less (it saves the transition energy).
        assert idle < standby
        assert idle == pytest.approx(threshold * PAPER_EVAL.idle_power)


class TestPerformanceCost:
    def test_equals_queue_length(self):
        assert performance_cost(3) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            performance_cost(-1)


class TestCostFunction:
    def test_alpha_one_is_pure_energy(self):
        cost = CostFunction(alpha=1.0, beta=1.0)
        busy_idle = FakeDisk(DiskPowerState.IDLE, queue_length=50, last_request_time=10.0)
        value = cost.cost(busy_idle, 10.0, BARRACUDA)
        assert value == 0.0  # zero extension, load ignored

    def test_alpha_zero_is_pure_load(self):
        cost = CostFunction(alpha=0.0, beta=1.0)
        standby = FakeDisk(DiskPowerState.STANDBY, queue_length=2)
        assert cost.cost(standby, 10.0, BARRACUDA) == 2.0

    def test_beta_scales_energy_term(self):
        small_beta = CostFunction(alpha=0.5, beta=1.0)
        large_beta = CostFunction(alpha=0.5, beta=1000.0)
        standby = FakeDisk(DiskPowerState.STANDBY)
        assert small_beta.cost(standby, 0.0, BARRACUDA) > large_beta.cost(
            standby, 0.0, BARRACUDA
        )

    def test_paper_configuration(self):
        assert PAPER_COST_FUNCTION.alpha == 0.2
        assert PAPER_COST_FUNCTION.beta == 100.0

    def test_composite_formula(self):
        cost = CostFunction(alpha=0.2, beta=100.0)
        disk = FakeDisk(DiskPowerState.STANDBY, queue_length=3)
        energy = energy_cost(DiskPowerState.STANDBY, None, 0.0, PAPER_EVAL)
        expected = energy * 0.2 / 100.0 + 3 * 0.8
        assert cost.cost(disk, 0.0, PAPER_EVAL) == pytest.approx(expected)

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CostFunction(alpha=1.5)

    def test_beta_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            CostFunction(beta=0.0)

    def test_corner_helpers(self):
        assert PAPER_COST_FUNCTION.energy_only().alpha == 1.0
        assert PAPER_COST_FUNCTION.performance_only().alpha == 0.0
