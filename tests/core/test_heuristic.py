"""Tests for the energy-aware online Heuristic (Section 3.3)."""

import pytest

from repro.core.cost import CostFunction
from repro.core.heuristic import HeuristicScheduler
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL
from repro.power.states import DiskPowerState
from repro.types import Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=100.0):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)

    def available_locations(self, data_id):
        return self._catalog.locations(data_id)


def req(data_id=0):
    return Request(time=100.0, request_id=0, data_id=data_id)


def make_view(disk_states):
    disks = dict(enumerate(disk_states))
    catalog = PlacementCatalog({0: list(disks)})
    return FakeView(disks, catalog)


class TestEnergyPreferences:
    def test_prefers_active_over_standby(self):
        view = make_view(
            [FakeDisk(DiskPowerState.STANDBY), FakeDisk(DiskPowerState.ACTIVE, 1)]
        )
        assert HeuristicScheduler().choose(req(), view) == 1

    def test_prefers_spinning_up_over_standby(self):
        """Paper: a spinning-up disk overlays requests into one wake-up."""
        view = make_view(
            [FakeDisk(DiskPowerState.STANDBY), FakeDisk(DiskPowerState.SPIN_UP, 1)]
        )
        assert HeuristicScheduler().choose(req(), view) == 1

    def test_prefers_recently_touched_idle_over_standby(self):
        view = make_view(
            [
                FakeDisk(DiskPowerState.STANDBY),
                FakeDisk(DiskPowerState.IDLE, 0, last_request_time=99.0),
            ]
        )
        assert HeuristicScheduler().choose(req(), view) == 1

    def test_pure_energy_alpha_prefers_fresh_idle_over_stale_idle(self):
        scheduler = HeuristicScheduler(CostFunction(alpha=1.0, beta=1.0))
        view = make_view(
            [
                FakeDisk(DiskPowerState.IDLE, 0, last_request_time=60.0),
                FakeDisk(DiskPowerState.IDLE, 0, last_request_time=99.0),
            ]
        )
        assert scheduler.choose(req(), view) == 1


class TestLoadBalancing:
    def test_alpha_zero_balances_queues(self):
        scheduler = HeuristicScheduler(CostFunction(alpha=0.0, beta=100.0))
        view = make_view(
            [
                FakeDisk(DiskPowerState.ACTIVE, queue_length=5),
                FakeDisk(DiskPowerState.STANDBY, queue_length=0),
            ]
        )
        # Pure-performance cost ignores the wake-up energy entirely.
        assert scheduler.choose(req(), view) == 1

    def test_paper_alpha_tolerates_short_queue_before_waking_disk(self):
        scheduler = HeuristicScheduler()  # alpha=0.2, beta=100
        # Standby energy cost = EPmax * 0.002 ~ 1.59 == two queued requests.
        view = make_view(
            [
                FakeDisk(DiskPowerState.ACTIVE, queue_length=1),
                FakeDisk(DiskPowerState.STANDBY, queue_length=0),
            ]
        )
        assert scheduler.choose(req(), view) == 0

    def test_paper_alpha_wakes_disk_when_queue_gets_long(self):
        scheduler = HeuristicScheduler()
        view = make_view(
            [
                FakeDisk(DiskPowerState.ACTIVE, queue_length=10),
                FakeDisk(DiskPowerState.STANDBY, queue_length=0),
            ]
        )
        assert scheduler.choose(req(), view) == 1


class TestTieBreaks:
    def test_equal_cost_breaks_on_queue_then_id(self):
        view = make_view(
            [
                FakeDisk(DiskPowerState.STANDBY, queue_length=0),
                FakeDisk(DiskPowerState.STANDBY, queue_length=0),
            ]
        )
        assert HeuristicScheduler().choose(req(), view) == 0

    def test_single_location_trivial(self):
        disks = {7: FakeDisk(DiskPowerState.STANDBY)}
        catalog = PlacementCatalog({0: [7]})
        view = FakeView(disks, catalog)
        assert HeuristicScheduler().choose(req(), view) == 7


class TestName:
    def test_name_includes_parameters(self):
        scheduler = HeuristicScheduler(CostFunction(alpha=0.4, beta=10.0))
        assert "0.4" in scheduler.name
        assert "10" in scheduler.name
