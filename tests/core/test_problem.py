"""Tests for SchedulingProblem and Assignment."""

import pytest

from repro.core.problem import SchedulingProblem
from repro.errors import SchedulingError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.types import Assignment, Request


class TestProblemValidation:
    def test_build_sorts_requests(self, paper_catalog):
        requests = [
            Request(time=5.0, request_id=1, data_id=0),
            Request(time=1.0, request_id=0, data_id=1),
        ]
        problem = SchedulingProblem.build(requests, paper_catalog, PAPER_UNIT, 4)
        assert [r.request_id for r in problem.requests] == [0, 1]

    def test_unsorted_requests_rejected_in_constructor(self, paper_catalog):
        requests = (
            Request(time=5.0, request_id=1, data_id=0),
            Request(time=1.0, request_id=0, data_id=1),
        )
        with pytest.raises(SchedulingError, match="sorted"):
            SchedulingProblem(requests, paper_catalog, PAPER_UNIT, 4)

    def test_unknown_data_rejected(self, paper_catalog):
        requests = [Request(time=0.0, request_id=0, data_id=999)]
        with pytest.raises(SchedulingError):
            SchedulingProblem.build(requests, paper_catalog, PAPER_UNIT, 4)

    def test_placement_outside_disk_range_rejected(self):
        catalog = PlacementCatalog({0: [7]})
        requests = [Request(time=0.0, request_id=0, data_id=0)]
        with pytest.raises(SchedulingError, match="unknown disk"):
            SchedulingProblem.build(requests, catalog, PAPER_UNIT, 4)

    def test_nonpositive_disks_rejected(self, paper_catalog):
        with pytest.raises(SchedulingError):
            SchedulingProblem.build([], paper_catalog, PAPER_UNIT, 0)


class TestScheduleValidation:
    def test_valid_schedule_passes(self, paper_problem):
        assignment = Assignment.from_mapping(
            paper_problem.requests, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3}
        )
        paper_problem.validate_schedule(assignment)

    def test_incomplete_schedule_rejected(self, paper_problem):
        assignment = Assignment.from_mapping(paper_problem.requests, {0: 0})
        with pytest.raises(SchedulingError, match="incomplete"):
            paper_problem.validate_schedule(assignment)

    def test_wrong_location_rejected(self, paper_problem):
        mapping = {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 1}  # r6 not on d2
        assignment = Assignment.from_mapping(paper_problem.requests, mapping)
        with pytest.raises(SchedulingError, match="lives on"):
            paper_problem.validate_schedule(assignment)


class TestAssignment:
    def test_reassigning_same_disk_is_idempotent(self, paper_requests):
        assignment = Assignment(paper_requests)
        assignment.assign(0, 0)
        assignment.assign(0, 0)
        assert assignment.disk_of(0) == 0

    def test_moving_to_other_disk_rejected(self, paper_requests):
        assignment = Assignment(paper_requests)
        assignment.assign(2, 0)
        with pytest.raises(ValueError, match="already assigned"):
            assignment.assign(2, 1)

    def test_unknown_request_rejected(self, paper_requests):
        assignment = Assignment(paper_requests)
        with pytest.raises(KeyError):
            assignment.assign(99, 0)

    def test_duplicate_request_ids_rejected(self):
        requests = [
            Request(time=0.0, request_id=0, data_id=0),
            Request(time=1.0, request_id=0, data_id=1),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            Assignment(requests)

    def test_chains_sorted_by_time(self, paper_requests):
        assignment = Assignment(paper_requests)
        assignment.assign(4, 0)  # t=12
        assignment.assign(0, 0)  # t=0
        chains = assignment.chains()
        assert [r.request_id for r in chains[0]] == [0, 4]

    def test_unassigned_lists_leftovers(self, paper_requests):
        assignment = Assignment(paper_requests)
        assignment.assign(0, 0)
        assert [r.request_id for r in assignment.unassigned()] == [1, 2, 3, 4, 5]

    def test_is_complete(self, paper_requests):
        assignment = Assignment(paper_requests)
        assert not assignment.is_complete()
        for request in paper_requests:
            assignment.assign(request.request_id, 0)
        assert assignment.is_complete()

    def test_round_trip_as_dict(self, paper_requests):
        mapping = {r.request_id: 0 for r in paper_requests}
        assignment = Assignment.from_mapping(paper_requests, mapping)
        assert assignment.as_dict() == mapping
