"""Tests for the Random and Static baselines and the scheduler registry."""

import pytest

from repro.core.random_scheduler import RandomScheduler
from repro.core.scheduler import SCHEDULER_FACTORIES, make_scheduler
from repro.core.static_scheduler import StaticScheduler
from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL
from repro.types import Request


class FakeView:
    """Minimal SystemView for scheduler unit tests."""

    def __init__(self, catalog, now=0.0):
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    def locations(self, data_id):
        return self._catalog.locations(data_id)

    def available_locations(self, data_id):
        return self._catalog.locations(data_id)

    def disk(self, disk_id):
        raise AssertionError("baselines must not inspect disk state")


@pytest.fixture
def view():
    return FakeView(PlacementCatalog({0: [3, 1, 4]}))


def req(data_id=0):
    return Request(time=0.0, request_id=0, data_id=data_id)


class TestStatic:
    def test_always_picks_original(self, view):
        scheduler = StaticScheduler()
        assert all(scheduler.choose(req(), view) == 3 for _ in range(10))

    def test_name(self):
        assert StaticScheduler().name == "Static"


class TestRandom:
    def test_only_picks_valid_locations(self, view):
        scheduler = RandomScheduler(seed=0)
        picks = {scheduler.choose(req(), view) for _ in range(100)}
        assert picks <= {3, 1, 4}

    def test_eventually_uses_every_replica(self, view):
        scheduler = RandomScheduler(seed=0)
        picks = {scheduler.choose(req(), view) for _ in range(200)}
        assert picks == {3, 1, 4}

    def test_deterministic_given_seed(self, view):
        a = [RandomScheduler(seed=5).choose(req(), view) for _ in range(20)]
        b = [RandomScheduler(seed=5).choose(req(), view) for _ in range(20)]
        assert a == b

    def test_roughly_uniform(self, view):
        scheduler = RandomScheduler(seed=1)
        counts = {3: 0, 1: 0, 4: 0}
        n = 3000
        for _ in range(n):
            counts[scheduler.choose(req(), view)] += 1
        for disk in counts:
            assert counts[disk] == pytest.approx(n / 3, rel=0.2)


class TestRegistry:
    def test_all_five_schedulers_registered(self):
        assert {"static", "random", "heuristic", "wsc", "mwis"} <= set(
            SCHEDULER_FACTORIES
        )

    def test_make_scheduler(self):
        assert make_scheduler("static").name == "Static"

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("quantum")
