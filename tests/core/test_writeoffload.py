"""Tests for the write off-loading extension."""

import pytest

from repro.core.static_scheduler import StaticScheduler
from repro.core.writeoffload import WriteOffloadingScheduler
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL, PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.sim.config import SimulationConfig
from repro.sim.runner import simulate
from repro.types import OpKind, Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=0.0):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    @property
    def disk_ids(self):
        return sorted(self._disks)

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)

    def available_locations(self, data_id):
        return self._catalog.locations(data_id)


def write_req(rid=0, data_id=0):
    return Request(time=0.0, request_id=rid, data_id=data_id, op=OpKind.WRITE)


def read_req(rid=0, data_id=0):
    return Request(time=0.0, request_id=rid, data_id=data_id, op=OpKind.READ)


@pytest.fixture
def catalog():
    return PlacementCatalog({0: [2]})  # data 0 lives only on disk 2


class TestRouting:
    def test_reads_delegate_to_inner_scheduler(self, catalog):
        view = FakeView({2: FakeDisk(DiskPowerState.STANDBY)}, catalog)
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert scheduler.choose(read_req(), view) == 2
        assert scheduler.total_offloaded == 0

    def test_write_diverted_to_spinning_disk(self, catalog):
        view = FakeView(
            {
                0: FakeDisk(DiskPowerState.IDLE),
                2: FakeDisk(DiskPowerState.STANDBY),
            },
            catalog,
        )
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert scheduler.choose(write_req(), view) == 0
        assert scheduler.offloaded == {0: 1}

    def test_write_prefers_least_loaded_spinning_disk(self, catalog):
        view = FakeView(
            {
                0: FakeDisk(DiskPowerState.ACTIVE, queue_length=5),
                1: FakeDisk(DiskPowerState.IDLE, queue_length=0),
                2: FakeDisk(DiskPowerState.STANDBY),
            },
            catalog,
        )
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert scheduler.choose(write_req(), view) == 1

    def test_write_joins_spin_up_when_nothing_spins(self, catalog):
        view = FakeView(
            {
                0: FakeDisk(DiskPowerState.SPIN_UP),
                2: FakeDisk(DiskPowerState.STANDBY),
            },
            catalog,
        )
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert scheduler.choose(write_req(), view) == 0

    def test_all_asleep_forces_home_wakeup(self, catalog):
        view = FakeView(
            {
                0: FakeDisk(DiskPowerState.STANDBY),
                2: FakeDisk(DiskPowerState.STANDBY),
            },
            catalog,
        )
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert scheduler.choose(write_req(), view) == 2
        assert scheduler.forced_wakeups == 1
        assert scheduler.total_offloaded == 0

    def test_name_mentions_inner(self):
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        assert "Static" in scheduler.name


class TestSimulationIntegration:
    def test_mixed_workload_completes_and_offloads(self):
        catalog = PlacementCatalog({0: [0], 1: [1]})
        requests = [
            Request(time=0.0, request_id=0, data_id=0),  # read wakes disk 0
            Request(time=1.0, request_id=1, data_id=1, op=OpKind.WRITE),
            Request(time=2.0, request_id=2, data_id=1, op=OpKind.WRITE),
        ]
        scheduler = WriteOffloadingScheduler(StaticScheduler())
        config = SimulationConfig(num_disks=2, profile=PAPER_UNIT, drain_slack=1.0)
        report = simulate(requests, catalog, scheduler, config)
        assert report.requests_completed == 3
        # Both writes landed on the already-spinning disk 0; disk 1 slept.
        assert report.disk_stats[0].requests_serviced == 3
        assert report.disk_stats[1].requests_serviced == 0
        assert report.disk_stats[1].spin_ups == 0
        assert scheduler.total_offloaded == 2

    def test_offloading_saves_energy_on_write_heavy_trace(self):
        """The point of write off-loading: writes stop waking cold disks."""
        import random

        rng = random.Random(5)
        catalog = PlacementCatalog({i: [i % 6] for i in range(60)})
        requests = []
        t = 0.0
        for rid in range(300):
            t += rng.expovariate(0.5)
            op = OpKind.WRITE if rng.random() < 0.7 else OpKind.READ
            requests.append(
                Request(time=t, request_id=rid, data_id=rng.randrange(60), op=op)
            )
        config = SimulationConfig(num_disks=6, profile=PAPER_EVAL, seed=1)
        plain = simulate(requests, catalog, StaticScheduler(), config)
        offloaded = simulate(
            requests,
            catalog,
            WriteOffloadingScheduler(StaticScheduler()),
            config,
        )
        assert offloaded.requests_completed == plain.requests_completed
        assert offloaded.total_energy < plain.total_energy
