"""Tests for EPmax, Eq. 3 savings and Lemma-1 gap energies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.saving import (
    SavingTerm,
    gap_energy,
    max_request_energy,
    saving_value,
    saving_window,
)
from repro.power.profile import BARRACUDA, PAPER_EVAL, PAPER_UNIT
from repro.types import Request


class TestSavingValue:
    """The three Lemma-1 cases, on the unit model (TB=5, free transitions)."""

    def test_case_iii_short_gap(self):
        # Fig. 3 example: saving of r1 with successor at gap 1 is 4.
        assert saving_value(0.0, 1.0, PAPER_UNIT) == pytest.approx(4.0)

    def test_case_i_gap_beyond_window_saves_nothing(self):
        assert saving_value(0.0, 9.0, PAPER_UNIT) == 0.0

    def test_boundary_gap_at_window_saves_nothing(self):
        window = saving_window(PAPER_UNIT)
        assert saving_value(0.0, window, PAPER_UNIT) == 0.0

    def test_zero_gap_saves_everything(self):
        assert saving_value(3.0, 3.0, PAPER_UNIT) == pytest.approx(
            max_request_energy(PAPER_UNIT)
        )

    def test_negative_gap_saves_nothing(self):
        assert saving_value(5.0, 3.0, PAPER_UNIT) == 0.0

    def test_case_ii_between_tb_and_window(self):
        # Barracuda: TB ~17.48, window ~25.48; a gap of 20 still saves.
        profile = BARRACUDA
        gap = profile.breakeven_time + profile.transition_time / 2
        value = saving_value(0.0, gap, profile)
        expected = profile.transition_energy + (
            profile.breakeven_time - gap
        ) * profile.idle_power
        assert value == pytest.approx(expected)
        assert 0 < value < profile.transition_energy

    @given(gap=st.floats(min_value=0.0, max_value=1000.0))
    def test_monotone_nonincreasing_in_gap(self, gap):
        closer = saving_value(0.0, gap, PAPER_EVAL)
        farther = saving_value(0.0, gap + 1.0, PAPER_EVAL)
        assert closer >= farther - 1e-9

    @given(gap=st.floats(min_value=0.0, max_value=1000.0))
    def test_bounded_by_epmax(self, gap):
        value = saving_value(0.0, gap, PAPER_EVAL)
        assert 0.0 <= value <= max_request_energy(PAPER_EVAL) + 1e-9


class TestGapEnergy:
    def test_short_gap_is_idle_energy(self):
        assert gap_energy(3.0, PAPER_UNIT) == pytest.approx(3.0)

    def test_long_gap_is_epmax(self):
        assert gap_energy(100.0, PAPER_UNIT) == pytest.approx(5.0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            gap_energy(-1.0, PAPER_UNIT)

    @given(gap=st.floats(min_value=0.0, max_value=1000.0))
    def test_saving_plus_energy_is_epmax_inside_window(self, gap):
        """X(i,j,k) = EPmax - energy(ri) — the definition in Section 3.1.1."""
        if gap < saving_window(PAPER_EVAL):
            total = saving_value(0.0, gap, PAPER_EVAL) + gap_energy(gap, PAPER_EVAL)
            assert total == pytest.approx(max_request_energy(PAPER_EVAL))


class TestSavingTerm:
    def r(self, time, rid):
        return Request(time=time, request_id=rid, data_id=0)

    def test_build_materialises_positive_terms(self):
        term = SavingTerm.build(self.r(0, 0), self.r(1, 1), 3, PAPER_UNIT)
        assert term is not None
        assert term.weight == pytest.approx(4.0)
        assert term.disk == 3

    def test_build_drops_zero_terms(self):
        assert SavingTerm.build(self.r(0, 0), self.r(50, 1), 3, PAPER_UNIT) is None

    def test_conflict_same_predecessor(self):
        a = SavingTerm(0, 1, 0, 1.0)
        b = SavingTerm(0, 2, 0, 1.0)
        assert a.conflicts_with(b)

    def test_conflict_same_successor(self):
        # Paper Fig. 4 step 2: X(1,3,1) vs X(2,3,1) conflict on r3.
        a = SavingTerm(1, 3, 0, 1.0)
        b = SavingTerm(2, 3, 0, 1.0)
        assert a.conflicts_with(b)

    def test_conflict_shared_request_different_disk(self):
        # Paper Fig. 4 step 2: X(1,2,1) vs X(2,3,2) conflict on r2.
        a = SavingTerm(1, 2, 1, 1.0)
        b = SavingTerm(2, 3, 2, 1.0)
        assert a.conflicts_with(b)

    def test_chain_on_same_disk_is_compatible(self):
        a = SavingTerm(1, 2, 1, 1.0)
        b = SavingTerm(2, 3, 1, 1.0)
        assert not a.conflicts_with(b)

    def test_disjoint_terms_compatible(self):
        a = SavingTerm(1, 2, 1, 1.0)
        b = SavingTerm(3, 4, 2, 1.0)
        assert not a.conflicts_with(b)

    def test_conflict_is_symmetric(self):
        a = SavingTerm(1, 2, 1, 1.0)
        b = SavingTerm(2, 3, 2, 1.0)
        assert a.conflicts_with(b) == b.conflicts_with(a)
