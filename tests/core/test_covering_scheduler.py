"""Tests for covering subsets and the covering-set scheduler."""

import pytest

from repro.core.covering_scheduler import CoveringSetScheduler
from repro.errors import PlacementError
from repro.placement.catalog import PlacementCatalog
from repro.placement.covering import covering_subset
from repro.power.profile import PAPER_EVAL
from repro.power.states import DiskPowerState
from repro.types import Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=0.0):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    @property
    def disk_ids(self):
        return sorted(self._disks)

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)


class TestCoveringSubset:
    def test_single_disk_covers_everything(self):
        catalog = PlacementCatalog({0: [1, 0], 1: [1, 2], 2: [1]})
        assert covering_subset(catalog) == [1]

    def test_cover_is_actually_covering(self):
        catalog = PlacementCatalog(
            {0: [0, 1], 1: [1, 2], 2: [2, 3], 3: [3, 0], 4: [0, 2]}
        )
        chosen = set(covering_subset(catalog))
        for data_id in catalog:
            assert chosen & set(catalog.locations(data_id))

    def test_weighted_cover_prefers_hot_coverage(self):
        # Disk 0 covers two cold items; disk 1 covers one very hot item.
        catalog = PlacementCatalog({0: [0], 1: [0], 2: [1]})
        weights = {2: 100.0, 0: 1.0, 1: 1.0}
        chosen = covering_subset(catalog, weights)
        assert chosen == [1, 0]
        # Unweighted, the two-item disk is picked first instead.
        assert covering_subset(catalog) == [0, 1]

    def test_empty_catalog(self):
        assert covering_subset(PlacementCatalog({})) == []

    def test_greedy_is_reasonably_small(self):
        import random

        rng = random.Random(0)
        locations = {
            d: rng.sample(range(20), 3) for d in range(300)
        }
        catalog = PlacementCatalog(locations)
        chosen = covering_subset(catalog)
        assert len(chosen) <= 20
        covered = set()
        for disk in chosen:
            covered.update(catalog.data_on_disk(disk))
        assert covered == set(range(300))


class TestCoveringSetScheduler:
    def test_prefers_covering_replica(self):
        catalog = PlacementCatalog({0: [2, 1], 1: [1], 2: [1, 3]})
        # Covering subset is {1} (covers everything).
        disks = {
            1: FakeDisk(DiskPowerState.STANDBY),
            2: FakeDisk(DiskPowerState.IDLE, last_request_time=0.0),
            3: FakeDisk(DiskPowerState.IDLE, last_request_time=0.0),
        }
        scheduler = CoveringSetScheduler(catalog)
        assert scheduler.covering == {1}
        view = FakeView(disks, catalog)
        # Even though disk 2 is idle (cheap), the covering disk wins.
        chosen = scheduler.choose(
            Request(time=0.0, request_id=0, data_id=0), view
        )
        assert chosen == 1

    def test_falls_back_outside_cover(self):
        # Data 9 has no covering replica (not in catalog used for cover).
        catalog = PlacementCatalog({0: [1], 9: [4, 5]})
        scheduler = CoveringSetScheduler(PlacementCatalog({0: [1]}))
        disks = {
            4: FakeDisk(DiskPowerState.IDLE, last_request_time=0.0),
            5: FakeDisk(DiskPowerState.STANDBY),
        }
        view = FakeView(disks, catalog)
        chosen = scheduler.choose(
            Request(time=0.0, request_id=0, data_id=9), view
        )
        assert chosen in (4, 5)

    def test_concentrates_traffic_end_to_end(self):
        from repro.placement.schemes import ZipfOriginalUniformReplicas
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.traces.cello import CelloLikeConfig, generate_cello_like
        from repro.traces.workload import Workload

        workload = Workload(
            generate_cello_like(CelloLikeConfig().scaled(0.05), seed=4)
        )
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(replication_factor=3),
            num_disks=9,
            seed=6,
        )
        scheduler = CoveringSetScheduler(catalog)
        config = SimulationConfig(num_disks=9, profile=PAPER_EVAL)
        report = simulate(requests, catalog, scheduler, config)
        assert report.requests_completed == report.requests_offered
        served = {
            d: stats.requests_serviced
            for d, stats in report.disk_stats.items()
        }
        inside = sum(served[d] for d in scheduler.covering)
        assert inside / sum(served.values()) > 0.95
