"""Exact-value reproduction of the paper's worked examples (Figs. 2-4).

These tests pin the library to the numbers printed in the paper:

* Fig. 2 (batch): schedule A = 15, schedule B = 10, always-on = 20.
* Fig. 3 (offline): schedule B = 23, schedule C = 19 (optimal).
* Fig. 4 (MWIS walkthrough): the graph, the selected set, the derived
  schedule.

Note: the paper states the Fig. 3 always-on energy as "76(=18*4)"; 18*4
is 72, and our evaluator agrees with the arithmetic (72), not the typo.
"""

import pytest

from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator, chain_energies
from repro.core.problem import SchedulingProblem
from repro.core.saving import SavingTerm
from repro.power.profile import PAPER_UNIT
from repro.types import Assignment


def assign(problem, mapping):
    return Assignment.from_mapping(problem.requests, mapping)


class TestFigure2Batch:
    """All six requests arrive simultaneously (batch queueing)."""

    def test_schedule_a_costs_15(self, batch_problem):
        # A: r1,r5 -> d1; r2,r3 -> d2; r4,r6 -> d3 (three disks x 5).
        schedule_a = assign(
            batch_problem, {0: 0, 4: 0, 1: 1, 2: 1, 3: 2, 5: 2}
        )
        evaluation = OfflineEvaluator(batch_problem).evaluate(schedule_a)
        assert evaluation.objective_energy == pytest.approx(15.0)

    def test_schedule_b_costs_10_and_uses_two_disks(self, batch_problem):
        # B: r1,r2,r3,r5 -> d1; r4,r6 -> d3.
        schedule_b = assign(
            batch_problem, {0: 0, 1: 0, 2: 0, 4: 0, 3: 2, 5: 2}
        )
        evaluation = OfflineEvaluator(batch_problem).evaluate(schedule_b)
        assert evaluation.objective_energy == pytest.approx(10.0)
        assert len(schedule_b.chains()) == 2

    def test_batch_energy_is_epmax_per_used_disk(self, batch_problem):
        """Theorem 2's core accounting: simultaneous requests cost one
        EPmax per disk used."""
        schedule_b = assign(
            batch_problem, {0: 0, 1: 0, 2: 0, 4: 0, 3: 2, 5: 2}
        )
        per_disk = chain_energies(schedule_b, batch_problem)
        assert per_disk == {0: pytest.approx(5.0), 2: pytest.approx(5.0)}

    def test_always_on_costs_20(self, batch_problem):
        # 4 disks x breakeven horizon 5 (all requests at t=0).
        assert OfflineEvaluator(batch_problem).always_on_energy() == pytest.approx(
            20.0
        )


class TestFigure3Offline:
    def test_schedule_b_costs_23(self, paper_problem):
        schedule_b = assign(paper_problem, {0: 0, 1: 0, 2: 0, 4: 0, 3: 2, 5: 2})
        evaluation = OfflineEvaluator(paper_problem).evaluate(schedule_b)
        assert evaluation.objective_energy == pytest.approx(23.0)

    def test_schedule_b_per_disk_energies(self, paper_problem):
        # Paper: "the energy consumption of d1 and d3 now becomes 13 and 10".
        schedule_b = assign(paper_problem, {0: 0, 1: 0, 2: 0, 4: 0, 3: 2, 5: 2})
        per_disk = chain_energies(schedule_b, paper_problem)
        assert per_disk[0] == pytest.approx(13.0)
        assert per_disk[2] == pytest.approx(10.0)

    def test_schedule_c_costs_19(self, paper_problem):
        schedule_c = assign(paper_problem, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3})
        evaluation = OfflineEvaluator(paper_problem).evaluate(schedule_c)
        assert evaluation.objective_energy == pytest.approx(19.0)

    def test_request_level_energies_of_schedule_c(self, paper_problem):
        # Paper: energy of r1 is 1 (idle 0->1), energy of r3 is 5.
        schedule_c = assign(paper_problem, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3})
        evaluation = OfflineEvaluator(paper_problem).evaluate(schedule_c)
        assert evaluation.request_energy[0] == pytest.approx(1.0)
        assert evaluation.request_energy[2] == pytest.approx(5.0)

    def test_saving_of_r1_is_4(self, paper_problem):
        schedule_c = assign(paper_problem, {0: 0, 1: 0, 2: 0, 3: 2, 4: 3, 5: 3})
        evaluation = OfflineEvaluator(paper_problem).evaluate(schedule_c)
        epmax = paper_problem.profile.max_request_energy
        assert epmax - evaluation.request_energy[0] == pytest.approx(4.0)

    def test_always_on_equals_horizon_times_disks(self, paper_problem):
        evaluator = OfflineEvaluator(paper_problem)
        assert evaluator.horizon() == pytest.approx(18.0)
        assert evaluator.always_on_energy() == pytest.approx(72.0)

    def test_no_schedule_beats_19(self, paper_problem):
        """Exhaustively verify schedule C is optimal (paper's claim)."""
        import itertools

        best = float("inf")
        options = [paper_problem.locations_of(r) for r in paper_problem.requests]
        for combo in itertools.product(*options):
            assignment = assign(
                paper_problem,
                {i: disk for i, disk in enumerate(combo)},
            )
            evaluation = OfflineEvaluator(paper_problem).evaluate(assignment)
            best = min(best, evaluation.objective_energy)
        assert best == pytest.approx(19.0)


class TestFigure4Walkthrough:
    def test_graph_nodes_match_eq3_eq4(self, paper_problem):
        """Step 1: the non-zero saving terms of the example.

        Fidelity notes against the paper's Fig. 4(a) walkthrough:

        * Eq. 3/4 produce X(3,4,4) — r3 and r4 both live on d4 at gap
          2 < TB — which the figure omits; including it does not change
          the optimum (an alternative 11-weight independent set runs
          through it).
        * The figure's X(4,6,4) has gap t6 - t4 = 8 >= TB = 5, so Eq. 3
          values it zero and Step 1 drops it; the walkthrough's selected
          saving of 4 on d4 comes from X(5,6,4) (gap 1), consistent with
          the derived schedule placing r5, r6 on d4 and r4 anywhere.
        """
        scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=None)
        _graph, terms = scheduler.build_graph(paper_problem)
        labelled = {(t.predecessor, t.successor, t.disk) for t in terms}
        # 1-based paper names: X(1,2,1), X(1,3,1), X(2,3,1), X(2,3,2),
        # X(3,4,4), X(5,6,4). Our ids are 0-based.
        assert labelled == {
            (0, 1, 0),
            (0, 2, 0),
            (1, 2, 0),
            (1, 2, 1),
            (2, 3, 3),
            (4, 5, 3),
        }

    def test_graph_weights(self, paper_problem):
        scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=None)
        _graph, terms = scheduler.build_graph(paper_problem)
        weights = {
            (t.predecessor, t.successor, t.disk): t.weight for t in terms
        }
        assert weights[(0, 1, 0)] == pytest.approx(4.0)  # gap 1
        assert weights[(0, 2, 0)] == pytest.approx(2.0)  # gap 3
        assert weights[(1, 2, 0)] == pytest.approx(3.0)  # gap 2
        assert weights[(4, 5, 3)] == pytest.approx(4.0)  # gap 1

    def test_selected_set_weight_is_11(self, paper_problem):
        """Step 3: the paper's selected set {X(2,3,1), X(1,2,1), X(4,6,4)}
        has total saving 3 + 4 + 4 = 11."""
        scheduler = MWISOfflineScheduler(method="exact", neighborhood=None)
        result = scheduler.schedule_detailed(paper_problem)
        assert result.estimated_saving == pytest.approx(11.0)

    def test_derived_schedule_matches_figure_3b(self, paper_problem):
        scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=None)
        result = scheduler.schedule_detailed(paper_problem)
        evaluation = OfflineEvaluator(paper_problem).evaluate(result.assignment)
        assert evaluation.objective_energy == pytest.approx(19.0)

    def test_gwmin_matches_exact_here(self, paper_problem):
        for method in ("gwmin", "gwmin2", "exact"):
            scheduler = MWISOfflineScheduler(method=method, neighborhood=None)
            result = scheduler.schedule_detailed(paper_problem)
            evaluation = OfflineEvaluator(paper_problem).evaluate(
                result.assignment
            )
            assert evaluation.objective_energy == pytest.approx(19.0), method
