"""Tests for the MWIS offline scheduler mechanics."""

import pytest

from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator
from repro.core.problem import SchedulingProblem
from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.types import Request


class TestGraphConstruction:
    def test_zero_weight_terms_excluded(self):
        # Two requests far apart on the same disk: no node.
        catalog = PlacementCatalog({0: [0], 1: [0]})
        requests = [
            Request(time=0.0, request_id=0, data_id=0),
            Request(time=100.0, request_id=1, data_id=1),
        ]
        problem = SchedulingProblem.build(requests, catalog, PAPER_UNIT, 1)
        graph, terms = MWISOfflineScheduler(neighborhood=None).build_graph(problem)
        assert len(terms) == 0
        assert len(graph) == 0

    def test_neighborhood_cap_limits_pairs(self):
        # Five requests in a burst on one disk: unbounded = C(5,2)=10 pairs,
        # neighborhood=1 = 4 pairs.
        catalog = PlacementCatalog({i: [0] for i in range(5)})
        requests = [
            Request(time=i * 0.1, request_id=i, data_id=i) for i in range(5)
        ]
        problem = SchedulingProblem.build(requests, catalog, PAPER_UNIT, 1)
        _g, unbounded = MWISOfflineScheduler(neighborhood=None).build_graph(problem)
        _g, capped = MWISOfflineScheduler(neighborhood=1).build_graph(problem)
        assert len(unbounded) == 10
        assert len(capped) == 4

    def test_terms_only_on_shared_disks(self, paper_problem):
        _graph, terms = MWISOfflineScheduler(neighborhood=None).build_graph(
            paper_problem
        )
        for term in terms:
            # Both requests' data must live on the term's disk.
            pred = paper_problem.requests[term.predecessor]
            succ = paper_problem.requests[term.successor]
            assert term.disk in paper_problem.locations_of(pred)
            assert term.disk in paper_problem.locations_of(succ)

    def test_edges_are_exactly_the_conflicts(self, paper_problem):
        graph, terms = MWISOfflineScheduler(neighborhood=None).build_graph(
            paper_problem
        )
        for a_id in range(len(terms)):
            for b_id in range(a_id + 1, len(terms)):
                expected = terms[a_id].conflicts_with(terms[b_id])
                assert graph.has_edge(a_id, b_id) == expected, (
                    terms[a_id],
                    terms[b_id],
                )


class TestScheduling:
    def test_schedule_is_complete_and_feasible(self, paper_problem):
        assignment = MWISOfflineScheduler().schedule(paper_problem)
        paper_problem.validate_schedule(assignment)

    def test_estimated_saving_never_exceeds_true_saving(self, paper_problem):
        """The interleaving subtlety: the MWIS weight is a lower bound."""
        result = MWISOfflineScheduler(neighborhood=None).schedule_detailed(
            paper_problem
        )
        evaluation = OfflineEvaluator(paper_problem).evaluate(result.assignment)
        assert result.estimated_saving <= evaluation.total_saving + 1e-9

    def test_requests_without_terms_repaired_to_cheap_disks(self):
        # One lonely request with two possible homes; one home already has
        # a chain nearby, the other is empty. Repair should prefer the
        # nearby chain (marginal energy ~gap) over opening a new disk
        # (marginal EPmax).
        catalog = PlacementCatalog({0: [0], 1: [0], 2: [0, 1]})
        requests = [
            Request(time=0.0, request_id=0, data_id=0),
            Request(time=1.0, request_id=1, data_id=1),
            Request(time=2.0, request_id=2, data_id=2),
        ]
        problem = SchedulingProblem.build(requests, catalog, PAPER_UNIT, 2)
        assignment = MWISOfflineScheduler(neighborhood=None).schedule(problem)
        assert assignment.disk_of(2) == 0

    def test_unknown_method_raises_at_solve_time(self, paper_problem):
        scheduler = MWISOfflineScheduler(method="bogus")
        with pytest.raises(ConfigurationError):
            scheduler.schedule(paper_problem)

    def test_name_mentions_method(self):
        assert "gwmin" in MWISOfflineScheduler().name

    def test_capped_neighborhood_still_feasible(self, paper_problem):
        for cap in (1, 2, 3):
            assignment = MWISOfflineScheduler(neighborhood=cap).schedule(
                paper_problem
            )
            paper_problem.validate_schedule(assignment)

    def test_tighter_cap_never_improves_exact_saving(self, paper_problem):
        savings = []
        for cap in (1, 2, None):
            result = MWISOfflineScheduler(
                method="exact", neighborhood=cap
            ).schedule_detailed(paper_problem)
            savings.append(result.estimated_saving)
        assert savings == sorted(savings)
