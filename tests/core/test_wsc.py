"""Tests for the WSC batch scheduler (Section 3.2 / Theorem 2)."""

import pytest

from repro.core.cost import CostFunction, energy_cost
from repro.core.wsc import PAPER_BATCH_INTERVAL, WSCBatchScheduler
from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL, PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.types import Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=0.0, profile=PAPER_UNIT):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = profile

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)

    def available_locations(self, data_id):
        return self._catalog.locations(data_id)


def standby_view(catalog, num_disks, profile=PAPER_UNIT):
    disks = {d: FakeDisk(DiskPowerState.STANDBY) for d in range(num_disks)}
    return FakeView(disks, catalog, profile=profile)


class TestFigure2Instance:
    """The paper's batch example: WSC should find the 2-disk cover."""

    def make(self):
        catalog = PlacementCatalog(
            {0: [0], 1: [0, 1], 2: [0, 1, 3], 3: [2, 3], 4: [0, 3], 5: [2, 3]}
        )
        requests = [
            Request(time=0.0, request_id=i, data_id=i) for i in range(6)
        ]
        return catalog, requests

    def test_covers_with_two_disks(self):
        catalog, requests = self.make()
        view = standby_view(catalog, 4)
        scheduler = WSCBatchScheduler(use_cost_function=False)
        decisions = scheduler.choose_batch(requests, view)
        assert set(decisions) == {r.request_id for r in requests}
        used = set(decisions.values())
        assert len(used) == 2  # schedule B's minimum (d1 + d3 or d1 + d4)

    def test_every_request_lands_on_its_data(self):
        catalog, requests = self.make()
        view = standby_view(catalog, 4)
        decisions = WSCBatchScheduler().choose_batch(requests, view)
        for request in requests:
            assert decisions[request.request_id] in catalog.locations(
                request.data_id
            )


class TestWeighting:
    def test_prefers_spinning_disks(self):
        catalog = PlacementCatalog({0: [0, 1]})
        disks = {
            0: FakeDisk(DiskPowerState.STANDBY),
            1: FakeDisk(DiskPowerState.IDLE, last_request_time=0.0),
        }
        view = FakeView(disks, catalog, now=1.0, profile=PAPER_EVAL)
        decisions = WSCBatchScheduler(use_cost_function=False).choose_batch(
            [Request(time=1.0, request_id=0, data_id=0)], view
        )
        assert decisions[0] == 1

    def test_eq5_weight_used_when_cost_function_disabled(self):
        """With pure Eq. 5 weights an active disk is free."""
        catalog = PlacementCatalog({0: [0, 1]})
        disks = {
            0: FakeDisk(DiskPowerState.ACTIVE, queue_length=50),
            1: FakeDisk(DiskPowerState.IDLE, last_request_time=0.0),
        }
        view = FakeView(disks, catalog, now=30.0, profile=PAPER_EVAL)
        decisions = WSCBatchScheduler(use_cost_function=False).choose_batch(
            [Request(time=30.0, request_id=0, data_id=0)], view
        )
        assert decisions[0] == 0

    def test_cost_function_weight_penalises_long_queues(self):
        catalog = PlacementCatalog({0: [0, 1]})
        disks = {
            0: FakeDisk(DiskPowerState.ACTIVE, queue_length=50),
            1: FakeDisk(DiskPowerState.IDLE, last_request_time=29.0),
        }
        view = FakeView(disks, catalog, now=30.0, profile=PAPER_EVAL)
        decisions = WSCBatchScheduler(
            cost_function=CostFunction(alpha=0.2, beta=100.0)
        ).choose_batch([Request(time=30.0, request_id=0, data_id=0)], view)
        assert decisions[0] == 1


class TestBatchBehaviour:
    def test_empty_batch(self):
        catalog = PlacementCatalog({0: [0]})
        view = standby_view(catalog, 1)
        assert WSCBatchScheduler().choose_batch([], view) == {}

    def test_paper_interval_default(self):
        assert WSCBatchScheduler().interval == PAPER_BATCH_INTERVAL == 0.1

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WSCBatchScheduler(interval=0.0)

    def test_load_spread_among_chosen_disks(self):
        """Requests covered by several chosen disks spread by queue length."""
        catalog = PlacementCatalog(
            {i: [0, 1] for i in range(10)} | {10: [0], 11: [1]}
        )
        view = standby_view(catalog, 2)
        requests = [
            Request(time=0.0, request_id=i, data_id=i) for i in range(12)
        ]
        decisions = WSCBatchScheduler().choose_batch(requests, view)
        used = set(decisions.values())
        assert used == {0, 1}
        counts = {0: 0, 1: 0}
        for disk in decisions.values():
            counts[disk] += 1
        assert abs(counts[0] - counts[1]) <= 2

    def test_name_mentions_interval(self):
        assert "0.1" in WSCBatchScheduler().name


class TestPlacementLookupCount:
    def test_available_locations_called_once_per_request(self):
        """choose_batch resolves each request's placement exactly once.

        Regression test for the double lookup (once building coverage,
        again when routing) — the routing loop must reuse the tuples
        gathered in the coverage pass.
        """
        catalog = PlacementCatalog(
            {0: [0], 1: [0, 1], 2: [0, 1, 3], 3: [2, 3], 4: [0, 3], 5: [2, 3]}
        )
        view = standby_view(catalog, 4)
        calls = []
        inner = view.available_locations

        def counting(data_id):
            calls.append(data_id)
            return inner(data_id)

        view.available_locations = counting
        requests = [
            Request(time=0.0, request_id=i, data_id=i) for i in range(6)
        ]
        WSCBatchScheduler().choose_batch(requests, view)
        assert sorted(calls) == [r.data_id for r in requests]
