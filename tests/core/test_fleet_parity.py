"""Hypothesis parity: the columnar kernel vs the scalar reference path.

The ``numpy`` kernel is only admissible because it is *bit-identical* to
the scalar schedulers: same Eq. 5/Eq. 6 arithmetic (evaluation order
included), same (cost, queue, disk id) tie-break. These properties pin
that claim on randomly generated fleets, states and candidate sets —
both kernel branches (scalar gather and vectorised pass) against the
pure-Python :class:`~repro.core.heuristic.HeuristicScheduler` loop and
the reference :func:`~repro.core.cost.energy_cost` evaluation.
"""

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostFunction, energy_cost
from repro.core.fleet import FleetCostState
from repro.core.heuristic import HeuristicScheduler
from repro.power.profile import PAPER_EVAL
from repro.power.states import DiskPowerState
from repro.types import OpKind, Request

NOW = 100.0

#: Small value pools make cost ties common instead of measure-zero.
_TLAST_POOL = (None, 0.0, 10.0, 50.0, NOW)
_QUEUE_POOL = (0, 1, 2, 3)
_STATES = tuple(DiskPowerState)


class FakeDisk:
    """Protocol-only disk view: forces the scalar energy_cost fallback."""

    def __init__(
        self,
        state: DiskPowerState,
        queue_length: int,
        last_request_time: Optional[float],
    ):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    """SystemView without a ``fleet`` attribute: the scalar path."""

    def __init__(
        self, disks: Dict[int, FakeDisk], locations: Tuple[int, ...]
    ):
        self._disks = disks
        self._locations = locations
        self.now = NOW
        self.profile = PAPER_EVAL

    def disk(self, disk_id: int) -> FakeDisk:
        return self._disks[disk_id]

    def available_locations(self, data_id: int) -> Tuple[int, ...]:
        return self._locations


def _mirror(disks: Dict[int, FakeDisk]) -> FleetCostState:
    """Encode the fake disks into fleet columns exactly as the drive
    hooks do (ACTIVE/SPIN_UP zero; STANDBY/SPIN_DOWN memoised wake-up
    constant; IDLE idle-power slope once ``Tlast`` is recorded)."""
    fleet = FleetCostState(
        len(disks), PAPER_EVAL, initial_state=DiskPowerState.IDLE
    )
    for disk_id, disk in disks.items():
        if disk.last_request_time is not None:
            fleet.tlast[disk_id] = disk.last_request_time
        if disk.state in (DiskPowerState.STANDBY, DiskPowerState.SPIN_DOWN):
            fleet.const[disk_id] = fleet.standby_marginal
        elif (
            disk.state is DiskPowerState.IDLE
            and disk.last_request_time is not None
        ):
            fleet.pi[disk_id] = fleet.idle_power
        fleet.queue[disk_id] = float(disk.queue_length)
    return fleet


@st.composite
def fleet_instances(draw):
    # Up to 40 disks so candidate sets straddle the scalar/vector
    # cutoff (32) through the adaptive front door too.
    num_disks = draw(st.integers(min_value=1, max_value=40))
    disks = {
        disk_id: FakeDisk(
            state=draw(st.sampled_from(_STATES)),
            queue_length=draw(st.sampled_from(_QUEUE_POOL)),
            last_request_time=draw(st.sampled_from(_TLAST_POOL)),
        )
        for disk_id in range(num_disks)
    }
    count = draw(st.integers(min_value=1, max_value=num_disks))
    candidates = tuple(draw(st.permutations(range(num_disks)))[:count])
    alpha = draw(
        st.one_of(
            st.sampled_from([0.0, 0.2, 1.0]),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    beta = draw(st.floats(min_value=0.01, max_value=1000.0, allow_nan=False))
    return disks, candidates, CostFunction(alpha=alpha, beta=beta)


@settings(max_examples=200, deadline=None)
@given(fleet_instances())
def test_choose_parity_including_ties(instance) -> None:
    """Both kernel branches pick the scalar scheduler's exact disk."""
    disks, candidates, cost_function = instance
    view = FakeView(disks, candidates)
    scheduler = HeuristicScheduler(cost_function)
    request = Request(
        request_id=0, time=NOW, data_id=0, size_bytes=1, op=OpKind.READ
    )
    expected = scheduler.choose(request, view)

    fleet = _mirror(disks)
    args = (
        candidates,
        NOW,
        cost_function.alpha,
        cost_function.beta,
        cost_function.load_weight,
    )
    assert fleet.choose_scalar(*args) == expected
    assert fleet.choose_vector(*args) == expected
    assert fleet.choose(*args) == expected


@settings(max_examples=200, deadline=None)
@given(fleet_instances())
def test_weights_parity_full_precision(instance) -> None:
    """Eq. 6 weights match the scalar reference bit for bit."""
    disks, candidates, cost_function = instance
    fleet = _mirror(disks)
    expected: List[float] = []
    for disk_id in candidates:
        disk = disks[disk_id]
        energy = energy_cost(
            disk.state, disk.last_request_time, NOW, PAPER_EVAL
        )
        expected.append(
            energy * cost_function.alpha / cost_function.beta
            + disk.queue_length * cost_function.load_weight
        )
    args = (
        candidates,
        NOW,
        cost_function.alpha,
        cost_function.beta,
        cost_function.load_weight,
    )
    assert fleet.weights_scalar(*args) == expected
    assert fleet.weights_vector(*args) == expected
    assert fleet.weights(*args) == expected


@settings(max_examples=200, deadline=None)
@given(fleet_instances())
def test_energies_parity_full_precision(instance) -> None:
    """Eq. 5 energies match the reference evaluation bit for bit."""
    disks, candidates, _ = instance
    fleet = _mirror(disks)
    expected = [
        energy_cost(
            disks[disk_id].state,
            disks[disk_id].last_request_time,
            NOW,
            PAPER_EVAL,
        )
        for disk_id in candidates
    ]
    assert fleet.energies(candidates, NOW) == expected
