"""Property-based tests of the WSC batch scheduler (Theorem 2 claims)."""

from typing import Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import energy_cost
from repro.core.wsc import WSCBatchScheduler
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL
from repro.power.states import DiskPowerState
from repro.types import Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=100.0):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    @property
    def disk_ids(self):
        return sorted(self._disks)

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)

    def available_locations(self, data_id):
        return self._catalog.locations(data_id)


@st.composite
def batch_instances(draw):
    num_disks = draw(st.integers(min_value=1, max_value=6))
    num_requests = draw(st.integers(min_value=1, max_value=12))
    locations = {}
    for data_id in range(num_requests):
        count = draw(st.integers(min_value=1, max_value=num_disks))
        perm = draw(st.permutations(range(num_disks)))
        locations[data_id] = list(perm)[:count]
    states = {}
    for disk_id in range(num_disks):
        state = draw(
            st.sampled_from(
                [
                    DiskPowerState.STANDBY,
                    DiskPowerState.IDLE,
                    DiskPowerState.ACTIVE,
                    DiskPowerState.SPIN_UP,
                ]
            )
        )
        queue = draw(st.integers(min_value=0, max_value=5))
        tlast = (
            draw(st.floats(min_value=0.0, max_value=100.0))
            if state is DiskPowerState.IDLE
            else None
        )
        states[disk_id] = FakeDisk(state, queue, tlast)
    catalog = PlacementCatalog(locations)
    requests = [
        Request(time=100.0, request_id=i, data_id=i)
        for i in range(num_requests)
    ]
    return FakeView(states, catalog), requests, catalog


@given(instance=batch_instances())
@settings(max_examples=80, deadline=None)
def test_every_request_decided_on_its_data(instance):
    view, requests, catalog = instance
    decisions = WSCBatchScheduler().choose_batch(requests, view)
    assert set(decisions) == {r.request_id for r in requests}
    for request in requests:
        assert decisions[request.request_id] in catalog.locations(
            request.data_id
        )


@given(instance=batch_instances())
@settings(max_examples=60, deadline=None)
def test_free_disks_absorb_when_they_cover(instance):
    """A request whose data sits on an ACTIVE/SPIN_UP disk never pays to
    wake a STANDBY disk instead (pure Eq. 5 weighting)."""
    view, requests, catalog = instance
    decisions = WSCBatchScheduler(use_cost_function=False).choose_batch(
        requests, view
    )
    for request in requests:
        chosen = decisions[request.request_id]
        chosen_cost = energy_cost(
            view.disk(chosen).state,
            view.disk(chosen).last_request_time,
            view.now,
            view.profile,
        )
        free_options = [
            d
            for d in catalog.locations(request.data_id)
            if energy_cost(
                view.disk(d).state,
                view.disk(d).last_request_time,
                view.now,
                view.profile,
            )
            == 0.0
        ]
        if free_options:
            assert chosen_cost == 0.0


@given(instance=batch_instances())
@settings(max_examples=40, deadline=None)
def test_deterministic(instance):
    view, requests, _catalog = instance
    scheduler = WSCBatchScheduler()
    assert scheduler.choose_batch(requests, view) == scheduler.choose_batch(
        requests, view
    )
