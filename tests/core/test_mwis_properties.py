"""Property-based tests of the MWIS scheduler and offline evaluator.

Random small scheduling problems are generated with hypothesis; the
invariants checked are the load-bearing claims of Section 3.1:

* the derived schedule is always feasible;
* the selected terms form an independent set (constraints hold);
* the MWIS weight never exceeds the schedule's true saving (the
  interleaving subtlety makes it a lower bound, not an equality);
* objective energy == N * EPmax - true saving (the formulation identity);
* the exact solver is never beaten by any feasible schedule (optimality
  on brute-forceable instances).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator
from repro.core.problem import SchedulingProblem
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.types import Assignment, Request


@st.composite
def small_problems(draw):
    num_disks = draw(st.integers(min_value=1, max_value=4))
    num_requests = draw(st.integers(min_value=1, max_value=7))
    locations = {}
    for data_id in range(num_requests):
        count = draw(st.integers(min_value=1, max_value=num_disks))
        disks = draw(
            st.permutations(range(num_disks)).map(lambda p: list(p)[:count])
        )
        locations[data_id] = disks
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0),
                min_size=num_requests,
                max_size=num_requests,
            )
        )
    )
    requests = [
        Request(time=t, request_id=i, data_id=i) for i, t in enumerate(times)
    ]
    return SchedulingProblem.build(
        requests, PlacementCatalog(locations), PAPER_UNIT, num_disks
    )


@given(problem=small_problems())
@settings(max_examples=60, deadline=None)
def test_schedule_always_feasible(problem):
    assignment = MWISOfflineScheduler(neighborhood=None).schedule(problem)
    problem.validate_schedule(assignment)


@given(problem=small_problems())
@settings(max_examples=60, deadline=None)
def test_selected_terms_are_conflict_free(problem):
    result = MWISOfflineScheduler(neighborhood=None).schedule_detailed(problem)
    for a, b in itertools.combinations(result.selected, 2):
        assert not a.conflicts_with(b)


@given(problem=small_problems())
@settings(max_examples=60, deadline=None)
def test_estimated_saving_is_lower_bound(problem):
    result = MWISOfflineScheduler(neighborhood=None).schedule_detailed(problem)
    evaluation = OfflineEvaluator(problem).evaluate(result.assignment)
    assert result.estimated_saving <= evaluation.total_saving + 1e-6


@given(problem=small_problems())
@settings(max_examples=60, deadline=None)
def test_objective_identity(problem):
    """energy(schedule) = N * EPmax - saving(schedule)."""
    assignment = MWISOfflineScheduler(neighborhood=None).schedule(problem)
    evaluation = OfflineEvaluator(problem).evaluate(assignment)
    epmax = problem.profile.max_request_energy
    assert evaluation.objective_energy == pytest.approx(
        problem.num_requests * epmax - evaluation.total_saving
    )


@given(problem=small_problems())
@settings(max_examples=25, deadline=None)
def test_exact_mwis_schedule_is_optimal(problem):
    """No brute-force schedule beats the exact-MWIS-derived one."""
    result = MWISOfflineScheduler(
        method="exact", neighborhood=None
    ).schedule_detailed(problem)
    evaluator = OfflineEvaluator(problem)
    achieved = evaluator.evaluate(result.assignment).objective_energy

    options = [problem.locations_of(r) for r in problem.requests]
    total = 1
    for opts in options:
        total *= len(opts)
    if total > 600:
        return  # keep the brute force bounded
    best = min(
        evaluator.evaluate(
            Assignment.from_mapping(
                problem.requests,
                {i: disk for i, disk in enumerate(combo)},
            )
        ).objective_energy
        for combo in itertools.product(*options)
    )
    assert achieved == pytest.approx(best)


@given(problem=small_problems())
@settings(max_examples=40, deadline=None)
def test_every_request_energy_bounded_by_epmax(problem):
    assignment = MWISOfflineScheduler(neighborhood=None).schedule(problem)
    evaluation = OfflineEvaluator(problem).evaluate(assignment)
    epmax = problem.profile.max_request_energy
    for energy in evaluation.request_energy.values():
        assert -1e-9 <= energy <= epmax + 1e-9
