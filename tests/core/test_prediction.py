"""Tests for the prediction-augmented heuristic (future-work extension)."""

import pytest

from repro.core.cost import CostFunction
from repro.core.prediction import (
    InterArrivalEstimator,
    PredictiveHeuristicScheduler,
)
from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_EVAL
from repro.power.states import DiskPowerState
from repro.types import Request


class FakeDisk:
    def __init__(self, state, queue_length=0, last_request_time=None):
        self.state = state
        self.queue_length = queue_length
        self.last_request_time = last_request_time


class FakeView:
    def __init__(self, disks, catalog, now=0.0):
        self._disks = disks
        self._catalog = catalog
        self.now = now
        self.profile = PAPER_EVAL

    @property
    def disk_ids(self):
        return sorted(self._disks)

    def disk(self, disk_id):
        return self._disks[disk_id]

    def locations(self, data_id):
        return self._catalog.locations(data_id)


class TestEstimator:
    def test_unseen_disk_pessimistic(self):
        estimator = InterArrivalEstimator()
        assert estimator.expected_gap(0) == 1e6
        assert estimator.idle_through_window_probability(0, 40.0) > 0.99

    def test_ewma_converges_toward_observed_gap(self):
        estimator = InterArrivalEstimator(smoothing=0.5, initial_gap=100.0)
        for i in range(50):
            estimator.observe(0, float(i * 2))
        assert estimator.expected_gap(0) == pytest.approx(2.0, rel=0.05)

    def test_hot_disk_low_survival(self):
        estimator = InterArrivalEstimator(smoothing=0.5)
        for i in range(50):
            estimator.observe(0, float(i))
        assert estimator.idle_through_window_probability(0, 40.0) < 1e-10

    def test_first_observation_sets_baseline_only(self):
        estimator = InterArrivalEstimator(initial_gap=500.0)
        estimator.observe(0, 10.0)
        assert estimator.expected_gap(0) == 500.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterArrivalEstimator(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            InterArrivalEstimator(initial_gap=0.0)


class TestScheduler:
    def make_view(self):
        disks = {
            0: FakeDisk(DiskPowerState.STANDBY),
            1: FakeDisk(DiskPowerState.STANDBY),
        }
        catalog = PlacementCatalog({0: [0, 1]})
        return FakeView(disks, catalog, now=0.0)

    def test_learned_hot_disk_preferred_despite_standby_cost(self):
        """A standby disk known to be hot is (correctly) treated as cheap:
        it would wake soon regardless of this request."""
        scheduler = PredictiveHeuristicScheduler(
            cost_function=CostFunction(alpha=1.0, beta=100.0), smoothing=0.5
        )
        # Teach the estimator that disk 1 sees a request every second.
        for i in range(30):
            scheduler.estimator.observe(1, float(i))
        view = self.make_view()
        view.now = 30.0
        chosen = scheduler.choose(
            Request(time=30.0, request_id=0, data_id=0), view
        )
        assert chosen == 1

    def test_without_history_falls_back_to_plain_ordering(self):
        scheduler = PredictiveHeuristicScheduler()
        view = self.make_view()
        chosen = scheduler.choose(
            Request(time=0.0, request_id=0, data_id=0), view
        )
        assert chosen == 0  # tie -> lowest disk id, like the plain heuristic

    def test_decisions_feed_the_estimator(self):
        scheduler = PredictiveHeuristicScheduler()
        view = self.make_view()
        scheduler.choose(Request(time=0.0, request_id=0, data_id=0), view)
        view.now = 5.0
        scheduler.choose(Request(time=5.0, request_id=1, data_id=0), view)
        # The chosen disk has at least a last-seen timestamp recorded.
        assert scheduler.estimator._last_time  # noqa: SLF001 (test-only peek)

    def test_name(self):
        assert "Predictive" in PredictiveHeuristicScheduler().name


class TestEndToEnd:
    def test_predictive_energy_close_to_or_better_than_plain(self):
        """On a skewed workload the prediction should not hurt energy."""
        from repro.core.heuristic import HeuristicScheduler
        from repro.placement.schemes import ZipfOriginalUniformReplicas
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.traces.cello import CelloLikeConfig, generate_cello_like
        from repro.traces.workload import Workload

        workload = Workload(
            generate_cello_like(CelloLikeConfig().scaled(0.05), seed=2)
        )
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(replication_factor=3),
            num_disks=9,
            seed=3,
        )
        config = SimulationConfig(num_disks=9, profile=PAPER_EVAL)
        plain = simulate(requests, catalog, HeuristicScheduler(), config)
        predictive = simulate(
            requests, catalog, PredictiveHeuristicScheduler(), config
        )
        assert predictive.requests_completed == plain.requests_completed
        assert predictive.total_energy <= plain.total_energy * 1.15
