"""Determinism/equivalence tier: same spec => byte-identical reports.

Four equivalences, each proven on canonical report JSON (sorted keys,
compact separators — see ``repro.experiments.harness.serialize``):

* two fresh serial runs of the same spec;
* a serial sweep vs a 2-worker process-pool sweep;
* a fresh compute vs a persistent-cache hit (across cache reopen);
* the scalar ``python`` cost kernel vs the columnar ``numpy`` kernel.
"""

import pickle
from dataclasses import replace

from repro.core.fleet import set_default_kernel
from repro.experiments.harness import (
    RunCache,
    SweepRunner,
    baseline_spec,
    canonical_json,
    canonical_report_json,
    cell_spec,
    clear_memos,
    execute_spec,
    report_from_payload,
)
from repro.experiments.harness.runner import (
    get_binding,
    make_config,
    make_scheduler,
)
from repro.faults import FaultPlan
from repro.sim import simulate

SCALE = 0.05
SEED = 1


def _specs():
    specs = [
        cell_spec("cello", 3, key, scale=SCALE, seed=SEED)
        for key in ("random", "static", "heuristic", "wsc")
    ]
    # A fault-injected cell rides along so every equivalence below also
    # covers the failure schedule (same seed + plan => same failures).
    specs.append(
        cell_spec("cello", 3, "heuristic", scale=SCALE, seed=SEED, fault_rate=2e-4)
    )
    specs.append(baseline_spec("cello", scale=SCALE, seed=SEED))
    return specs


def _report_bytes(payload):
    return canonical_json(payload["report"])


class TestSerialDeterminism:
    def test_two_fresh_serial_runs_byte_identical(self):
        spec = cell_spec("cello", 3, "heuristic", scale=SCALE, seed=SEED)
        first = execute_spec(spec)
        clear_memos()
        second = execute_spec(spec)
        assert _report_bytes(first) == _report_bytes(second)

    def test_mwis_offline_run_deterministic(self):
        spec = cell_spec("cello", 2, "mwis", scale=SCALE, seed=SEED)
        first = execute_spec(spec)
        clear_memos()
        second = execute_spec(spec)
        assert _report_bytes(first) == _report_bytes(second)

    def test_different_seeds_differ(self):
        spec_a = cell_spec("cello", 3, "heuristic", scale=SCALE, seed=1)
        spec_b = cell_spec("cello", 3, "heuristic", scale=SCALE, seed=2)
        assert _report_bytes(execute_spec(spec_a)) != _report_bytes(
            execute_spec(spec_b)
        )

    def test_faulted_spec_deterministic(self):
        spec = cell_spec(
            "cello", 3, "wsc", scale=SCALE, seed=SEED, fault_rate=5e-4
        )
        first = execute_spec(spec)
        clear_memos()
        second = execute_spec(spec)
        assert _report_bytes(first) == _report_bytes(second)

    def test_none_fault_plan_is_zero_overlay(self):
        """``fault_plan=FaultPlan.none()`` must be byte-invisible.

        The explicit no-fault plan and no plan at all take the same code
        path: no injector, no epoch guards, no availability payload — so
        every pre-fault figure stays byte-identical.
        """
        spec = cell_spec("cello", 3, "heuristic", scale=SCALE, seed=SEED)
        requests, catalog, disks = get_binding(
            spec.trace,
            spec.replication_factor,
            spec.zipf_exponent,
            spec.scale,
            spec.seed,
        )
        config = make_config(disks, spec.profile, spec.seed)
        plain = simulate(requests, catalog, make_scheduler(spec), config)
        overlaid = simulate(
            requests,
            catalog,
            make_scheduler(spec),
            replace(config, fault_plan=FaultPlan.none()),
        )
        assert canonical_report_json(plain) == canonical_report_json(overlaid)
        assert "availability" not in canonical_report_json(plain)


class TestPoolEquivalence:
    def test_serial_vs_process_pool_byte_identical(self):
        specs = _specs()
        serial = SweepRunner(cache=None, jobs=1).run(specs)
        clear_memos()
        parallel = SweepRunner(cache=None, jobs=2).run(specs)
        for spec in specs:
            assert _report_bytes(serial.payloads[spec]) == _report_bytes(
                parallel.payloads[spec]
            ), spec.label()


class TestKernelEquivalence:
    def test_python_and_numpy_kernels_byte_identical(self):
        """The columnar kernel is a pure optimisation: every scheduler
        (fault-injected cell included) produces byte-identical reports
        under both cost kernels."""
        specs = _specs()
        try:
            set_default_kernel("numpy")
            vectorised = {spec: execute_spec(spec) for spec in specs}
            clear_memos()
            set_default_kernel("python")
            scalar = {spec: execute_spec(spec) for spec in specs}
        finally:
            set_default_kernel(None)
            clear_memos()
        for spec in specs:
            assert _report_bytes(vectorised[spec]) == _report_bytes(
                scalar[spec]
            ), spec.label()


class TestCacheEquivalence:
    def test_fresh_vs_cache_hit_byte_identical(self, tmp_path):
        specs = _specs()
        cache = RunCache(root=tmp_path, enabled=True)
        fresh = SweepRunner(cache=cache, jobs=1).run(specs)
        assert fresh.cache_hits == 0
        assert fresh.cache_misses == len(specs)

        reopened = RunCache(root=tmp_path, enabled=True)
        cached = SweepRunner(cache=reopened, jobs=1).run(specs)
        assert cached.cache_hits == len(specs)
        assert cached.cache_misses == 0
        assert all(point.cached for point in cached.points)
        for spec in specs:
            assert _report_bytes(fresh.payloads[spec]) == _report_bytes(
                cached.payloads[spec]
            ), spec.label()

    def test_payload_roundtrip_preserves_canonical_bytes(self):
        spec = cell_spec("cello", 1, "static", scale=SCALE, seed=SEED)
        payload = execute_spec(spec)
        report = report_from_payload(payload["report"])
        assert canonical_report_json(report) == _report_bytes(payload)

    def test_spec_pickles_and_hashes(self):
        spec = cell_spec("cello", 3, "wsc", scale=SCALE, seed=SEED)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
