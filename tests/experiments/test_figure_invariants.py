"""Cross-scheduler invariants promoted from the figure benches (tier 1).

The full Fig. 6/7/8 assertions live in ``benchmarks/``; this module
keeps the load-bearing physics in the fast test tier at
``REPRO_SCALE=0.05``. Tolerances are *measured* at this scale (cello,
seed 1): rf=1 parity is exact; at rf=5 MWIS (0.597) lands slightly above
WSC (0.575), hence the 0.03 slack on the offline bound; WSC trails the
Heuristic by up to 0.052 at rf=3, hence the 0.06 slack there.
"""

import pytest

from repro.experiments import common

SCALE = 0.05


@pytest.fixture(autouse=True)
def small_scale():
    previous = (common.SCALE, common.MWIS_SCALE)
    common.SCALE = common.MWIS_SCALE = SCALE
    yield
    common.SCALE, common.MWIS_SCALE = previous


def _energy(replication_factor, key):
    return common.run_cell(
        "cello", replication_factor, key
    ).normalized_energy


class TestReplicationOneParity:
    """rf=1 leaves no scheduling choice: simulated runs must coincide."""

    def test_single_choice_schedulers_identical(self):
        energies = {
            key: _energy(1, key) for key in ("random", "static", "heuristic")
        }
        reference = energies["static"]
        for key, value in energies.items():
            assert value == pytest.approx(reference, rel=1e-9), key

    def test_wsc_energy_matches_despite_batching(self):
        # Batching delays service but the chosen disk is still forced.
        assert _energy(1, "wsc") == pytest.approx(_energy(1, "static"), rel=0.02)

    def test_response_parity(self):
        responses = [
            common.run_cell("cello", 1, key).mean_response_time
            for key in ("random", "static", "heuristic")
        ]
        for value in responses[1:]:
            assert value == pytest.approx(responses[0], rel=1e-9)


class TestEnergyOrdering:
    """Fig. 6's cross-scheduler ordering, at a common scale."""

    @pytest.mark.parametrize("replication_factor", (3, 5))
    def test_offline_mwis_bounds_online(self, replication_factor):
        mwis = _energy(replication_factor, "mwis")
        wsc = _energy(replication_factor, "wsc")
        heuristic = _energy(replication_factor, "heuristic")
        assert mwis <= wsc + 0.03
        assert mwis <= heuristic + 0.03
        assert wsc <= heuristic + 0.06

    @pytest.mark.parametrize("replication_factor", (3, 5))
    def test_energy_aware_beat_random(self, replication_factor):
        random_ = _energy(replication_factor, "random")
        assert _energy(replication_factor, "heuristic") < random_ - 0.1
        assert _energy(replication_factor, "wsc") < random_ - 0.1

    def test_replication_helps_energy_aware(self):
        assert _energy(5, "heuristic") < _energy(1, "heuristic") - 0.15
        assert _energy(5, "wsc") < _energy(1, "wsc") - 0.15


class TestSpinOperations:
    """Fig. 7's spin-count physics."""

    def test_always_on_never_spins(self):
        baseline = common.get_baseline("cello")
        assert baseline.spin_operations == 0

    def test_energy_aware_spin_less_than_static_at_high_replication(self):
        static = common.run_cell("cello", 5, "static").spin_operations
        assert common.run_cell("cello", 5, "heuristic").spin_operations < static
        assert common.run_cell("cello", 5, "wsc").spin_operations < static


class TestResponseOrdering:
    """Fig. 8: energy-aware schedulers answer faster than the baselines."""

    @pytest.mark.parametrize("replication_factor", (3, 5))
    def test_heuristic_and_wsc_beat_static(self, replication_factor):
        static = common.run_cell(
            "cello", replication_factor, "static"
        ).mean_response_time
        for key in ("heuristic", "wsc"):
            result = common.run_cell("cello", replication_factor, key)
            assert result.mean_response_time < static


class TestEventsAccounting:
    """The events_processed counter rides along with every report."""

    def test_simulated_cells_count_events(self):
        result = common.run_cell("cello", 3, "heuristic")
        assert result.report.events_processed > 0

    def test_baseline_counts_events(self):
        assert common.get_baseline("cello").events_processed > 0

    def test_offline_mwis_reports_zero_events(self):
        # Analytically evaluated: no simulator runs, no events.
        result = common.run_cell("cello", 2, "mwis")
        assert result.report.events_processed == 0
