"""Tests for the per-figure experiment entry points (small scale)."""

import pytest

from repro.experiments import common, figures


@pytest.fixture(autouse=True, scope="module")
def small_scale():
    """Run every figure at a tiny scale; restore afterwards."""
    old_scale, old_mwis = common.SCALE, common.MWIS_SCALE
    common.SCALE, common.MWIS_SCALE = 0.05, 0.05
    common.clear_caches()
    yield
    common.SCALE, common.MWIS_SCALE = old_scale, old_mwis
    common.clear_caches()


class TestFig5:
    def test_describes_profile(self):
        text = figures.fig5()
        assert "breakeven" in text


class TestFig6:
    def test_series_complete(self):
        result = figures.fig6()
        assert result.x_values == (1, 2, 3, 4, 5)
        assert len(result.series) == 5
        for values in result.series.values():
            assert len(values) == 5
            assert all(v > 0 for v in values)

    def test_static_flat(self):
        result = figures.fig6()
        static = result.series[common.SCHEDULER_LABELS["static"]]
        assert max(static) - min(static) < 0.08

    def test_energy_aware_declines(self):
        result = figures.fig6()
        heuristic = result.series[common.SCHEDULER_LABELS["heuristic"]]
        assert heuristic[-1] < heuristic[0]

    def test_render_is_tabular(self):
        text = figures.fig6().render()
        assert "replication" in text
        assert "fig6" in text


class TestFig7:
    def test_static_normalised_to_one(self):
        result = figures.fig7()
        static = result.series[common.SCHEDULER_LABELS["static"]]
        assert all(v == pytest.approx(1.0) for v in static)


class TestFig8:
    def test_response_times_positive(self):
        result = figures.fig8()
        for values in result.series.values():
            assert all(v >= 0 for v in values)

    def test_mwis_omitted(self):
        result = figures.fig8()
        assert common.SCHEDULER_LABELS["mwis"] not in result.series


class TestFig9:
    def test_panels_have_all_disks(self):
        result = figures.fig9()
        disks = common.num_disks_for(common.SCALE)
        for fractions in result.panels.values():
            assert len(fractions) == disks

    def test_fractions_sum_to_one(self):
        result = figures.fig9()
        for fractions in result.panels.values():
            for disk_fraction in fractions:
                assert sum(disk_fraction.values()) == pytest.approx(1.0)

    def test_render(self):
        assert "fig9" in figures.fig9().render()


class TestFig10:
    def test_three_panels_over_grid(self):
        panels = figures.fig10(z_grid=(0.0, 1.0), rf_grid=(1, 3))
        assert set(panels) == {"random", "static", "heuristic"}
        for panel in panels.values():
            assert len(panel.series) == 2


class TestFig11:
    def test_energy_and_response_normalised_to_alpha0(self):
        energy, response = figures.fig11(
            alpha_grid=(0.0, 1.0), beta_grid=(100.0,)
        )
        assert energy.series["beta=100"][0] == pytest.approx(1.0)
        assert response.series["beta=100"][0] == pytest.approx(1.0)

    def test_energy_falls_with_alpha(self):
        energy, _response = figures.fig11(
            alpha_grid=(0.0, 1.0), beta_grid=(100.0,)
        )
        series = energy.series["beta=100"]
        assert series[-1] <= series[0] + 1e-9


class TestFig12:
    def test_probabilities_monotone(self):
        result = figures.fig12()
        for values in result.series.values():
            assert values == sorted(values, reverse=True)
            assert all(0.0 <= v <= 1.0 for v in values)


class TestFig13:
    def test_p90_positive(self):
        result = figures.fig13()
        for values in result.series.values():
            assert all(v >= 0 for v in values)


class TestFinancialVariants:
    def test_fig14_shape(self):
        result = figures.fig14()
        heuristic = result.series[common.SCHEDULER_LABELS["heuristic"]]
        assert heuristic[-1] < heuristic[0]

    def test_fig16_response_below_cello(self):
        """Financial1's steadier arrivals give lower response times."""
        cello = figures.fig8()
        financial = figures.fig16()
        label = common.SCHEDULER_LABELS["static"]
        assert (
            sum(financial.series[label]) <= sum(cello.series[label]) + 1e-9
        )


class TestDispatch:
    def test_run_figure_known(self):
        assert figures.run_figure("fig5")

    def test_run_figure_unknown(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            figures.run_figure("fig1")
