"""Tests for the headline-claims scorecard."""

import pytest

from repro.experiments import common
from repro.experiments.headline import HeadlineClaims, headline_claims


@pytest.fixture(autouse=True, scope="module")
def small_scale():
    old_scale, old_mwis = common.SCALE, common.MWIS_SCALE
    common.SCALE, common.MWIS_SCALE = 0.05, 0.05
    common.clear_caches()
    yield
    common.SCALE, common.MWIS_SCALE = old_scale, old_mwis
    common.clear_caches()


def test_claims_computed_and_sane():
    claims = headline_claims("cello")
    assert 0.0 < claims.best_energy_reduction < 1.0
    assert claims.best_energy_cell[0] in ("heuristic", "wsc", "mwis")
    assert claims.best_energy_cell[1] in (1, 2, 3, 4, 5)
    assert -1.0 < claims.spin_reduction_vs_static < 1.0
    assert -1.0 < claims.response_reduction_vs_static < 1.0


def test_render_contains_all_three_claims():
    claims = headline_claims("cello")
    text = claims.render()
    assert "up to 55%" in text
    assert "fewer" in text
    assert "shorter" in text


def test_render_is_pure():
    claims = HeadlineClaims(
        trace="cello",
        best_energy_reduction=0.42,
        best_energy_cell=("wsc", 5),
        spin_reduction_vs_static=0.3,
        response_reduction_vs_static=0.25,
    )
    text = claims.render()
    assert "42%" in text
    assert "30% fewer" in text
    assert "25% shorter" in text
