"""Isolation for the experiment tests.

Every test starts with empty in-memory memos, and the persistent run
cache is re-resolved lazily afterwards (the session-level
``REPRO_CACHE_DIR`` isolation in the root conftest keeps even that
out of the user's real cache directory).
"""

import pytest

from repro.experiments import common


@pytest.fixture(autouse=True)
def fresh_experiment_memos():
    common.clear_caches()
    yield
    common.clear_caches()
    common.set_persistent_cache(None)
