"""Tests for the experiment plumbing (caching, cells, baselines)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import common


SCALE = 0.05


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


class TestWorkloads:
    def test_workload_cached(self):
        first = common.get_workload("cello", SCALE)
        second = common.get_workload("cello", SCALE)
        assert first is second

    def test_traces_differ(self):
        cello = common.get_workload("cello", SCALE)
        financial = common.get_workload("financial", SCALE)
        assert cello is not financial
        assert (
            cello.stats().interarrival_cv > financial.stats().interarrival_cv
        )

    def test_unknown_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            common.get_workload("netflix", SCALE)


class TestBindings:
    def test_binding_shapes(self):
        requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
        assert disks == common.num_disks_for(SCALE)
        assert all(
            catalog.replication_factor(d) == 3 for d in list(catalog)[:20]
        )
        assert len(requests) == common.get_workload("cello", SCALE).num_requests

    def test_binding_cached(self):
        a = common.get_binding("cello", 2, 1.0, SCALE)
        b = common.get_binding("cello", 2, 1.0, SCALE)
        assert a is b


class TestRunCell:
    def test_cell_cached(self):
        a = common.run_cell("cello", 1, "static", scale=SCALE)
        b = common.run_cell("cello", 1, "static", scale=SCALE)
        assert a is b

    def test_normalized_energy_sane(self):
        result = common.run_cell("cello", 3, "heuristic", scale=SCALE)
        assert 0.05 < result.normalized_energy < 1.3

    def test_mwis_cell_runs_offline(self):
        result = common.run_cell("cello", 2, "mwis", scale=SCALE)
        assert result.report.response_times == ()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            common.run_cell("cello", 1, "fifo", scale=SCALE)

    def test_alpha_beta_feed_heuristic(self):
        energy_only = common.run_cell(
            "cello", 3, "heuristic", alpha=1.0, beta=100.0, scale=SCALE
        )
        load_only = common.run_cell(
            "cello", 3, "heuristic", alpha=0.0, beta=100.0, scale=SCALE
        )
        assert (
            energy_only.report.total_energy <= load_only.report.total_energy
        )


class TestSchedulerFactory:
    def test_labels_cover_keys(self):
        for key in ("static", "random", "heuristic", "wsc", "mwis"):
            assert key in common.SCHEDULER_LABELS
            scheduler = common.make_scheduler_for_key(key)
            assert scheduler.name
