"""Property tests for the persistent run cache.

Three families of guarantees:

* **keys** — distinct run specs (any field, including seed and profile)
  never share a cache key; equal specs always do;
* **integrity** — truncated or tampered entries are detected, deleted
  and reported as misses, never returned;
* **round-trip** — whatever was stored is what is loaded, bit-exactly.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.harness import (
    RunCache,
    baseline_spec,
    cache_salt,
    cell_spec,
)
from repro.experiments.harness.spec import SCHEDULER_KEYS, TRACES
from repro.power.profile import PROFILES

# abs() folds -0.0 into 0.0: specs compare equal across the two zeros
# (IEEE ==), so their cache keys must match too.
_unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(abs)
_weights = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False).map(abs)
_scales = st.floats(min_value=0.01, max_value=4.0, allow_nan=False)
_seeds = st.integers(min_value=0, max_value=2**31)
_profiles = st.sampled_from(sorted(PROFILES))

_cell_specs = st.builds(
    cell_spec,
    st.sampled_from(TRACES),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(SCHEDULER_KEYS),
    zipf_exponent=_unit,
    alpha=_unit,
    beta=_weights,
    scale=_scales,
    seed=_seeds,
    profile=_profiles,
)
_baseline_specs = st.builds(
    baseline_spec,
    st.sampled_from(TRACES),
    scale=_scales,
    seed=_seeds,
    profile=_profiles,
)
_specs = st.one_of(_cell_specs, _baseline_specs)

# key_for never touches the disk, so one keyless-root instance suffices.
_KEYER = RunCache(root="unused-cache-root", enabled=False)

_PAYLOAD = {"report": {"version": 1, "total_energy_j": 123.5}, "wall_s": 0.25}


class TestCacheKeys:
    @given(a=_specs, b=_specs)
    @settings(max_examples=300, deadline=None)
    def test_key_equality_matches_spec_equality(self, a, b):
        if a == b:
            assert _KEYER.key_for(a) == _KEYER.key_for(b)
        else:
            assert _KEYER.key_for(a) != _KEYER.key_for(b)

    @given(spec=_specs)
    @settings(max_examples=100, deadline=None)
    def test_key_is_stable_across_instances(self, spec):
        other = RunCache(root="another-root", enabled=True)
        assert _KEYER.key_for(spec) == other.key_for(spec)

    def test_every_field_feeds_the_key(self):
        base = cell_spec("cello", 3, "heuristic", scale=0.1, seed=1)
        variants = [
            cell_spec("financial", 3, "heuristic", scale=0.1, seed=1),
            cell_spec("cello", 4, "heuristic", scale=0.1, seed=1),
            cell_spec("cello", 3, "wsc", scale=0.1, seed=1),
            cell_spec(
                "cello", 3, "heuristic", zipf_exponent=0.5, scale=0.1, seed=1
            ),
            cell_spec("cello", 3, "heuristic", alpha=0.3, scale=0.1, seed=1),
            cell_spec("cello", 3, "heuristic", beta=10.0, scale=0.1, seed=1),
            cell_spec("cello", 3, "heuristic", scale=0.2, seed=1),
            cell_spec("cello", 3, "heuristic", scale=0.1, seed=2),
            cell_spec(
                "cello", 3, "heuristic", scale=0.1, seed=1,
                profile="paper-unit-model",
            ),
            baseline_spec("cello", scale=0.1, seed=1),
        ]
        base_key = _KEYER.key_for(base)
        keys = [_KEYER.key_for(variant) for variant in variants]
        assert base_key not in keys
        assert len(set(keys)) == len(keys)

    def test_salt_names_code_versions(self):
        # A release or schema bump must change every key.
        assert "report-" in cache_salt()
        assert "cache-" in cache_salt()


class TestCacheIntegrity:
    def _store(self, tmp_path):
        cache = RunCache(root=tmp_path, enabled=True)
        spec = cell_spec("cello", 3, "static", scale=0.05, seed=1)
        cache.store_payload(spec, _PAYLOAD)
        return cache, spec, cache.entry_path(spec)

    @given(fraction=st.floats(min_value=0.0, max_value=0.95))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncated_entry_never_returned(self, tmp_path, fraction):
        cache, spec, path = self._store(tmp_path)
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: int(len(raw) * fraction)], encoding="utf-8")
        assert cache.load_payload(spec) is None
        assert not path.exists()  # corrupt entries are dropped

    def test_truncation_counts_as_corrupt_miss(self, tmp_path):
        cache, spec, path = self._store(tmp_path)
        path.write_text("{\"format\":", encoding="utf-8")
        assert cache.load_payload(spec) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_tampered_payload_detected_by_digest(self, tmp_path):
        cache, spec, path = self._store(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"]["report"]["total_energy_j"] = 1.0
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load_payload(spec) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_recompute_after_corruption_stores_cleanly(self, tmp_path):
        cache, spec, path = self._store(tmp_path)
        path.write_text("not json", encoding="utf-8")
        assert cache.load_payload(spec) is None
        cache.store_payload(spec, _PAYLOAD)
        assert cache.load_payload(spec) == _PAYLOAD

    def test_wrong_key_in_entry_rejected(self, tmp_path):
        cache, spec, path = self._store(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load_payload(spec) is None


class TestCacheRoundTrip:
    @given(
        energy=st.floats(allow_nan=False, allow_infinity=False),
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=8,
        ),
    )
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_store_then_load_is_identity(self, tmp_path, energy, times):
        cache = RunCache(root=tmp_path, enabled=True)
        spec = cell_spec("cello", 2, "random", scale=0.05, seed=3)
        payload = {
            "report": {"total_energy_j": energy, "response_times_s": times},
            "wall_s": 0.0,
        }
        cache.store_payload(spec, payload)
        assert cache.load_payload(spec) == payload

    def test_hit_and_miss_stats(self, tmp_path):
        cache = RunCache(root=tmp_path, enabled=True)
        spec = cell_spec("cello", 2, "random", scale=0.05, seed=3)
        assert cache.load_payload(spec) is None
        cache.store_payload(spec, _PAYLOAD)
        assert cache.load_payload(spec) == _PAYLOAD
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = RunCache(root=tmp_path, enabled=False)
        spec = cell_spec("cello", 2, "random", scale=0.05, seed=3)
        cache.store_payload(spec, _PAYLOAD)
        assert cache.load_payload(spec) is None
        assert list(tmp_path.iterdir()) == []
