"""Tests for the position-aware (stateful) service model."""

import random

import pytest

from repro.disk.service import AnalyticServiceModel, PositionAwareServiceModel
from repro.types import Request


def req(data_id, rid=0):
    return Request(time=0.0, request_id=rid, data_id=data_id)


class TestLayout:
    def test_cylinder_mapping_deterministic(self):
        model_a = PositionAwareServiceModel()
        model_b = PositionAwareServiceModel()
        for data_id in range(50):
            assert model_a.cylinder_of_data(data_id) == model_b.cylinder_of_data(
                data_id
            )

    def test_cylinders_in_range(self):
        model = PositionAwareServiceModel()
        for data_id in range(500):
            assert 0 <= model.cylinder_of_data(data_id) < model.geometry.cylinders

    def test_mapping_spreads_over_the_platter(self):
        model = PositionAwareServiceModel()
        cylinders = {model.cylinder_of_data(d) for d in range(1000)}
        span = max(cylinders) - min(cylinders)
        assert span > model.geometry.cylinders // 2


class TestStatefulSeeks:
    def test_rereading_same_data_has_zero_seek(self):
        model = PositionAwareServiceModel()
        rng = random.Random(0)
        model.service_time(req(7), rng)
        # Second access: same cylinder, so only rotation+transfer+overhead.
        geometry = model.geometry
        duration = model.service_time(req(7), rng)
        ceiling = (
            geometry.rotation_time
            + geometry.transfer_time(req(7).size_bytes)
            + geometry.controller_overhead
        )
        assert duration <= ceiling + 1e-12

    def test_local_workload_faster_than_scattered(self):
        rng = random.Random(1)
        geometry = PositionAwareServiceModel().geometry
        probe = PositionAwareServiceModel()
        # Find data ids that map to nearby cylinders.
        by_cylinder = sorted(range(2000), key=probe.cylinder_of_data)
        local_ids = by_cylinder[:50]
        scattered_ids = by_cylinder[::40][:50]

        def total(model, ids, seed):
            rng = random.Random(seed)
            return sum(
                model.service_time(req(d, i), rng) for i, d in enumerate(ids)
            )

        local = total(PositionAwareServiceModel(), local_ids, 3)
        scattered = total(PositionAwareServiceModel(), scattered_ids, 3)
        assert local < scattered

    def test_factory_yields_independent_instances(self):
        factory = PositionAwareServiceModel.factory()
        a, b = factory(), factory()
        rng = random.Random(0)
        a.service_time(req(100), rng)
        # b's head has not moved; same first-access cost as a fresh model.
        fresh = PositionAwareServiceModel()
        assert b._head_cylinder == fresh._head_cylinder


class TestSimulationIntegration:
    def test_per_disk_models_via_config_factory(self):
        from repro.core.static_scheduler import StaticScheduler
        from repro.placement.catalog import PlacementCatalog
        from repro.power.profile import PAPER_EVAL
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.types import Request

        catalog = PlacementCatalog({d: [d % 2] for d in range(20)})
        requests = [
            Request(time=t * 0.5, request_id=t, data_id=t % 20)
            for t in range(100)
        ]
        config = SimulationConfig(
            num_disks=2,
            profile=PAPER_EVAL,
            service_model_factory=PositionAwareServiceModel.factory(),
        )
        report = simulate(requests, catalog, StaticScheduler(), config)
        assert report.requests_completed == 100
        assert all(rt >= 0 for rt in report.response_times)
