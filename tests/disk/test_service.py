"""Tests for service-time models."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disk.geometry import CHEETAH_15K5_GEOMETRY
from repro.disk.service import AnalyticServiceModel, ConstantServiceModel
from repro.errors import ConfigurationError
from repro.types import Request


def make_request(size=512 * 1024):
    return Request(time=0.0, request_id=0, data_id=0, size_bytes=size)


class TestConstantModel:
    def test_returns_fixed_value(self):
        model = ConstantServiceModel(0.01)
        assert model.service_time(make_request(), random.Random(0)) == 0.01

    def test_zero_default(self):
        assert ConstantServiceModel().service_time(
            make_request(), random.Random(0)
        ) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantServiceModel(-0.5)


class TestAnalyticModel:
    def test_deterministic_given_seed(self):
        model = AnalyticServiceModel()
        a = model.service_time(make_request(), random.Random(42))
        b = model.service_time(make_request(), random.Random(42))
        assert a == b

    def test_millisecond_scale(self):
        """The paper's premise: I/O time is ms-scale vs seconds-scale power ops."""
        model = AnalyticServiceModel()
        rng = random.Random(7)
        times = [model.service_time(make_request(), rng) for _ in range(200)]
        assert all(0.001 < t < 0.05 for t in times)

    def test_mean_close_to_expectation(self):
        model = AnalyticServiceModel()
        rng = random.Random(3)
        n = 4000
        mean = sum(model.service_time(make_request(), rng) for _ in range(n)) / n
        assert mean == pytest.approx(
            model.expected_service_time(512 * 1024), rel=0.05
        )

    @given(size=st.integers(min_value=1, max_value=10**8))
    def test_always_positive(self, size):
        model = AnalyticServiceModel()
        assert model.service_time(make_request(size), random.Random(size)) > 0

    def test_bigger_payload_never_faster_in_expectation(self):
        model = AnalyticServiceModel()
        assert model.expected_service_time(10**6) < model.expected_service_time(10**8)

    def test_geometry_exposed(self):
        assert AnalyticServiceModel().geometry is CHEETAH_15K5_GEOMETRY
