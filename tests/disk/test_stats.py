"""Tests for the per-disk statistics ledger."""

import pytest

from repro.disk.stats import DiskStats
from repro.errors import SimulationError
from repro.power.profile import BARRACUDA, PAPER_UNIT
from repro.power.states import DiskPowerState


def test_accumulates_time_per_state():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.STANDBY, 0.0)
    stats.transition(DiskPowerState.SPIN_UP, 10.0)
    stats.transition(DiskPowerState.IDLE, 16.0)
    stats.finalize(20.0)
    assert stats.state_time[DiskPowerState.STANDBY] == pytest.approx(10.0)
    assert stats.state_time[DiskPowerState.SPIN_UP] == pytest.approx(6.0)
    assert stats.state_time[DiskPowerState.IDLE] == pytest.approx(4.0)


def test_total_time_equals_span():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.IDLE, 5.0)
    stats.transition(DiskPowerState.ACTIVE, 7.0)
    stats.transition(DiskPowerState.IDLE, 9.0)
    stats.finalize(30.0)
    assert stats.total_time == pytest.approx(25.0)


def test_spin_counts_increment_on_transition_entry():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.STANDBY, 0.0)
    stats.transition(DiskPowerState.SPIN_UP, 1.0)
    stats.transition(DiskPowerState.IDLE, 7.0)
    stats.transition(DiskPowerState.SPIN_DOWN, 50.0)
    stats.transition(DiskPowerState.STANDBY, 52.0)
    stats.finalize(60.0)
    assert stats.spin_ups == 1
    assert stats.spin_downs == 1
    assert stats.spin_operations == 2


def test_energy_integrates_power_over_time():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.IDLE, 0.0)
    stats.finalize(100.0)
    assert stats.energy == pytest.approx(100.0 * BARRACUDA.idle_power)


def test_energy_counts_transition_power():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.SPIN_UP, 0.0)
    stats.transition(DiskPowerState.IDLE, BARRACUDA.spin_up_time)
    stats.finalize(BARRACUDA.spin_up_time)
    assert stats.energy == pytest.approx(BARRACUDA.spin_up_energy)


def test_time_going_backwards_rejected():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.IDLE, 10.0)
    with pytest.raises(SimulationError):
        stats.transition(DiskPowerState.ACTIVE, 5.0)


def test_finalize_is_idempotent():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.IDLE, 0.0)
    stats.finalize(10.0)
    stats.finalize(10.0)
    assert stats.total_time == pytest.approx(10.0)


def test_transition_after_finalize_rejected():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.IDLE, 0.0)
    stats.finalize(10.0)
    with pytest.raises(SimulationError):
        stats.transition(DiskPowerState.ACTIVE, 11.0)


def test_state_fractions_sum_to_one():
    stats = DiskStats(BARRACUDA)
    stats.begin(DiskPowerState.STANDBY, 0.0)
    stats.transition(DiskPowerState.SPIN_UP, 40.0)
    stats.transition(DiskPowerState.IDLE, 46.0)
    stats.finalize(100.0)
    assert sum(stats.state_fractions().values()) == pytest.approx(1.0)
    assert stats.standby_fraction() == pytest.approx(0.4)


def test_state_fractions_zero_when_no_time():
    stats = DiskStats(BARRACUDA)
    assert all(v == 0.0 for v in stats.state_fractions().values())


def test_lump_energy_added():
    stats = DiskStats(PAPER_UNIT)
    stats.begin(DiskPowerState.IDLE, 0.0)
    stats.finalize(10.0)
    before = stats.energy
    stats.add_transition_energy(3.0)
    assert stats.energy == pytest.approx(before + 3.0)


def test_negative_lump_rejected():
    stats = DiskStats(PAPER_UNIT)
    with pytest.raises(SimulationError):
        stats.add_transition_energy(-1.0)


def test_mark_closed_seals_without_crediting():
    stats = DiskStats(PAPER_UNIT)
    stats.state_time[DiskPowerState.IDLE] += 7.0
    stats.mark_closed()
    assert stats.total_time == pytest.approx(7.0)
    with pytest.raises(SimulationError):
        stats.transition(DiskPowerState.ACTIVE, 1.0)
