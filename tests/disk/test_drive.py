"""Tests for the SimulatedDisk power/queue state machine.

Scenario style: drive the engine manually and assert states, times,
energies and response behaviour at each step. The profile used in most
tests is BARRACUDA (Tup=6, Tdown=2, TB~17.48) so transitions are visible.
"""

import random

import pytest

from repro.disk.drive import SimulatedDisk
from repro.disk.service import ConstantServiceModel
from repro.errors import SimulationError
from repro.power.policy import AlwaysOnPolicy, FixedThresholdPolicy, TwoCompetitivePolicy
from repro.power.profile import BARRACUDA, PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.sim.engine import SimulationEngine
from repro.types import Request

TB = BARRACUDA.breakeven_time
TUP = BARRACUDA.spin_up_time
TDOWN = BARRACUDA.spin_down_time


def make_disk(engine, profile=BARRACUDA, policy=None, service=0.0, **kwargs):
    completions = []
    disk = SimulatedDisk(
        disk_id=0,
        engine=engine,
        profile=profile,
        policy=policy or TwoCompetitivePolicy(),
        service_model=ConstantServiceModel(service),
        rng=random.Random(0),
        on_complete=lambda req, disk_id, now: completions.append((req, now)),
        **kwargs,
    )
    return disk, completions


def req(time, rid=0):
    return Request(time=time, request_id=rid, data_id=0)


class TestSpinUpPath:
    def test_standby_disk_spins_up_on_request(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=TUP / 2)
        assert disk.state is DiskPowerState.SPIN_UP

    def test_request_waits_full_spin_up(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=TUP + 0.001)
        assert completions
        _request, when = completions[0]
        assert when == pytest.approx(TUP)

    def test_requests_queued_during_spin_up_all_complete(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine, service=0.01)
        for i in range(5):
            engine.schedule(i * 0.5, lambda i=i: disk.submit(req(i * 0.5, i)))
        engine.run(until=TUP + 1.0)
        assert len(completions) == 5

    def test_initially_idle_disk_serves_immediately(self):
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(1.0, lambda: disk.submit(req(1.0)))
        engine.run(until=1.5)
        assert completions[0][1] == pytest.approx(1.0)

    def test_invalid_initial_state_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            SimulatedDisk(
                disk_id=0,
                engine=engine,
                profile=BARRACUDA,
                initial_state=DiskPowerState.ACTIVE,
            )


class TestIdleTimeout:
    def test_disk_spins_down_after_breakeven(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=TUP + TB + TDOWN + 0.01)
        assert disk.state is DiskPowerState.STANDBY
        assert disk.stats.spin_downs == 1

    def test_arrival_before_timeout_cancels_spin_down(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        second_time = TUP + TB / 2
        engine.schedule(second_time, lambda: disk.submit(req(second_time, 1)))
        engine.run(until=second_time + 0.01)
        assert disk.state is DiskPowerState.IDLE
        assert disk.stats.spin_downs == 0
        assert len(completions) == 2

    def test_always_on_policy_never_sleeps(self):
        engine = SimulationEngine()
        disk, _ = make_disk(
            engine,
            policy=AlwaysOnPolicy(),
            initial_state=DiskPowerState.IDLE,
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=10_000.0)
        assert disk.state is DiskPowerState.IDLE
        assert disk.stats.spin_downs == 0

    def test_zero_threshold_spins_down_immediately(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine, policy=FixedThresholdPolicy(0.0))
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=TUP + TDOWN + 0.01)
        assert disk.state is DiskPowerState.STANDBY


class TestSpinDownRace:
    def test_arrival_during_spin_down_waits_for_down_then_up(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        # Hit the disk in the middle of its spin-down window.
        arrival = TUP + TB + TDOWN / 2
        engine.schedule(arrival, lambda: disk.submit(req(arrival, 1)))
        engine.run(until=arrival + TDOWN + TUP + 1.0)
        assert len(completions) == 2
        # Second completion: spin-down finishes at TUP+TB+TDOWN, then full
        # spin-up.
        expected = TUP + TB + TDOWN + TUP
        assert completions[1][1] == pytest.approx(expected)

    def test_arrival_at_spin_down_completion_instant_pays_full_spin_up(self):
        # Boundary of the non-abortable transition: the arrival lands at
        # exactly the instant the spin-down completes. Whichever event
        # fires first at that timestamp, the request must wait the full
        # spin-up and the ledger must show a second spin-up cycle.
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        arrival = TUP + TB + TDOWN  # the spin-down completion instant
        engine.schedule(arrival, lambda: disk.submit(req(arrival, 1)))
        engine.run(until=arrival + TUP + 1.0)
        assert len(completions) == 2
        assert completions[1][1] == pytest.approx(arrival + TUP)
        assert disk.stats.spin_ups == 2
        assert disk.stats.spin_downs == 1

    def test_spin_down_completes_before_spin_up_begins(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        arrival = TUP + TB + TDOWN / 2
        engine.schedule(arrival, lambda: disk.submit(req(arrival, 1)))
        engine.run(until=arrival + 0.01)
        assert disk.state is DiskPowerState.SPIN_DOWN
        engine.run(until=TUP + TB + TDOWN + 0.01)
        assert disk.state is DiskPowerState.SPIN_UP


class TestServiceQueue:
    def test_fifo_order(self):
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=1.0, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.schedule(0.1, lambda: disk.submit(req(0.1, 1)))
        engine.schedule(0.2, lambda: disk.submit(req(0.2, 2)))
        engine.run(until=10.0)
        assert [r.request_id for r, _ in completions] == [0, 1, 2]

    def test_queue_length_counts_in_service(self):
        engine = SimulationEngine()
        disk, _ = make_disk(
            engine, service=1.0, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.schedule(0.1, lambda: disk.submit(req(0.1, 1)))
        engine.run(until=0.5)
        assert disk.queue_length == 2  # one in service + one queued
        engine.run(until=1.5)
        assert disk.queue_length == 1
        engine.run(until=10.0)
        assert disk.queue_length == 0

    def test_service_times_serialise(self):
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=2.0, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 1)))
        engine.run(until=10.0)
        assert completions[0][1] == pytest.approx(2.0)
        assert completions[1][1] == pytest.approx(4.0)

    def test_zero_service_long_queue_no_recursion_error(self):
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=0.0, initial_state=DiskPowerState.IDLE
        )

        def flood():
            for i in range(5000):
                disk.submit(req(0.0, i))

        engine.schedule(0.0, flood)
        engine.run(until=1.0)
        assert len(completions) == 5000

    def test_active_state_while_servicing(self):
        engine = SimulationEngine()
        disk, _ = make_disk(
            engine, service=1.0, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=0.5)
        assert disk.state is DiskPowerState.ACTIVE


class TestBookkeeping:
    def test_last_request_time_tracks_submission(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine, initial_state=DiskPowerState.IDLE)
        assert disk.last_request_time is None
        engine.schedule(3.0, lambda: disk.submit(req(3.0)))
        engine.run(until=4.0)
        assert disk.last_request_time == 3.0

    def test_energy_of_full_cycle_unit_model(self):
        # Unit model: 1 W idle, free transitions, TB override 5.
        engine = SimulationEngine()
        disk, _ = make_disk(engine, profile=PAPER_UNIT)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=100.0)
        disk.finalize()
        # idle exactly TB=5 seconds at 1 W, everything else free/standby-0.
        assert disk.stats.energy == pytest.approx(5.0)

    def test_state_times_sum_to_finalized_span(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.schedule(30.0, lambda: disk.submit(req(30.0, 1)))
        engine.run(until=200.0)
        disk.finalize()
        assert disk.stats.total_time == pytest.approx(200.0)

    def test_requests_serviced_counted(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine, initial_state=DiskPowerState.IDLE)
        for i in range(4):
            engine.schedule(float(i), lambda i=i: disk.submit(req(float(i), i)))
        engine.run(until=10.0)
        assert disk.stats.requests_serviced == 4

    def test_spin_counts_over_two_cycles(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        late = TUP + TB + TDOWN + 50.0
        engine.schedule(late, lambda: disk.submit(req(late, 1)))
        engine.run(until=late + TUP + TB + TDOWN + 1.0)
        assert disk.stats.spin_ups == 2
        assert disk.stats.spin_downs == 2


class TestZeroTransitionProfile:
    def test_unit_model_serves_instantly_from_standby(self):
        engine = SimulationEngine()
        disk, completions = make_disk(engine, profile=PAPER_UNIT)
        engine.schedule(1.0, lambda: disk.submit(req(1.0)))
        engine.run(until=1.5)
        assert completions[0][1] == pytest.approx(1.0)

    def test_unit_model_cycles_through_states(self):
        engine = SimulationEngine()
        disk, _ = make_disk(engine, profile=PAPER_UNIT)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=10.0)
        assert disk.state is DiskPowerState.STANDBY
        assert disk.stats.spin_ups == 1
        assert disk.stats.spin_downs == 1
