"""Tests for the mechanical disk geometry model."""

import pytest

from repro.disk.geometry import (
    BARRACUDA_GEOMETRY,
    CHEETAH_15K5_GEOMETRY,
    DiskGeometry,
)
from repro.errors import ConfigurationError


class TestRotation:
    def test_rotation_time_15k(self):
        assert CHEETAH_15K5_GEOMETRY.rotation_time == pytest.approx(0.004)

    def test_rotation_time_7200(self):
        assert BARRACUDA_GEOMETRY.rotation_time == pytest.approx(60.0 / 7200.0)

    def test_average_rotational_latency_is_half_revolution(self):
        geometry = CHEETAH_15K5_GEOMETRY
        assert geometry.average_rotational_latency == pytest.approx(
            geometry.rotation_time / 2
        )


class TestSeekCurve:
    def test_zero_distance_is_free(self):
        assert CHEETAH_15K5_GEOMETRY.seek_time(0) == 0.0

    def test_single_cylinder_is_track_to_track(self):
        geometry = CHEETAH_15K5_GEOMETRY
        assert geometry.seek_time(1) == pytest.approx(
            geometry.track_to_track_seek, rel=0.1
        )

    def test_full_stroke_is_max(self):
        geometry = CHEETAH_15K5_GEOMETRY
        assert geometry.seek_time(geometry.cylinders) == geometry.full_stroke_seek

    def test_monotone_in_distance(self):
        geometry = CHEETAH_15K5_GEOMETRY
        samples = [geometry.seek_time(d) for d in (1, 10, 100, 1000, 10000)]
        assert samples == sorted(samples)

    def test_concave_shape(self):
        # sqrt ramp: the first half of the distance costs more than half
        # the remaining seek budget.
        geometry = CHEETAH_15K5_GEOMETRY
        half = geometry.seek_time(geometry.cylinders // 2)
        full = geometry.seek_time(geometry.cylinders - 1)
        assert half > full / 2

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            CHEETAH_15K5_GEOMETRY.seek_time(-1)


class TestMapping:
    def test_cylinder_of_start(self):
        assert CHEETAH_15K5_GEOMETRY.cylinder_of(0) == 0

    def test_cylinder_of_end_clamped(self):
        geometry = CHEETAH_15K5_GEOMETRY
        assert geometry.cylinder_of(geometry.capacity_bytes) == geometry.cylinders - 1

    def test_negative_lba_rejected(self):
        with pytest.raises(ConfigurationError):
            CHEETAH_15K5_GEOMETRY.cylinder_of(-1)


class TestTransfer:
    def test_transfer_scales_linearly(self):
        geometry = CHEETAH_15K5_GEOMETRY
        one = geometry.transfer_time(10**6)
        two = geometry.transfer_time(2 * 10**6)
        assert two == pytest.approx(2 * one)

    def test_512k_block_within_milliseconds(self):
        # The paper's 512 KiB blocks should be a ~4 ms transfer at 125 MB/s.
        t = CHEETAH_15K5_GEOMETRY.transfer_time(512 * 1024)
        assert 0.001 < t < 0.01


class TestValidation:
    def test_inverted_seek_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(track_to_track_seek=0.01, full_stroke_seek=0.001)

    def test_nonpositive_rpm_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(rpm=0)
