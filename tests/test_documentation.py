"""Documentation quality gates.

Every public module, class, function and method in the library must carry
a docstring, and every ``__all__`` export must resolve — enforced here so
the guarantee survives refactors.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

TOLERATED = {
    # Protocol members are documented at the protocol level.
    "repro.core.scheduler.SystemView",
}


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_repro_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        qualified = f"{module.__name__}.{name}"
        if qualified in TOLERATED:
            continue
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(qualified)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if _documented(member, method_name, method):
                    continue
                undocumented.append(f"{qualified}.{method_name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def _documented(owner, method_name, method):
    """A method counts as documented if it or any base's version has docs
    (overrides inherit the contract description)."""
    if method.__doc__ and method.__doc__.strip():
        return True
    for base in owner.__mro__[1:]:
        inherited = getattr(base, method_name, None)
        if inherited is not None and inherited.__doc__ and inherited.__doc__.strip():
            return True
    return False


@pytest.mark.parametrize(
    "module",
    [m for m in MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


def test_version_matches_pyproject():
    import pathlib

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    text = pyproject.read_text()
    assert f'version = "{repro.__version__}"' in text
