"""Tests for MetricsCollector and SimulationReport."""

import pytest

from repro.disk.stats import DiskStats
from repro.errors import SimulationError
from repro.power.profile import PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.report import MetricsCollector, SimulationReport, percentile
from repro.types import Request


def req(time, rid):
    return Request(time=time, request_id=rid, data_id=0)


class TestCollector:
    def test_response_time_is_completion_minus_arrival(self):
        collector = MetricsCollector()
        collector.on_complete(req(1.0, 0), 3, 4.5)
        assert collector.response_times == [3.5]
        assert collector.disk_of(0) == 3

    def test_negative_response_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.on_complete(req(5.0, 0), 0, 4.0)

    def test_completed_count(self):
        collector = MetricsCollector()
        for i in range(4):
            collector.on_complete(req(0.0, i), 0, 1.0)
        assert collector.completed == 4


class TestPercentile:
    def test_nearest_rank(self):
        values = sorted([10.0, 20.0, 30.0, 40.0, 50.0])
        assert percentile(values, 0.5) == 30.0
        assert percentile(values, 0.9) == 50.0
        assert percentile(values, 0.0) == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.1)


def make_report(response_times=(0.1, 0.2, 5.0), num_disks=2):
    disk_stats = {}
    for disk_id in range(num_disks):
        stats = DiskStats(PAPER_UNIT)
        stats.begin(DiskPowerState.IDLE, 0.0)
        stats.transition(DiskPowerState.SPIN_DOWN, 10.0 + disk_id * 10.0)
        stats.transition(DiskPowerState.STANDBY, 10.0 + disk_id * 10.0)
        stats.finalize(100.0)
        disk_stats[disk_id] = stats
    return SimulationReport(
        scheduler_name="test",
        duration=100.0,
        total_energy=sum(s.energy for s in disk_stats.values()),
        disk_stats=disk_stats,
        response_times=list(response_times),
        requests_offered=len(response_times),
        requests_completed=len(response_times),
    )


class TestReport:
    def test_mean_response_time(self):
        report = make_report()
        assert report.mean_response_time == pytest.approx((0.1 + 0.2 + 5.0) / 3)

    def test_mean_of_empty_is_zero(self):
        assert make_report(response_times=()).mean_response_time == 0.0

    def test_spin_counts_aggregate(self):
        report = make_report()
        assert report.spin_downs == 2
        assert report.spin_operations == report.spin_ups + report.spin_downs

    def test_normalized_energy(self):
        report = make_report()
        assert report.normalized_energy(report.total_energy * 2) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.normalized_energy(0.0)

    def test_state_time_totals(self):
        report = make_report()
        totals = report.state_time_totals()
        assert totals[DiskPowerState.IDLE] == pytest.approx(30.0)
        assert sum(totals.values()) == pytest.approx(200.0)

    def test_per_disk_fractions_sorted_by_standby(self):
        report = make_report()
        fractions = report.per_disk_fractions()
        standby = [f[DiskPowerState.STANDBY] for f in fractions]
        assert standby == sorted(standby, reverse=True)

    def test_inverse_cdf(self):
        report = make_report()
        points = dict(report.inverse_cdf([0.15, 10.0]))
        assert points[0.15] == pytest.approx(2 / 3)
        assert points[10.0] == 0.0

    def test_summary_mentions_scheduler(self):
        assert "test" in make_report().summary()
