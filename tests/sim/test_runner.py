"""Tests for the high-level run entry points."""

import pytest

from repro.core.mwis import MWISOfflineScheduler
from repro.core.static_scheduler import StaticScheduler
from repro.disk.service import ConstantServiceModel
from repro.errors import SchedulingError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.sim.config import SimulationConfig
from repro.sim.runner import always_on_baseline, run_offline, simulate
from repro.types import Request


@pytest.fixture
def setup():
    catalog = PlacementCatalog({0: [0], 1: [1], 2: [0, 1]})
    requests = [
        Request(time=0.0, request_id=0, data_id=0),
        Request(time=1.0, request_id=1, data_id=1),
        Request(time=20.0, request_id=2, data_id=2),
    ]
    config = SimulationConfig(
        num_disks=2,
        profile=PAPER_UNIT,
        service_model=ConstantServiceModel(0.0),
        drain_slack=1.0,
    )
    return requests, catalog, config


def test_simulate_online(setup):
    requests, catalog, config = setup
    report = simulate(requests, catalog, StaticScheduler(), config)
    assert report.requests_completed == 3
    assert report.scheduler_name == "Static"


def test_simulate_dispatches_offline(setup):
    requests, catalog, config = setup
    report = simulate(requests, catalog, MWISOfflineScheduler(), config)
    assert report.requests_completed == 3
    assert "MWIS" in report.scheduler_name


def test_run_offline_returns_evaluation(setup):
    requests, catalog, config = setup
    evaluation = run_offline(requests, catalog, MWISOfflineScheduler(), config)
    assert evaluation.objective_energy > 0
    assert 0 < evaluation.normalized_energy <= 1.0


def test_run_offline_rejects_online_scheduler(setup):
    requests, catalog, config = setup
    with pytest.raises(SchedulingError):
        run_offline(requests, catalog, StaticScheduler(), config)


def test_always_on_never_spins_down(setup):
    requests, catalog, config = setup
    report = always_on_baseline(requests, catalog, config)
    assert report.spin_downs == 0
    assert report.scheduler_name == "always-on"


def test_always_on_energy_dominates_2cpm(setup):
    requests, catalog, config = setup
    managed = simulate(requests, catalog, StaticScheduler(), config)
    baseline = always_on_baseline(requests, catalog, config)
    assert managed.total_energy <= baseline.total_energy + 1e-9


def test_always_on_energy_is_disks_times_horizon(setup):
    requests, catalog, config = setup
    baseline = always_on_baseline(requests, catalog, config)
    # Unit model: idle power 1 on both disks over the whole run.
    assert baseline.total_energy == pytest.approx(2 * baseline.duration)


def test_offline_normalization_consistent_with_baseline(setup):
    """The offline evaluator's always-on model matches the simulated one
    up to the drain slack in the horizon."""
    requests, catalog, config = setup
    evaluation = run_offline(requests, catalog, MWISOfflineScheduler(), config)
    baseline = always_on_baseline(requests, catalog, config)
    # Horizons differ by the drain slack only.
    assert baseline.duration - evaluation.horizon == pytest.approx(
        config.drain_slack
    )
