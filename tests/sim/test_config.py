"""Tests for SimulationConfig."""

import pytest

from repro.errors import ConfigurationError
from repro.power.profile import BARRACUDA
from repro.sim.config import SimulationConfig


def test_defaults():
    config = SimulationConfig(num_disks=10)
    assert config.profile is BARRACUDA
    assert config.policy.name == "2CPM"
    assert config.horizon is None


def test_derived_horizon_formula():
    config = SimulationConfig(num_disks=2, drain_slack=5.0)
    expected = (
        100.0
        + BARRACUDA.breakeven_time
        + BARRACUDA.transition_time
        + 5.0
    )
    assert config.derived_horizon(100.0) == pytest.approx(expected)


def test_explicit_horizon_wins():
    config = SimulationConfig(num_disks=2, horizon=42.0)
    assert config.derived_horizon(1000.0) == 42.0


def test_validation():
    with pytest.raises(ConfigurationError):
        SimulationConfig(num_disks=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(num_disks=1, horizon=-1.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(num_disks=1, drain_slack=-1.0)
