"""Live-system invariants of the columnar fleet mirror.

The parity tests (`tests/core/test_fleet_parity.py`) prove the kernels
agree on hand-built column states; these tests prove the *incremental
maintenance* — the disks' submit/complete/transition hooks writing
their own slots during a real run — keeps the columns in lockstep with
the object-model truth.
"""

from repro.core.heuristic import HeuristicScheduler
from repro.disk.service import ConstantServiceModel
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.power.states import DiskPowerState
from repro.sim.config import SimulationConfig
from repro.sim.storage import StorageSystem
from repro.types import Request


def make_system(num_disks=4, **kwargs):
    catalog = PlacementCatalog(
        {data_id: list(range(num_disks)) for data_id in range(8)}
    )
    config = SimulationConfig(
        num_disks=num_disks,
        profile=PAPER_UNIT,
        service_model=ConstantServiceModel(0.05),
        drain_slack=1.0,
        kernel="numpy",
        **kwargs,
    )
    return StorageSystem(catalog, HeuristicScheduler(), config)


def make_requests(times, data_ids):
    return [
        Request(time=t, request_id=i, data_id=d)
        for i, (t, d) in enumerate(zip(times, data_ids))
    ]


def assert_columns_mirror_disks(system, now):
    """Each disk's column slots encode its current object-model state."""
    fleet = system.fleet
    assert fleet is not None
    for disk_id in system.disk_ids:
        disk = system.disk(disk_id)
        # Queue column is P(dk): queued + in service.
        assert fleet.queue[disk_id] == float(disk.queue_length), disk_id
        # The memoised Eq. 5 term reads identically through both paths.
        assert fleet.marginal_energy(disk_id, now) == disk.marginal_energy(
            now
        ), disk_id
        if disk.last_request_time is not None:
            assert fleet.tlast[disk_id] == disk.last_request_time, disk_id


class TestIncrementalMaintenance:
    def test_columns_track_a_full_run(self):
        """After a drained run every column matches the final disk state."""
        system = make_system()
        times = [0.0, 0.01, 0.02, 5.0, 5.01, 40.0, 41.0, 90.0]
        report = system.run(make_requests(times, data_ids=list(range(8))))
        assert report.requests_completed == 8
        assert_columns_mirror_disks(system, system.now)
        # Everything drained: no queued work left anywhere.
        assert list(system.fleet.queue) == [0.0] * 4

    def test_columns_track_mid_run_states(self):
        """Spot-check the mirror at instants where disks are mid-flight."""
        system = make_system()
        engine = system._engine
        checks = []

        def probe():
            assert_columns_mirror_disks(system, engine.now)
            checks.append(engine.now)

        # Probes land between arrivals: during service, during idle
        # windows, and after the 2CPM timeout has spun disks down.
        for at in (0.02, 0.5, 3.0, 12.0, 30.0):
            engine.schedule(at, probe)
        times = [0.0, 0.01, 0.02, 2.0, 2.5, 25.0, 28.0, 29.0]
        system.run(make_requests(times, data_ids=list(range(8))))
        assert len(checks) == 5

    def test_standby_start_encodes_wakeup_constant(self):
        """Fresh STANDBY fleet: const column holds Eup+Edown+TB*PI."""
        system = make_system(initial_state=DiskPowerState.STANDBY)
        fleet = system.fleet
        expected = (
            PAPER_UNIT.transition_energy
            + PAPER_UNIT.breakeven_time * PAPER_UNIT.idle_power
        )
        assert list(fleet.const) == [expected] * 4
        assert list(fleet.pi) == [0.0] * 4
        assert_columns_mirror_disks(system, 0.0)
