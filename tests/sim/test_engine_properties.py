"""Property-based tests of the event engine against a reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine


@st.composite
def schedules(draw):
    """A batch of (time, tag) events plus a set of tags to cancel."""
    count = draw(st.integers(min_value=0, max_value=30))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=count,
            max_size=count,
        )
    )
    cancel = draw(st.sets(st.integers(min_value=0, max_value=count), max_size=5))
    return times, cancel


@given(data=schedules())
@settings(max_examples=100, deadline=None)
def test_fires_exactly_uncancelled_events_in_stable_time_order(data):
    times, cancel = data
    engine = SimulationEngine()
    fired = []
    handles = []
    for tag, time in enumerate(times):
        handles.append(
            engine.schedule(time, lambda t=tag: fired.append(t))
        )
    for tag in cancel:
        if tag < len(handles):
            handles[tag].cancel()
    engine.run()

    expected = [
        tag
        for tag, _time in sorted(enumerate(times), key=lambda kv: (kv[1], kv[0]))
        if tag not in cancel
    ]
    assert fired == expected


@given(data=schedules())
@settings(max_examples=50, deadline=None)
def test_clock_is_monotone_across_events(data):
    times, _cancel = data
    engine = SimulationEngine()
    observed = []
    for time in times:
        engine.schedule(time, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)


@given(
    times=st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=20),
    cutoff=st.floats(min_value=0.0, max_value=60.0),
)
@settings(max_examples=60, deadline=None)
def test_run_until_is_a_clean_split(times, cutoff):
    engine = SimulationEngine()
    fired = []
    for tag, time in enumerate(times):
        engine.schedule(time, lambda t=tag: fired.append(t))
    engine.run(until=cutoff)
    early = set(fired)
    assert all(times[tag] <= cutoff for tag in early)
    engine.run()
    assert len(fired) == len(times)
