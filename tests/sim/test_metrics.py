"""Tests for the shared metrics primitives (repro.sim.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_engine,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self) -> None:
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self) -> None:
        counter = Counter("requests")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_zero_increment_is_allowed(self) -> None:
        counter = Counter("requests")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_overwrites(self) -> None:
        gauge = Gauge("depth")
        assert gauge.value == 0
        gauge.set(7)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_empty_snapshot_is_all_zero(self) -> None:
        snap = Histogram("latency").snapshot()
        assert snap == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_count_total_mean(self) -> None:
        hist = Histogram("latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0

    def test_percentiles_are_nearest_rank(self) -> None:
        hist = Histogram("latency")
        # Out-of-order inserts exercise the lazy re-sort.
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.percentile(0.50) == 3.0
        assert hist.percentile(1.0) == 5.0
        snap = hist.snapshot()
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["p50"] == 3.0

    def test_observing_after_snapshot_keeps_order(self) -> None:
        hist = Histogram("latency")
        hist.observe(2.0)
        hist.observe(1.0)
        assert hist.percentile(1.0) == 2.0
        hist.observe(0.5)  # arrives below the sorted tail
        assert hist.percentile(0.0) == 0.5


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_name_collision_is_an_error(self) -> None:
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_snapshot_shape_and_sorting(self) -> None:
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(1.0)
        snap = registry.snapshot()
        assert list(snap.keys()) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"].keys()) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 2
        assert snap["gauges"]["depth"] == 4
        histogram = snap["histograms"]["lat"]
        assert isinstance(histogram, dict)
        assert histogram["count"] == 1

    def test_snapshot_is_json_serialisable_and_stable(self) -> None:
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.histogram("h").observe(1.5)
        first = json.dumps(registry.snapshot(), sort_keys=True)
        second = json.dumps(registry.snapshot(), sort_keys=True)
        assert first == second


def test_observe_engine_mirrors_counters() -> None:
    engine = SimulationEngine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run()
    registry = MetricsRegistry()
    observe_engine(registry, engine)
    snap = registry.snapshot()
    assert snap["gauges"]["engine.events_processed"] == 2
    assert snap["gauges"]["engine.pending_events"] == 0
