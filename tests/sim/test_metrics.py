"""Tests for the shared metrics primitives (repro.sim.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    GAUGE_MERGE_MAX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_dumps,
    observe_engine,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self) -> None:
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self) -> None:
        counter = Counter("requests")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_zero_increment_is_allowed(self) -> None:
        counter = Counter("requests")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_overwrites(self) -> None:
        gauge = Gauge("depth")
        assert gauge.value == 0
        gauge.set(7)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_empty_snapshot_is_all_zero(self) -> None:
        snap = Histogram("latency").snapshot()
        assert snap == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_count_total_mean(self) -> None:
        hist = Histogram("latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0

    def test_percentiles_are_nearest_rank(self) -> None:
        hist = Histogram("latency")
        # Out-of-order inserts exercise the lazy re-sort.
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.percentile(0.50) == 3.0
        assert hist.percentile(1.0) == 5.0
        snap = hist.snapshot()
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["p50"] == 3.0

    def test_observing_after_snapshot_keeps_order(self) -> None:
        hist = Histogram("latency")
        hist.observe(2.0)
        hist.observe(1.0)
        assert hist.percentile(1.0) == 2.0
        hist.observe(0.5)  # arrives below the sorted tail
        assert hist.percentile(0.0) == 0.5


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_name_collision_is_an_error(self) -> None:
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_snapshot_shape_and_sorting(self) -> None:
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(1.0)
        snap = registry.snapshot()
        assert list(snap.keys()) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"].keys()) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 2
        assert snap["gauges"]["depth"] == 4
        histogram = snap["histograms"]["lat"]
        assert isinstance(histogram, dict)
        assert histogram["count"] == 1

    def test_snapshot_is_json_serialisable_and_stable(self) -> None:
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.histogram("h").observe(1.5)
        first = json.dumps(registry.snapshot(), sort_keys=True)
        second = json.dumps(registry.snapshot(), sort_keys=True)
        assert first == second


def test_observe_engine_mirrors_counters() -> None:
    engine = SimulationEngine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run()
    registry = MetricsRegistry()
    observe_engine(registry, engine)
    snap = registry.snapshot()
    assert snap["gauges"]["engine.events_processed"] == 2
    assert snap["gauges"]["engine.pending_events"] == 0


class TestHistogramSamples:
    def test_samples_are_ascending_regardless_of_insertion_order(self) -> None:
        histogram = Histogram("lat")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.samples == (1.0, 2.0, 3.0)

    def test_empty_samples(self) -> None:
        assert Histogram("lat").samples == ()


class TestMergeDumps:
    def test_counters_sum_across_dumps(self) -> None:
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("requests.completed").inc(3)
        right.counter("requests.completed").inc(4)
        right.counter("requests.rejected").inc(1)
        merged = merge_dumps([left.dump(), right.dump()])
        snap = merged.snapshot()
        assert snap["counters"] == {
            "requests.completed": 7,
            "requests.rejected": 1,
        }

    def test_gauges_sum_except_clock_like_names(self) -> None:
        assert "time.now_s" in GAUGE_MERGE_MAX
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("energy.joules").set(10.0)
        right.gauge("energy.joules").set(2.5)
        left.gauge("time.now_s").set(40.0)
        right.gauge("time.now_s").set(90.0)
        snap = merge_dumps([left.dump(), right.dump()]).snapshot()
        assert snap["gauges"]["energy.joules"] == 12.5
        assert snap["gauges"]["time.now_s"] == 90.0  # max, not 130

    def test_histograms_merge_exact_quantiles(self) -> None:
        """Merged quantiles equal those of one registry that saw every
        sample — the property a condensed-snapshot merge cannot have."""
        left, right, reference = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        for value in (0.1, 0.9, 0.5):
            left.histogram("response_s").observe(value)
            reference.histogram("response_s").observe(value)
        for value in (0.3, 0.7):
            right.histogram("response_s").observe(value)
            reference.histogram("response_s").observe(value)
        merged = merge_dumps([left.dump(), right.dump()])
        assert (
            merged.snapshot()["histograms"]["response_s"]
            == reference.snapshot()["histograms"]["response_s"]
        )

    def test_merge_is_deterministic_for_a_fixed_dump_order(self) -> None:
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h").observe(2.0)
        right.histogram("h").observe(1.0)
        left.counter("c").inc(1)
        dumps = [left.dump(), right.dump()]
        first = json.dumps(merge_dumps(dumps).snapshot(), sort_keys=True)
        second = json.dumps(merge_dumps(dumps).snapshot(), sort_keys=True)
        assert first == second

    def test_merge_into_an_existing_registry(self) -> None:
        source, target = MetricsRegistry(), MetricsRegistry()
        source.counter("c").inc(2)
        target.counter("c").inc(5)
        merged = merge_dumps([source.dump()], registry=target)
        assert merged is target
        assert target.counter("c").value == 7

    def test_dump_round_trips_through_json(self) -> None:
        """The wire format survives serialisation — what actually crosses
        the shard worker queue boundary is plain JSON-compatible data."""
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        wire = json.loads(json.dumps(registry.dump()))
        merged = merge_dumps([wire])
        assert merged.snapshot() == registry.snapshot()

    def test_merge_validates_dump_value_types(self) -> None:
        with pytest.raises(ConfigurationError):
            merge_dumps([{"counters": {"c": 1.5}}])
        with pytest.raises(ConfigurationError):
            merge_dumps([{"gauges": {"g": "fast"}}])
        with pytest.raises(ConfigurationError):
            merge_dumps([{"histograms": {"h": 3.0}}])

    def test_merge_of_nothing_is_empty(self) -> None:
        assert merge_dumps([]).snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
