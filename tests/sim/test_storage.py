"""Tests for the StorageSystem wiring."""

import pytest

from repro.core.heuristic import HeuristicScheduler
from repro.core.random_scheduler import RandomScheduler
from repro.core.scheduler import OnlineScheduler
from repro.core.static_scheduler import StaticScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.core.mwis import MWISOfflineScheduler
from repro.disk.service import ConstantServiceModel
from repro.errors import SchedulingError, SimulationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.sim.config import SimulationConfig
from repro.sim.storage import StorageSystem
from repro.types import DiskId, Request


def unit_config(num_disks=3, **kwargs):
    defaults = dict(
        num_disks=num_disks,
        profile=PAPER_UNIT,
        service_model=ConstantServiceModel(0.0),
        drain_slack=1.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def make_requests(times, data_ids=None):
    data_ids = data_ids or [0] * len(times)
    return [
        Request(time=t, request_id=i, data_id=d)
        for i, (t, d) in enumerate(zip(times, data_ids))
    ]


class TestOnlineRuns:
    def test_all_requests_complete(self):
        catalog = PlacementCatalog({0: [0, 1]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        report = system.run(make_requests([0.0, 1.0, 2.0]))
        assert report.requests_completed == 3
        assert report.requests_offered == 3

    def test_static_routes_to_original(self):
        catalog = PlacementCatalog({0: [2, 0]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        report = system.run(make_requests([0.0]))
        assert report.disk_stats[2].requests_serviced == 1
        assert report.disk_stats[0].requests_serviced == 0

    def test_single_use(self):
        catalog = PlacementCatalog({0: [0]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        system.run(make_requests([0.0]))
        with pytest.raises(SimulationError, match="single-use"):
            system.run(make_requests([0.0]))

    def test_offline_scheduler_rejected(self):
        catalog = PlacementCatalog({0: [0]})
        with pytest.raises(SchedulingError):
            StorageSystem(catalog, MWISOfflineScheduler(), unit_config())

    def test_bad_scheduler_decision_caught(self):
        class RogueScheduler(OnlineScheduler):
            def choose(self, request, view) -> DiskId:
                return 2  # does not hold the data

        catalog = PlacementCatalog({0: [0, 1]})
        system = StorageSystem(catalog, RogueScheduler(), unit_config())
        # The engine wraps callback failures with event context but keeps
        # the scheduling error as the cause chain.
        with pytest.raises(SimulationError, match="does not hold") as excinfo:
            system.run(make_requests([0.0]))
        assert isinstance(excinfo.value.__cause__, SchedulingError)
        assert "t=0" in str(excinfo.value)

    def test_empty_request_stream(self):
        catalog = PlacementCatalog({0: [0]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        report = system.run([])
        assert report.requests_completed == 0
        assert report.total_energy == 0.0


class TestBatchRuns:
    def test_batch_dispatches_at_interval(self):
        catalog = PlacementCatalog({0: [0], 1: [0]})
        scheduler = WSCBatchScheduler(interval=0.5)
        system = StorageSystem(catalog, scheduler, unit_config())
        report = system.run(make_requests([0.1, 0.2], data_ids=[0, 1]))
        assert report.requests_completed == 2
        # Both dispatched together at the 0.5s tick: response time includes
        # the queueing delay.
        assert min(report.response_times) >= 0.3 - 1e-6

    def test_batch_requests_in_separate_intervals(self):
        catalog = PlacementCatalog({0: [0], 1: [0]})
        scheduler = WSCBatchScheduler(interval=0.5)
        system = StorageSystem(catalog, scheduler, unit_config())
        report = system.run(make_requests([0.1, 0.9], data_ids=[0, 1]))
        assert report.requests_completed == 2
        assert report.response_times[0] == pytest.approx(0.4)
        assert report.response_times[1] == pytest.approx(0.1)

    def test_wsc_full_paper_example(self, paper_catalog, batch_requests):
        scheduler = WSCBatchScheduler(interval=0.1, use_cost_function=False)
        system = StorageSystem(paper_catalog, scheduler, unit_config(num_disks=4))
        report = system.run(batch_requests)
        assert report.requests_completed == 6
        used = [
            disk_id
            for disk_id, stats in report.disk_stats.items()
            if stats.requests_serviced > 0
        ]
        assert len(used) == 2  # schedule-B-style minimum cover


class TestViewProtocol:
    def test_view_exposes_profile_and_locations(self):
        catalog = PlacementCatalog({7: [1, 2]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        assert system.profile is PAPER_UNIT
        assert system.locations(7) == (1, 2)
        assert system.disk(1).queue_length == 0

    def test_heuristic_sees_live_state(self):
        """After the first request wakes disk 0, the heuristic should
        route the next request (replicated on both) to the same disk."""
        catalog = PlacementCatalog({0: [0], 1: [0, 1]})
        config = unit_config(num_disks=2)
        system = StorageSystem(catalog, HeuristicScheduler(), config)
        report = system.run(make_requests([0.0, 1.0], data_ids=[0, 1]))
        assert report.disk_stats[0].requests_serviced == 2
        assert report.disk_stats[1].requests_serviced == 0


class TestHorizon:
    def test_fixed_horizon_truncates_stats(self):
        catalog = PlacementCatalog({0: [0]})
        config = unit_config(horizon=50.0)
        system = StorageSystem(catalog, StaticScheduler(), config)
        report = system.run(make_requests([0.0]))
        assert report.duration == pytest.approx(50.0)
        assert report.disk_stats[0].total_time == pytest.approx(50.0)

    def test_derived_horizon_covers_drain(self):
        catalog = PlacementCatalog({0: [0]})
        config = unit_config(drain_slack=2.0)
        system = StorageSystem(catalog, StaticScheduler(), config)
        report = system.run(make_requests([10.0]))
        # last arrival 10 + TB 5 + transitions 0 + slack 2.
        assert report.duration == pytest.approx(17.0)
