"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("b"))
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(9.0, lambda: fired.append("c"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    engine = SimulationEngine()
    fired = []
    for tag in ("first", "second", "third"):
        engine.schedule(2.0, lambda t=tag: fired.append(t))
    engine.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule(3.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [3.5]
    assert engine.now == 3.5


def test_schedule_after_is_relative():
    engine = SimulationEngine()
    seen = []
    engine.schedule(2.0, lambda: engine.schedule_after(1.5, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [3.5]


def test_cannot_schedule_into_the_past():
    engine = SimulationEngine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda: None)


def test_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule_after(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    engine = SimulationEngine()
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append("cancelled"))
    engine.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    engine.run()
    assert fired == ["kept"]


def test_cancel_from_within_earlier_event():
    engine = SimulationEngine()
    fired = []
    late = engine.schedule(5.0, lambda: fired.append("late"))
    engine.schedule(1.0, lambda: late.cancel())
    engine.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(10.0, lambda: fired.append(10))
    engine.run(until=5.0)
    assert fired == [1]
    assert engine.now == 5.0
    engine.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_with_no_events():
    engine = SimulationEngine()
    engine.run(until=42.0)
    assert engine.now == 42.0


def test_events_scheduled_during_run_are_processed():
    engine = SimulationEngine()
    fired = []

    def cascade():
        fired.append("first")
        engine.schedule_after(1.0, lambda: fired.append("second"))

    engine.schedule(1.0, cascade)
    engine.run()
    assert fired == ["first", "second"]


def test_max_events_guard():
    engine = SimulationEngine()

    def forever():
        engine.schedule_after(1.0, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_step_returns_false_when_drained():
    engine = SimulationEngine()
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled():
    engine = SimulationEngine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 2.0


def test_events_processed_counter():
    engine = SimulationEngine()
    for t in range(5):
        engine.schedule(float(t), lambda: None)
    engine.run()
    assert engine.events_processed == 5


def test_events_processed_excludes_cancelled():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda: None)
    cancelled = engine.schedule(2.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    cancelled.cancel()
    engine.run()
    assert engine.events_processed == 2


def test_events_processed_excludes_timer_cancelled_mid_run():
    """A timer cancelled by an earlier event never counts as processed."""
    engine = SimulationEngine()
    late = engine.schedule(5.0, lambda: None)
    engine.schedule(1.0, lambda: late.cancel())
    engine.run()
    assert engine.events_processed == 1


def test_run_not_reentrant():
    engine = SimulationEngine()
    error = []

    def recurse():
        try:
            engine.run()
        except SimulationError as exc:
            error.append(str(exc))

    engine.schedule(1.0, recurse)
    engine.run()
    assert error and "re-entrant" in error[0]


# -- pending_events / queue_depth ------------------------------------------


def test_pending_events_counts_only_live_events():
    engine = SimulationEngine()
    keep = engine.schedule(1.0, lambda: None)
    dead = engine.schedule(2.0, lambda: None)
    dead.cancel()
    assert engine.pending_events == 1
    assert engine.queue_depth == 2
    keep.cancel()
    assert engine.pending_events == 0
    assert engine.queue_depth == 2


def test_pending_events_counts_armed_timer_once():
    engine = SimulationEngine()
    timer = engine.timer(lambda: None)
    timer.schedule_at(5.0)
    assert engine.pending_events == 1
    timer.schedule_at(9.0)  # re-arm later: same single heap entry
    assert engine.pending_events == 1
    timer.cancel()
    assert engine.pending_events == 0
    assert engine.queue_depth == 1  # dormant entry awaits reuse


def test_double_cancel_counts_once():
    engine = SimulationEngine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert engine.pending_events == 1


# -- max_events budget ------------------------------------------------------


def test_max_events_allows_exactly_the_budget():
    engine = SimulationEngine()
    fired = []
    for t in range(3):
        engine.schedule(float(t), lambda t=t: fired.append(t))
    engine.run(max_events=3)  # drains exactly at the budget: no error
    assert fired == [0, 1, 2]


def test_max_events_raises_before_the_budget_plus_one():
    engine = SimulationEngine()
    fired = []
    for t in range(4):
        engine.schedule(float(t), lambda t=t: fired.append(t))
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=3)
    # The 4th event was never processed; the clock stopped at the 3rd.
    assert fired == [0, 1, 2]
    assert engine.events_processed == 3
    assert engine.now == 2.0


def test_max_events_ignores_cancelled_entries():
    engine = SimulationEngine()
    handles = [engine.schedule(float(t), lambda: None) for t in range(5)]
    for handle in handles[:4]:
        handle.cancel()
    engine.run(max_events=1)  # one live event left: exactly on budget
    assert engine.events_processed == 1


# -- post() -----------------------------------------------------------------


def test_post_fires_in_order_with_scheduled_events():
    engine = SimulationEngine()
    fired = []
    engine.schedule(2.0, lambda: fired.append("handle"))
    engine.post(1.0, lambda: fired.append("posted-early"))
    engine.post(2.0, lambda: fired.append("posted-tie"))
    engine.run()
    # Ties at t=2.0 break by insertion order: schedule() came first.
    assert fired == ["posted-early", "handle", "posted-tie"]


def test_post_rejects_past_times():
    engine = SimulationEngine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.post(1.0, lambda: None)


def test_posted_events_survive_compaction():
    engine = SimulationEngine(compaction_min_size=4, compaction_threshold=0.25)
    fired = []
    for t in range(8):
        engine.post(float(t), lambda t=t: fired.append(t))
    doomed = [engine.schedule(10.0 + t, lambda: None) for t in range(8)]
    for handle in doomed:
        handle.cancel()
    assert engine.compactions >= 1
    assert engine.pending_events == 8
    engine.run()
    assert fired == list(range(8))


# -- ReusableTimer ----------------------------------------------------------


def test_timer_fires_at_deadline():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append(engine.now))
    timer.schedule_at(3.0)
    assert timer.armed and timer.deadline == 3.0
    engine.run()
    assert fired == [3.0]
    assert not timer.armed


def test_timer_rearm_later_fires_once_at_new_deadline():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append(engine.now))
    timer.schedule_at(2.0)
    timer.schedule_at(7.0)  # moves forward without a new heap entry
    assert engine.queue_depth == 1
    engine.run()
    assert fired == [7.0]
    assert engine.events_processed == 1


def test_timer_rearm_earlier_fires_at_new_deadline():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append(engine.now))
    timer.schedule_at(9.0)
    timer.schedule_at(1.0)  # earlier: abandons the old entry
    engine.run()
    assert fired == [1.0]
    assert engine.events_processed == 1


def test_timer_cancel_then_rearm_reuses_the_entry():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append(engine.now))
    timer.schedule_at(2.0)
    timer.cancel()
    assert engine.pending_events == 0
    timer.schedule_at(4.0)  # resurrects the dormant in-heap entry
    assert engine.pending_events == 1
    assert engine.queue_depth == 1
    engine.run()
    assert fired == [4.0]


def test_timer_cancelled_never_fires():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append("timer"))
    timer.schedule_at(2.0)
    engine.schedule(1.0, timer.cancel)
    engine.run()
    assert fired == []
    assert engine.events_processed == 1


def test_timer_refire_after_firing():
    engine = SimulationEngine()
    fired = []

    def tick():
        fired.append(engine.now)
        if engine.now < 3.0:
            timer.schedule_after(1.0)

    timer = engine.timer(tick)
    timer.schedule_at(1.0)
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_timer_rejects_past_deadline():
    engine = SimulationEngine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    timer = engine.timer(lambda: None)
    with pytest.raises(SimulationError):
        timer.schedule_at(1.0)
    with pytest.raises(SimulationError):
        timer.schedule_after(-0.5)


def test_timer_ties_respect_insertion_order():
    engine = SimulationEngine()
    fired = []
    timer = engine.timer(lambda: fired.append("timer"))
    timer.schedule_at(2.0)
    engine.schedule(2.0, lambda: fired.append("event"))
    engine.run()
    assert fired == ["timer", "event"]


# -- compaction -------------------------------------------------------------


def test_compaction_threshold_validation():
    with pytest.raises(SimulationError):
        SimulationEngine(compaction_threshold=0.0)
    with pytest.raises(SimulationError):
        SimulationEngine(compaction_threshold=1.5)
    SimulationEngine(compaction_threshold=None)  # disabled is allowed


def test_compaction_bounds_heap_under_cancel_churn():
    engine = SimulationEngine(compaction_min_size=16)
    for _ in range(2000):
        engine.schedule(100.0, lambda: None).cancel()
        assert engine.queue_depth <= 64
    assert engine.compactions > 0
    assert engine.pending_events == 0


def test_compaction_disabled_lets_dead_entries_pile_up():
    engine = SimulationEngine(compaction_threshold=None)
    for _ in range(100):
        engine.schedule(100.0, lambda: None).cancel()
    assert engine.queue_depth == 100
    assert engine.compactions == 0
    assert engine.pending_events == 0
