"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("b"))
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(9.0, lambda: fired.append("c"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    engine = SimulationEngine()
    fired = []
    for tag in ("first", "second", "third"):
        engine.schedule(2.0, lambda t=tag: fired.append(t))
    engine.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule(3.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [3.5]
    assert engine.now == 3.5


def test_schedule_after_is_relative():
    engine = SimulationEngine()
    seen = []
    engine.schedule(2.0, lambda: engine.schedule_after(1.5, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [3.5]


def test_cannot_schedule_into_the_past():
    engine = SimulationEngine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda: None)


def test_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule_after(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    engine = SimulationEngine()
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append("cancelled"))
    engine.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    engine.run()
    assert fired == ["kept"]


def test_cancel_from_within_earlier_event():
    engine = SimulationEngine()
    fired = []
    late = engine.schedule(5.0, lambda: fired.append("late"))
    engine.schedule(1.0, lambda: late.cancel())
    engine.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(10.0, lambda: fired.append(10))
    engine.run(until=5.0)
    assert fired == [1]
    assert engine.now == 5.0
    engine.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_with_no_events():
    engine = SimulationEngine()
    engine.run(until=42.0)
    assert engine.now == 42.0


def test_events_scheduled_during_run_are_processed():
    engine = SimulationEngine()
    fired = []

    def cascade():
        fired.append("first")
        engine.schedule_after(1.0, lambda: fired.append("second"))

    engine.schedule(1.0, cascade)
    engine.run()
    assert fired == ["first", "second"]


def test_max_events_guard():
    engine = SimulationEngine()

    def forever():
        engine.schedule_after(1.0, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_step_returns_false_when_drained():
    engine = SimulationEngine()
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled():
    engine = SimulationEngine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 2.0


def test_events_processed_counter():
    engine = SimulationEngine()
    for t in range(5):
        engine.schedule(float(t), lambda: None)
    engine.run()
    assert engine.events_processed == 5


def test_events_processed_excludes_cancelled():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda: None)
    cancelled = engine.schedule(2.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    cancelled.cancel()
    engine.run()
    assert engine.events_processed == 2


def test_events_processed_excludes_timer_cancelled_mid_run():
    """A timer cancelled by an earlier event never counts as processed."""
    engine = SimulationEngine()
    late = engine.schedule(5.0, lambda: None)
    engine.schedule(1.0, lambda: late.cancel())
    engine.run()
    assert engine.events_processed == 1


def test_run_not_reentrant():
    engine = SimulationEngine()
    error = []

    def recurse():
        try:
            engine.run()
        except SimulationError as exc:
            error.append(str(exc))

    engine.schedule(1.0, recurse)
    engine.run()
    assert error and "re-entrant" in error[0]
