"""Timer-churn properties: bounded heap + compaction-invariant results.

The 2CPM idle timer cancels and re-arms once per disk visit, which is
the workload the :class:`~repro.sim.engine.ReusableTimer` and the heap
compaction sweep exist for. These tests drive that pattern hard and
assert the two engine-level guarantees the optimisation relies on:

* the heap stays bounded under arbitrary schedule/cancel churn when
  compaction is on (dead entries cannot accumulate without limit);
* the observable behaviour — firing order, firing times, events
  processed — is byte-identical with compaction on, off, or aggressive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine

#: Ops a churn script may apply to one timer.
OP_ARM, OP_CANCEL, OP_ADVANCE = 0, 1, 2


@st.composite
def churn_scripts(draw):
    """A sequence of (timer index, op, delay-seconds) churn steps."""
    steps = draw(st.integers(min_value=1, max_value=120))
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=OP_ARM, max_value=OP_ADVANCE),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=steps,
            max_size=steps,
        )
    )


def _run_script(script, *, compaction_threshold, num_timers=8):
    """Replay one churn script; returns (firing trace, max heap depth,
    engine)."""
    engine = SimulationEngine(
        compaction_threshold=compaction_threshold, compaction_min_size=32
    )
    fired = []
    timers = [
        engine.timer(lambda i=i: fired.append((engine.now, i)))
        for i in range(num_timers)
    ]
    max_depth = 0
    for index, op, delay in script:
        timer = timers[index]
        if op == OP_ARM:
            timer.schedule_after(delay)
        elif op == OP_CANCEL:
            timer.cancel()
        else:
            engine.run(until=engine.now + delay)
        if engine.queue_depth > max_depth:
            max_depth = engine.queue_depth
    engine.run()
    return fired, max_depth, engine


@given(script=churn_scripts())
@settings(max_examples=100, deadline=None)
def test_compaction_never_changes_behaviour(script):
    """Firing trace and event count are identical with compaction on,
    off, and hair-trigger aggressive."""
    fired_off, _, engine_off = _run_script(script, compaction_threshold=None)
    fired_on, _, engine_on = _run_script(script, compaction_threshold=0.5)
    fired_hot, _, engine_hot = _run_script(script, compaction_threshold=0.01)
    assert fired_on == fired_off == fired_hot
    assert (
        engine_on.events_processed
        == engine_off.events_processed
        == engine_hot.events_processed
    )
    assert engine_on.pending_events == 0
    assert engine_off.pending_events == 0


@given(script=churn_scripts())
@settings(max_examples=100, deadline=None)
def test_heap_stays_bounded_with_compaction(script):
    """With compaction on, heap depth never exceeds the structural bound
    ``max(compaction_min_size, 2 * live entries) + 1``: 8 timers own at
    most 8 live entries, so depth must stay within the sweep trigger."""
    _, max_depth, engine = _run_script(script, compaction_threshold=0.5)
    assert max_depth <= 33  # max(min_size=32, 2 * 8 live) + 1 in-flight
    assert engine.pending_events == 0


def test_ten_thousand_timer_churn_is_bounded_and_deterministic():
    """The ISSUE's acceptance workload: 10k 2CPM-style timers, repeated
    arm-far / cancel-half / re-arm-earlier rounds. Earlier re-arms
    abandon heap entries, so without compaction the heap grows every
    round; with the default engine it must stay within the structural
    2x bound, with identical firings either way."""

    def churn(compaction_threshold):
        engine = SimulationEngine(compaction_threshold=compaction_threshold)
        fired = []
        timers = [
            engine.timer(lambda i=i: fired.append((engine.now, i)))
            for i in range(10_000)
        ]
        max_depth = 0
        for _ in range(4):
            base_s = engine.now
            for offset, timer in enumerate(timers):
                timer.schedule_at(base_s + 50.0 + offset * 1e-4)
            for timer in timers[::2]:
                timer.cancel()
            for offset, timer in enumerate(timers):
                if offset % 2 == 0:
                    # Earlier than the in-heap entry: forces a fresh push.
                    timer.schedule_at(base_s + 1.0 + offset * 1e-4)
            if engine.queue_depth > max_depth:
                max_depth = engine.queue_depth
            engine.run(until=base_s + 2.0)
        engine.run()
        assert engine.pending_events == 0
        return fired, max_depth, engine.compactions

    fired_on, depth_on, compactions_on = churn(0.5)
    fired_off, depth_off, _ = churn(None)
    assert fired_on == fired_off
    assert compactions_on > 0
    # Live entries never exceed 10k (one per armed timer), so the 0.5
    # threshold caps the heap at ~2x that; without compaction the four
    # rounds of abandoned entries pile higher.
    assert depth_on <= 2 * 10_000 + 1
    assert depth_off > depth_on
