"""Bench profiling path behind ``repro-storage profile <bench-id>``."""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.perf.benchprof import profile_bench


def test_unknown_bench_id_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown bench"):
        profile_bench("not-a-bench")


def test_specless_bench_is_a_configuration_error():
    # fig5 recomputes a table without running specs: nothing to profile.
    with pytest.raises(ConfigurationError, match="no runnable specs"):
        profile_bench("fig5")


def test_cli_profile_power_profile_still_works(capsys):
    assert main(["profile", "paper-evaluation"]) == 0
    assert "paper-evaluation" in capsys.readouterr().out


def test_cli_profile_bench_id_prints_top_table(capsys):
    """The acceptance path: ``repro-storage profile fig6`` exits 0 and
    prints the phase breakdown plus the cProfile cumulative table."""
    assert main(["profile", "fig6", "--scale", "0.05", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profiled" in out
    assert "simulate" in out  # phase breakdown
    assert "cumulative" in out  # pstats table header


def test_cli_profile_unknown_name_fails_cleanly(capsys):
    assert main(["profile", "no-such-thing"]) == 1
    assert "error:" in capsys.readouterr().err
