"""Microbench suite: schema-valid documents and a working regression gate."""

import json

import pytest

from repro.experiments.harness.schema import validate_bench_payload
from repro.perf.microbench import (
    DEFAULT_GATE_TOLERANCE,
    PRE_PR_BASELINE_EPS,
    MicrobenchResult,
    bench_engine_dispatch,
    bench_timer_churn,
    build_parser,
    check_regression,
    run_suite,
)


@pytest.fixture(scope="module")
def quick_payload():
    """One shrunken suite run shared by every test in this module."""
    return run_suite(quick=True, seed=1)


def test_quick_suite_emits_a_schema_valid_document(quick_payload):
    assert validate_bench_payload(quick_payload) == []
    assert quick_payload["bench"] == "perf_core"
    assert quick_payload["cache"]["enabled"] is False


def test_suite_records_every_microbench(quick_payload):
    micro = quick_payload["result"]["microbench"]
    expected = {
        "engine_dispatch",
        "timer_churn",
        "scheduler_choose",
        "storage_dispatch",
    }
    for size in (10, 180, 1000):
        expected.add(f"kernel_choose_python_{size}")
        expected.add(f"kernel_choose_numpy_{size}")
    expected.update({"wsc_weight_pass_python_180", "wsc_weight_pass_numpy_180"})
    for policy in ("nearest", "ltsp"):
        for queue_depth in (10, 100, 1000):
            expected.add(f"tape_plan_{policy}_{queue_depth}")
    assert set(micro) == expected
    for measurement in micro.values():
        assert measurement["iterations"] > 0
        assert measurement["rate_per_s"] > 0


def test_suite_reports_speedup_vs_recorded_baseline(quick_payload):
    result = quick_payload["result"]
    assert result["baseline_events_per_sec"] == PRE_PR_BASELINE_EPS
    assert result["speedup"] == pytest.approx(
        result["events_per_sec"] / PRE_PR_BASELINE_EPS
    )


def test_engine_dispatch_counts_every_posted_event():
    result = bench_engine_dispatch(num_events=500)
    assert result.iterations == 500
    assert result.wall_s > 0


def test_timer_churn_runs_the_requested_rounds():
    result = bench_timer_churn(num_timers=16, rounds=3)
    assert result.iterations == 3 * (16 + 8 + 8)


def test_rate_of_zero_wall_is_zero():
    assert MicrobenchResult("x", 10, 0.0).rate_per_s == 0.0


def test_gate_passes_within_tolerance(tmp_path, quick_payload):
    baseline = tmp_path / "BENCH_perf_core.json"
    baseline.write_text(json.dumps(quick_payload))
    assert check_regression(quick_payload, baseline) is None


def test_gate_fails_on_regression(tmp_path, quick_payload):
    inflated = dict(quick_payload)
    inflated["events_per_sec"] = quick_payload["events_per_sec"] * 10.0
    baseline = tmp_path / "BENCH_perf_core.json"
    baseline.write_text(json.dumps(inflated))
    failure = check_regression(quick_payload, baseline, tolerance=0.2)
    assert failure is not None and "perf regression" in failure


def test_gate_tolerance_is_respected(tmp_path, quick_payload):
    # 10% above measured passes at 20% tolerance, fails at 5%.
    ahead = dict(quick_payload)
    ahead["events_per_sec"] = quick_payload["events_per_sec"] * 1.1
    baseline = tmp_path / "BENCH_perf_core.json"
    baseline.write_text(json.dumps(ahead))
    assert check_regression(quick_payload, baseline, tolerance=0.2) is None
    assert check_regression(quick_payload, baseline, tolerance=0.05) is not None


def test_parser_defaults_match_the_gate_contract():
    args = build_parser().parse_args([])
    assert args.tolerance == DEFAULT_GATE_TOLERANCE
    assert args.repeats == 3
    assert args.output == "BENCH_perf_core.json"


def test_run_suite_rejects_nonpositive_repeats():
    with pytest.raises(ValueError, match="repeats"):
        run_suite(repeats=0)
