"""Profiler behaviour: zero-cost when off, accurate when on."""

import pytest

from repro.perf.profiler import (
    Profiler,
    activate,
    active_profiler,
    deactivate,
    hook_phase,
)


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with no active profiler."""
    deactivate()
    yield
    deactivate()


def test_disabled_profiler_phase_is_the_shared_nullcontext():
    """The zero-cost-off guarantee: a disabled profiler allocates no
    context object — every phase() returns one shared singleton."""
    profiler = Profiler(enabled=False)
    first = profiler.phase("simulate")
    second = profiler.phase("binding")
    assert first is second  # identical object: no per-call allocation
    with first:
        pass
    assert profiler.phases == ()


def test_hook_phase_without_active_profiler_is_the_shared_nullcontext():
    assert active_profiler() is None
    assert hook_phase("simulate") is hook_phase("binding")


def test_hook_phase_routes_to_the_active_profiler():
    profiler = Profiler()
    activate(profiler)
    with hook_phase("simulate"):
        pass
    with hook_phase("simulate"):
        pass
    (stats,) = profiler.phases
    assert stats.name == "simulate"
    assert stats.calls == 2
    assert stats.wall_s >= 0.0


def test_activate_returns_previous_for_restore():
    outer = Profiler()
    inner = Profiler()
    assert activate(outer) is None
    assert activate(inner) is outer
    assert active_profiler() is inner
    deactivate(outer)
    assert active_profiler() is outer


def test_profile_call_returns_value_and_records_stats():
    profiler = Profiler()

    def work(n: int) -> int:
        return sum(range(n))

    assert profiler.profile_call(work, 100) == sum(range(100))
    table = profiler.top_table(limit=5)
    assert "work" in table
    assert "cumulative" in table


def test_profile_call_disabled_is_passthrough():
    profiler = Profiler(enabled=False)
    assert profiler.profile_call(lambda: 42) == 42
    assert profiler.top_table() == "no profiled calls recorded"


def test_top_table_rejects_unknown_sort():
    with pytest.raises(ValueError, match="unknown sort"):
        Profiler().top_table(sort="by-vibes")


def test_phase_table_renders_recorded_phases():
    profiler = Profiler()
    with profiler.phase("binding"):
        pass
    table = profiler.phase_table()
    assert "binding" in table
    assert "calls" in table


def test_track_allocations_records_bytes():
    profiler = Profiler(track_allocations=True)
    sink = []
    with profiler.phase("alloc"):
        sink.append(bytearray(256 * 1024))
    (stats,) = profiler.phases
    assert stats.alloc_bytes >= 256 * 1024
    del sink


def test_runner_is_instrumented_with_phases():
    """execute_spec reports its binding/simulate phases when profiled."""
    from repro.experiments.harness.runner import clear_memos, execute_spec
    from repro.experiments.harness.spec import cell_spec

    profiler = Profiler()
    previous = activate(profiler)
    try:
        spec = cell_spec("cello", 1, "heuristic", scale=0.02, seed=7)
        execute_spec(spec)
    finally:
        deactivate(previous)
        clear_memos()
    names = {stats.name for stats in profiler.phases}
    assert {"binding", "simulate"} <= names
