"""Tests for the weighted set cover solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.set_cover import (
    SetCoverInstance,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    harmonic_number,
)
from repro.errors import ConfigurationError


def make(universe, sets, weights):
    return SetCoverInstance.build(universe, sets, weights)


class TestInstance:
    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ConfigurationError, match="not coverable"):
            make([1, 2], {"s": [1]}, {"s": 1.0})

    def test_missing_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="no weight"):
            SetCoverInstance.build([1], {"s": [1]}, {})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            make([1], {"s": [1]}, {"s": -1.0})

    def test_extraneous_elements_trimmed(self):
        instance = make([1], {"s": [1, 99]}, {"s": 1.0})
        assert instance.sets["s"] == frozenset({1})

    def test_is_cover(self):
        instance = make([1, 2], {"a": [1], "b": [2]}, {"a": 1, "b": 1})
        assert instance.is_cover(["a", "b"])
        assert not instance.is_cover(["a"])


class TestGreedy:
    def test_prefers_cheap_wide_sets(self):
        instance = make(
            [1, 2, 3],
            {"wide": [1, 2, 3], "n1": [1], "n2": [2], "n3": [3]},
            {"wide": 1.5, "n1": 1.0, "n2": 1.0, "n3": 1.0},
        )
        assert greedy_weighted_set_cover(instance) == ["wide"]

    def test_zero_weight_sets_are_free(self):
        instance = make(
            [1, 2],
            {"free": [1], "paid": [1, 2]},
            {"free": 0.0, "paid": 5.0},
        )
        chosen = greedy_weighted_set_cover(instance)
        assert chosen[0] == "free"
        assert set(chosen) == {"free", "paid"}

    def test_classic_greedy_trap_still_covers(self):
        # The instance where greedy is suboptimal but must still cover.
        instance = make(
            [1, 2, 3, 4],
            {"big": [1, 2, 3], "left": [1, 2], "right": [3, 4]},
            {"big": 1.0, "left": 1.0, "right": 1.0},
        )
        chosen = greedy_weighted_set_cover(instance)
        assert instance.is_cover(chosen)

    def test_deterministic(self):
        instance = make(
            list(range(10)),
            {f"s{i}": [i, (i + 1) % 10] for i in range(10)},
            {f"s{i}": 1.0 + i * 0.1 for i in range(10)},
        )
        assert greedy_weighted_set_cover(instance) == greedy_weighted_set_cover(
            instance
        )

    def test_greedy_within_harmonic_factor_of_exact(self):
        rng = random.Random(0)
        for _trial in range(25):
            n_elements = rng.randint(3, 8)
            n_sets = rng.randint(3, 7)
            universe = list(range(n_elements))
            sets = {}
            for s in range(n_sets):
                size = rng.randint(1, n_elements)
                sets[s] = rng.sample(universe, size)
            # Guarantee coverability.
            sets["all"] = universe
            weights = {k: rng.uniform(0.1, 5.0) for k in sets}
            instance = make(universe, sets, weights)
            greedy = instance.cover_weight(greedy_weighted_set_cover(instance))
            optimal = instance.cover_weight(exact_weighted_set_cover(instance))
            assert greedy <= harmonic_number(n_elements) * optimal + 1e-9


class TestExact:
    def test_finds_cheaper_cover_than_naive(self):
        instance = make(
            [1, 2, 3, 4],
            {"a": [1, 2], "b": [3, 4], "c": [1, 2, 3, 4]},
            {"a": 1.0, "b": 1.0, "c": 1.5},
        )
        chosen = exact_weighted_set_cover(instance)
        assert instance.cover_weight(chosen) == pytest.approx(1.5)

    def test_too_many_sets_rejected(self):
        universe = [0]
        sets = {i: [0] for i in range(30)}
        weights = {i: 1.0 for i in range(30)}
        instance = make(universe, sets, weights)
        with pytest.raises(ConfigurationError, match="limited"):
            exact_weighted_set_cover(instance)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_exact_never_worse_than_greedy(self, seed):
        rng = random.Random(seed)
        n_elements = rng.randint(2, 7)
        universe = list(range(n_elements))
        sets = {"all": universe}
        for s in range(rng.randint(1, 6)):
            sets[s] = rng.sample(universe, rng.randint(1, n_elements))
        weights = {k: rng.uniform(0.0, 4.0) for k in sets}
        instance = make(universe, sets, weights)
        greedy = instance.cover_weight(greedy_weighted_set_cover(instance))
        optimal = instance.cover_weight(exact_weighted_set_cover(instance))
        assert optimal <= greedy + 1e-9


class TestHarmonic:
    def test_values(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == 1.5
        assert harmonic_number(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic_number(-1)
