"""Tests for the MWIS solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.graph import ConflictGraph
from repro.algorithms.independent_set import (
    exact_mwis,
    greedy_min_degree,
    gwmin,
    gwmin2,
    gwmin_weight_bound,
    independence_check,
    solve_mwis,
)
from repro.errors import ConfigurationError


def path_graph(weights):
    graph = ConflictGraph()
    for index, weight in enumerate(weights):
        graph.add_node(index, weight)
    for index in range(len(weights) - 1):
        graph.add_edge(index, index + 1)
    return graph


def random_graph(rng, n, edge_probability=0.3):
    graph = ConflictGraph()
    for node in range(n):
        graph.add_node(node, rng.uniform(0.0, 10.0))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


ALL_SOLVERS = (gwmin, gwmin2, greedy_min_degree, exact_mwis)


class TestIndependence:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_solution_is_independent(self, solver):
        rng = random.Random(17)
        for _ in range(10):
            graph = random_graph(rng, 15)
            independence_check(graph, solver(graph))

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_empty_graph(self, solver):
        assert solver(ConflictGraph()) == []

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_isolated_nodes_all_selected(self, solver):
        graph = ConflictGraph()
        for node in range(5):
            graph.add_node(node, 1.0)
        assert sorted(solver(graph)) == [0, 1, 2, 3, 4]


class TestOptimality:
    def test_exact_on_path(self):
        # Path weights 1-9-1: optimum is the middle node alone (9).
        graph = path_graph([1.0, 9.0, 1.0])
        assert exact_mwis(graph) == [1]

    def test_exact_on_alternating_path(self):
        # Path 5-1-5-1-5: optimum = the three 5s.
        graph = path_graph([5.0, 1.0, 5.0, 1.0, 5.0])
        assert sorted(exact_mwis(graph)) == [0, 2, 4]

    def test_gwmin_matches_exact_on_easy_instances(self):
        graph = path_graph([1.0, 9.0, 1.0])
        assert gwmin(graph) == [1]

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_beats_exact(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(2, 12))
        optimal = graph.total_weight(exact_mwis(graph))
        for greedy in (gwmin, gwmin2, greedy_min_degree):
            assert graph.total_weight(greedy(graph)) <= optimal + 1e-9

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_gwmin_meets_sakai_bound(self, seed):
        """Sakai et al. guarantee: GWMIN weight >= sum w(v)/(deg(v)+1)."""
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(2, 15))
        achieved = graph.total_weight(gwmin(graph))
        assert achieved >= gwmin_weight_bound(graph) - 1e-9


class TestExactGuards:
    def test_node_limit(self):
        graph = ConflictGraph()
        for node in range(41):
            graph.add_node(node, 1.0)
        with pytest.raises(ConfigurationError, match="limited"):
            exact_mwis(graph)


class TestDispatch:
    def test_solve_mwis_methods(self):
        graph = path_graph([1.0, 9.0, 1.0])
        for method in ("gwmin", "gwmin2", "min-degree", "exact"):
            result = solve_mwis(graph, method)
            assert graph.is_independent_set(result)

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError, match="unknown MWIS method"):
            solve_mwis(ConflictGraph(), "magic")


class TestDeterminism:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_repeatable(self, solver):
        rng = random.Random(5)
        graph = random_graph(rng, 20)
        assert solver(graph) == solver(graph)
