"""Tests for the Theorem-3 reduction (MIS -> offline scheduling)."""

import itertools

import pytest

from repro.algorithms.reductions import (
    independent_set_from_schedule,
    reduce_mis_to_scheduling,
)
from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator
from repro.core.problem import SchedulingProblem
from repro.errors import ConfigurationError
from repro.types import Assignment


def brute_force_mis(num_vertices, edges):
    """Largest independent set by exhaustive search (tiny graphs)."""
    edge_set = {frozenset(e) for e in edges}
    best = set()
    for r in range(num_vertices, -1, -1):
        for subset in itertools.combinations(range(num_vertices), r):
            if all(
                frozenset((u, v)) not in edge_set
                for u, v in itertools.combinations(subset, 2)
            ):
                return set(subset)
    return best


def solve_reduced(instance):
    problem = SchedulingProblem.build(
        instance.requests,
        instance.catalog,
        instance.profile,
        num_disks=max(instance.catalog.disks) + 1,
    )
    scheduler = MWISOfflineScheduler(method="exact", neighborhood=None)
    return problem, scheduler.schedule(problem)


class TestInstanceConstruction:
    def test_triangle_counts(self):
        instance = reduce_mis_to_scheduling(3, [(0, 1), (1, 2), (0, 2)])
        # 3 edges x (2 dummies + 1 edge request) = 9 requests.
        assert len(instance.requests) == 9
        assert len(instance.edge_request_of) == 3

    def test_edge_requests_replicated_on_both_endpoints(self):
        instance = reduce_mis_to_scheduling(2, [(0, 1)])
        request_id = instance.edge_request_of[frozenset((0, 1))]
        request = next(
            r for r in instance.requests if r.request_id == request_id
        )
        assert set(instance.catalog.locations(request.data_id)) == {0, 1}

    def test_dummies_single_location(self):
        instance = reduce_mis_to_scheduling(2, [(0, 1)])
        for request_id, vertex in instance.vertex_of_dummy.items():
            request = next(
                r for r in instance.requests if r.request_id == request_id
            )
            assert instance.catalog.locations(request.data_id) == (vertex,)

    def test_duplicate_edges_collapsed(self):
        instance = reduce_mis_to_scheduling(2, [(0, 1), (1, 0)])
        assert len(instance.edge_request_of) == 1

    def test_groups_spaced_beyond_window(self):
        instance = reduce_mis_to_scheduling(3, [(0, 1), (1, 2)])
        window = instance.profile.breakeven_time + instance.profile.transition_time
        times = sorted({r.time for r in instance.requests})
        # First group's times and second group's times differ by >> window.
        assert times[-1] - times[0] > window

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            reduce_mis_to_scheduling(2, [(0, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ConfigurationError):
            reduce_mis_to_scheduling(2, [(0, 5)])

    def test_edgeless_graph_still_nonempty(self):
        instance = reduce_mis_to_scheduling(3, [])
        assert len(instance.requests) == 3


class TestPaperGadgetProperties:
    def test_decoded_set_is_independent(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]
        instance = reduce_mis_to_scheduling(5, edges)
        _problem, assignment = solve_reduced(instance)
        decoded = independent_set_from_schedule(instance, assignment)
        edge_set = {frozenset(e) for e in edges}
        for u in decoded:
            for v in decoded:
                if u != v:
                    assert frozenset((u, v)) not in edge_set

    def test_each_group_saves_exactly_one_epmax(self):
        """Per edge group, exactly one dummy chains with the edge request."""
        edges = [(0, 1), (1, 2)]
        instance = reduce_mis_to_scheduling(3, edges)
        problem, assignment = solve_reduced(instance)
        evaluation = OfflineEvaluator(problem).evaluate(assignment)
        epmax = instance.profile.max_request_energy
        # Each group saves (EPmax - eps idle) where eps is the dummy->edge
        # request offset the construction used.
        group_times = sorted({r.time for r in problem.requests})
        epsilon = group_times[1] - group_times[0]
        epsilon_cost = epsilon * instance.profile.idle_power
        expected = len(problem.requests) * epmax - len(edges) * (
            epmax - epsilon_cost
        )
        assert evaluation.objective_energy == pytest.approx(expected)

    def test_objective_is_invariant_to_edge_placement(self):
        """Fidelity regression: the paper's Theorem-3 gadget, implemented
        literally, gives the same energy for every edge-request placement
        (the proof sketch's 'easy to show' step glosses this)."""
        edges = [(0, 1), (1, 2)]
        instance = reduce_mis_to_scheduling(3, edges)
        problem = SchedulingProblem.build(
            instance.requests,
            instance.catalog,
            instance.profile,
            num_disks=max(instance.catalog.disks) + 1,
        )
        energies = set()
        for choice_a in (0, 1):
            for choice_b in (1, 2):
                assignment = Assignment(problem.requests)
                for rid, vertex in instance.vertex_of_dummy.items():
                    assignment.assign(rid, vertex)
                assignment.assign(
                    instance.edge_request_of[frozenset((0, 1))], choice_a
                )
                assignment.assign(
                    instance.edge_request_of[frozenset((1, 2))], choice_b
                )
                evaluation = OfflineEvaluator(problem).evaluate(assignment)
                energies.add(round(evaluation.objective_energy, 9))
        assert len(energies) == 1


class TestSetCoverReduction:
    """The rigorous NP-hardness route: min set cover -> offline scheduling."""

    def exact_schedule(self, requests, catalog):
        num_disks = max(catalog.disks) + 1
        problem = SchedulingProblem.build(
            requests, catalog, reduce_mis_to_scheduling(1, []).profile, num_disks
        )
        scheduler = MWISOfflineScheduler(method="exact", neighborhood=None)
        return problem, scheduler.schedule(problem)

    def test_energy_counts_used_disks(self):
        from repro.algorithms.reductions import reduce_set_cover_to_scheduling

        requests, catalog = reduce_set_cover_to_scheduling(
            universe=[0, 1, 2, 3],
            sets={0: [0, 1], 1: [2, 3], 2: [0, 1, 2, 3]},
        )
        problem, assignment = self.exact_schedule(requests, catalog)
        evaluation = OfflineEvaluator(problem).evaluate(assignment)
        epmax = problem.profile.max_request_energy
        # Minimum cover = {set 2} alone -> one disk -> energy EPmax.
        assert evaluation.objective_energy == pytest.approx(epmax)

    def test_round_trip_against_exact_set_cover(self):
        import random

        from repro.algorithms.reductions import (
            cover_from_schedule,
            reduce_set_cover_to_scheduling,
        )
        from repro.algorithms.set_cover import (
            SetCoverInstance,
            exact_weighted_set_cover,
        )

        rng = random.Random(11)
        for _trial in range(8):
            n = rng.randint(3, 4)
            universe = list(range(n))
            sets = {0: universe[: max(1, n // 2)], 1: universe[n // 2 :]}
            sets[2] = rng.sample(universe, rng.randint(1, n))
            sets[99] = universe  # guarantee coverability
            requests, catalog = reduce_set_cover_to_scheduling(universe, sets)
            problem, assignment = self.exact_schedule(requests, catalog)
            evaluation = OfflineEvaluator(problem).evaluate(assignment)
            used = cover_from_schedule(assignment)

            instance = SetCoverInstance.build(
                universe,
                {k: list(v) for k, v in sets.items()},
                {k: 1.0 for k in sets},
            )
            optimal = exact_weighted_set_cover(instance)
            epmax = problem.profile.max_request_energy
            assert evaluation.objective_energy == pytest.approx(
                len(optimal) * epmax
            )
            assert len(used) == len(optimal)

    def test_uncoverable_rejected(self):
        from repro.algorithms.reductions import reduce_set_cover_to_scheduling

        with pytest.raises(ConfigurationError):
            reduce_set_cover_to_scheduling([0, 1], {0: [0]})

    def test_empty_universe_rejected(self):
        from repro.algorithms.reductions import reduce_set_cover_to_scheduling

        with pytest.raises(ConfigurationError):
            reduce_set_cover_to_scheduling([], {0: [0]})
