"""Tests for the conflict graph."""

import pytest

from repro.algorithms.graph import ConflictGraph
from repro.errors import ConfigurationError


@pytest.fixture
def triangle():
    graph = ConflictGraph()
    for node, weight in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
        graph.add_node(node, weight)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("a", "c")
    return graph


def test_len_and_contains(triangle):
    assert len(triangle) == 3
    assert "a" in triangle
    assert "z" not in triangle


def test_degree_and_neighbors(triangle):
    assert triangle.degree("b") == 2
    assert triangle.neighbors("a") == {"b", "c"}


def test_num_edges(triangle):
    assert triangle.num_edges == 3


def test_duplicate_edge_is_idempotent(triangle):
    triangle.add_edge("a", "b")
    assert triangle.num_edges == 3


def test_duplicate_node_rejected(triangle):
    with pytest.raises(ConfigurationError):
        triangle.add_node("a", 1.0)


def test_self_loop_rejected(triangle):
    with pytest.raises(ConfigurationError):
        triangle.add_edge("a", "a")


def test_edge_to_missing_node_rejected(triangle):
    with pytest.raises(ConfigurationError):
        triangle.add_edge("a", "zzz")


def test_negative_weight_rejected():
    graph = ConflictGraph()
    with pytest.raises(ConfigurationError):
        graph.add_node("x", -1.0)


def test_total_weight(triangle):
    assert triangle.total_weight(["a", "c"]) == 4.0


def test_independent_set_detection(triangle):
    assert triangle.is_independent_set(["a"])
    assert triangle.is_independent_set([])
    assert not triangle.is_independent_set(["a", "b"])
    assert not triangle.is_independent_set(["a", "a"])  # duplicates invalid


def test_independent_set_in_path_graph():
    graph = ConflictGraph()
    for node in "abcd":
        graph.add_node(node, 1.0)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("c", "d")
    assert graph.is_independent_set(["a", "c"])
    assert graph.is_independent_set(["b", "d"])
    assert not graph.is_independent_set(["c", "d"])


def test_subgraph_without(triangle):
    sub = triangle.subgraph_without({"b"})
    assert len(sub) == 2
    assert sub.has_edge("a", "c")
    assert not sub.has_edge("a", "b")
    # original untouched
    assert len(triangle) == 3
