"""Tests for arrival processes and popularity models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traces.synthetic import (
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
    ZipfPopularity,
    coefficient_of_variation,
    inter_arrival_gaps,
)


class TestPoisson:
    def test_times_monotone(self):
        times = PoissonArrivals(5.0).generate(500, random.Random(0))
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_mean_rate_matches(self):
        times = PoissonArrivals(10.0).generate(20_000, random.Random(1))
        rate = len(times) / times[-1]
        assert rate == pytest.approx(10.0, rel=0.05)

    def test_cv_near_one(self):
        times = PoissonArrivals(10.0).generate(20_000, random.Random(2))
        cv = coefficient_of_variation(inter_arrival_gaps(times))
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)


class TestMMPP:
    def make(self):
        return MMPPArrivals(
            burst_rate=100.0, quiet_rate=2.0, mean_burst=4.0, mean_quiet=20.0
        )

    def test_times_monotone(self):
        times = self.make().generate(2000, random.Random(0))
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_burstier_than_poisson(self):
        times = self.make().generate(20_000, random.Random(1))
        cv = coefficient_of_variation(inter_arrival_gaps(times))
        assert cv > 1.5

    def test_mean_rate_formula(self):
        process = self.make()
        expected = 100.0 * (4 / 24) + 2.0 * (20 / 24)
        assert process.mean_rate == pytest.approx(expected)

    def test_empirical_rate_near_formula(self):
        process = self.make()
        times = process.generate(40_000, random.Random(3))
        rate = len(times) / times[-1]
        assert rate == pytest.approx(process.mean_rate, rel=0.15)

    def test_burst_rate_must_dominate(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(burst_rate=1.0, quiet_rate=2.0, mean_burst=1, mean_quiet=1)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(burst_rate=1.0, quiet_rate=0.0, mean_burst=1, mean_quiet=1)


class TestPareto:
    def test_times_monotone(self):
        times = ParetoArrivals(rate=5.0).generate(1000, random.Random(0))
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_mean_rate_approximately_correct(self):
        times = ParetoArrivals(rate=5.0, shape=2.5).generate(
            60_000, random.Random(1)
        )
        rate = len(times) / times[-1]
        assert rate == pytest.approx(5.0, rel=0.2)

    def test_heavy_tail_gives_high_cv(self):
        times = ParetoArrivals(rate=5.0, shape=1.4).generate(
            30_000, random.Random(2)
        )
        cv = coefficient_of_variation(inter_arrival_gaps(times))
        assert cv > 1.2

    def test_shape_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            ParetoArrivals(rate=1.0, shape=1.0)


class TestZipfPopularity:
    def test_item_zero_hottest(self):
        popularity = ZipfPopularity(1000, 0.9)
        rng = random.Random(0)
        from collections import Counter

        counts = Counter(popularity.sample(rng) for _ in range(30_000))
        assert counts[0] == max(counts.values())

    @given(n=st.integers(min_value=1, max_value=100))
    @settings(max_examples=20)
    def test_samples_in_range(self, n):
        popularity = ZipfPopularity(n, 0.9)
        rng = random.Random(n)
        assert all(0 <= popularity.sample(rng) < n for _ in range(50))


class TestHelpers:
    def test_gaps(self):
        assert inter_arrival_gaps([1.0, 2.5, 4.0]) == [1.5, 1.5]

    def test_cv_of_constant_gaps_is_zero(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0

    def test_cv_requires_two_values(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation([1.0])
