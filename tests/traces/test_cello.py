"""Tests for the Cello-like generator and HP-format parser."""

import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.cello import CelloLikeConfig, generate_cello_like, parse_hp_cello
from repro.traces.synthetic import coefficient_of_variation, inter_arrival_gaps
from repro.types import OpKind


SMALL = CelloLikeConfig().scaled(0.05)


class TestGenerator:
    def test_request_count(self):
        records = generate_cello_like(SMALL, seed=0)
        assert len(records) == SMALL.num_requests

    def test_sorted_by_time(self):
        records = generate_cello_like(SMALL, seed=0)
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        assert generate_cello_like(SMALL, seed=5) == generate_cello_like(
            SMALL, seed=5
        )

    def test_different_seeds_differ(self):
        assert generate_cello_like(SMALL, seed=1) != generate_cello_like(
            SMALL, seed=2
        )

    def test_bursty(self):
        records = generate_cello_like(SMALL, seed=0)
        cv = coefficient_of_variation(
            inter_arrival_gaps([r.time for r in records])
        )
        assert cv > 1.5

    def test_data_keys_in_population(self):
        records = generate_cello_like(SMALL, seed=0)
        assert all(0 <= r.data_key < SMALL.num_data for r in records)

    def test_read_fraction_zero_gives_all_writes(self):
        config = CelloLikeConfig(
            num_requests=200, num_data=50, read_fraction=0.0
        )
        records = generate_cello_like(config, seed=0)
        assert all(r.op is OpKind.WRITE for r in records)

    def test_scaled_preserves_density(self):
        full = CelloLikeConfig()
        half = full.scaled(0.5)
        assert half.num_requests == full.num_requests // 2
        assert half.burst_rate == pytest.approx(full.burst_rate / 2)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CelloLikeConfig().scaled(0.0)


class TestParser:
    def test_parses_well_formed_lines(self):
        lines = [
            "# comment",
            "",
            "100.5 0 4096 512 R",
            "101.0 1 8192 1024 W",
        ]
        records = parse_hp_cello(lines)
        assert len(records) == 2
        assert records[0].time == 0.0  # rebased
        assert records[1].time == pytest.approx(0.5)
        assert records[0].data_key == (0, 4096)
        assert records[0].op is OpKind.READ
        assert records[1].op is OpKind.WRITE

    def test_sorts_out_of_order_lines(self):
        lines = ["10.0 0 1 512 R", "9.0 0 2 512 R"]
        records = parse_hp_cello(lines)
        assert records[0].time <= records[1].time

    def test_rejects_short_lines(self):
        with pytest.raises(TraceFormatError, match="expected 5 fields"):
            parse_hp_cello(["1.0 0 1 512"])

    def test_rejects_bad_op(self):
        with pytest.raises(TraceFormatError, match="op must be R or W"):
            parse_hp_cello(["1.0 0 1 512 X"])

    def test_rejects_non_numeric(self):
        with pytest.raises(TraceFormatError):
            parse_hp_cello(["abc 0 1 512 R"])
