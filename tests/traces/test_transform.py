"""Tests for trace transformations."""

import pytest

from repro.errors import ConfigurationError
from repro.traces.record import TraceRecord
from repro.traces.transform import (
    merge_traces,
    scale_rate,
    slice_requests,
    time_window,
    with_read_fraction,
)
from repro.traces.synthetic import coefficient_of_variation, inter_arrival_gaps
from repro.types import OpKind


def make_records():
    return [
        TraceRecord(time=float(t), data_key=t % 3) for t in range(10)
    ]


class TestSlice:
    def test_takes_first_n_in_time_order(self):
        records = list(reversed(make_records()))
        sliced = slice_requests(records, 3)
        assert [r.time for r in sliced] == [0.0, 1.0, 2.0]

    def test_count_beyond_length(self):
        assert len(slice_requests(make_records(), 100)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            slice_requests(make_records(), -1)


class TestWindow:
    def test_selects_and_rebases(self):
        windowed = time_window(make_records(), 3.0, 7.0)
        assert [r.time for r in windowed] == [0.0, 1.0, 2.0, 3.0]
        assert windowed[0].data_key == 0  # original record at t=3

    def test_end_exclusive(self):
        windowed = time_window(make_records(), 0.0, 5.0)
        assert len(windowed) == 5

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            time_window(make_records(), 5.0, 5.0)


class TestScaleRate:
    def test_doubling_rate_halves_times(self):
        scaled = scale_rate(make_records(), 2.0)
        assert [r.time for r in scaled] == [t / 2 for t in range(10)]

    def test_preserves_burstiness_cv(self):
        import random

        rng = random.Random(0)
        times, t = [], 0.0
        for _ in range(2000):
            t += rng.expovariate(1.0) * (10 if rng.random() < 0.1 else 1)
            times.append(t)
        records = [TraceRecord(time=x, data_key=0) for x in times]
        original_cv = coefficient_of_variation(inter_arrival_gaps(times))
        scaled = scale_rate(records, 3.0)
        scaled_cv = coefficient_of_variation(
            inter_arrival_gaps([r.time for r in scaled])
        )
        assert scaled_cv == pytest.approx(original_cv, rel=1e-9)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_rate(make_records(), 0.0)


class TestMerge:
    def test_interleaves_and_namespaces(self):
        a = [TraceRecord(time=0.0, data_key="x"), TraceRecord(time=2.0, data_key="y")]
        b = [TraceRecord(time=1.0, data_key="x")]
        merged = merge_traces(a, b)
        assert [r.time for r in merged] == [0.0, 1.0, 2.0]
        keys = {r.data_key for r in merged}
        assert keys == {(0, "x"), (0, "y"), (1, "x")}

    def test_empty_inputs(self):
        assert merge_traces([], []) == []


class TestReadFraction:
    def test_all_reads(self):
        records = with_read_fraction(make_records(), 1.0)
        assert all(r.op is OpKind.READ for r in records)

    def test_all_writes(self):
        records = with_read_fraction(make_records(), 0.0)
        assert all(r.op is OpKind.WRITE for r in records)

    def test_approximate_mix(self):
        base = [TraceRecord(time=float(t), data_key=0) for t in range(4000)]
        records = with_read_fraction(base, 0.25, seed=1)
        reads = sum(1 for r in records if r.op is OpKind.READ)
        assert reads == pytest.approx(1000, rel=0.1)

    def test_deterministic(self):
        assert with_read_fraction(make_records(), 0.5, seed=9) == (
            with_read_fraction(make_records(), 0.5, seed=9)
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            with_read_fraction(make_records(), 1.5)
