"""Tests for the Financial1-like generator and SPC parser."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.financial import (
    FinancialLikeConfig,
    generate_financial_like,
    parse_spc,
)
from repro.traces.cello import CelloLikeConfig, generate_cello_like
from repro.traces.synthetic import coefficient_of_variation, inter_arrival_gaps
from repro.types import OpKind


SMALL = FinancialLikeConfig().scaled(0.05)


class TestGenerator:
    def test_request_count_and_order(self):
        records = generate_financial_like(SMALL, seed=0)
        assert len(records) == SMALL.num_requests
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        assert generate_financial_like(SMALL, seed=3) == generate_financial_like(
            SMALL, seed=3
        )

    def test_steadier_than_cello(self):
        """The paper's key cross-trace contrast (Appendix A.4)."""
        fin = generate_financial_like(SMALL, seed=0)
        cel = generate_cello_like(CelloLikeConfig().scaled(0.05), seed=0)
        cv_fin = coefficient_of_variation(inter_arrival_gaps([r.time for r in fin]))
        cv_cel = coefficient_of_variation(inter_arrival_gaps([r.time for r in cel]))
        assert cv_fin < cv_cel

    def test_rate_matches_config(self):
        records = generate_financial_like(SMALL, seed=1)
        rate = len(records) / records[-1].time
        assert rate == pytest.approx(SMALL.arrival_rate, rel=0.1)


class TestSpcParser:
    def test_parses_well_formed_lines(self):
        lines = [
            "0,12345,4096,r,100.25",
            "1,99,8192,W,100.75,extra,columns",
        ]
        records = parse_spc(lines)
        assert len(records) == 2
        assert records[0].time == 0.0
        assert records[1].time == pytest.approx(0.5)
        assert records[0].data_key == (0, 12345)
        assert records[0].op is OpKind.READ
        assert records[1].op is OpKind.WRITE

    def test_zero_size_clamped_to_one(self):
        records = parse_spc(["0,1,0,r,5.0"])
        assert records[0].size_bytes == 1

    def test_rejects_short_lines(self):
        with pytest.raises(TraceFormatError):
            parse_spc(["0,1,512,r"])

    def test_rejects_bad_opcode(self):
        with pytest.raises(TraceFormatError, match="opcode"):
            parse_spc(["0,1,512,z,5.0"])

    def test_skips_comments_and_blanks(self):
        records = parse_spc(["# header", "", "0,1,512,r,5.0"])
        assert len(records) == 1
