"""Tests for workload binding."""

import pytest

from repro.errors import ConfigurationError
from repro.placement.schemes import UniformPlacement
from repro.traces.record import TraceRecord
from repro.traces.workload import Workload
from repro.types import OpKind


def make_records():
    # data "b" accessed 3x, "a" 2x, "c" 1x; one write mixed in.
    return [
        TraceRecord(time=0.0, data_key="b"),
        TraceRecord(time=1.0, data_key="a"),
        TraceRecord(time=2.0, data_key="b"),
        TraceRecord(time=3.0, data_key="c", op=OpKind.WRITE),
        TraceRecord(time=4.0, data_key="b"),
        TraceRecord(time=5.0, data_key="a"),
        TraceRecord(time=6.0, data_key="c"),
    ]


class TestBinding:
    def test_writes_filtered_by_default(self):
        workload = Workload(make_records())
        assert workload.num_requests == 6

    def test_writes_kept_when_requested(self):
        workload = Workload(make_records(), include_writes=True)
        assert workload.num_requests == 7

    def test_data_ids_dense_and_popularity_ordered(self):
        workload = Workload(make_records())
        assert workload.data_ids == [0, 1, 2]
        # id 0 = hottest ("b": 3 reads), id 2 = coldest ("c": 1 read).
        assert workload.access_count(0) == 3
        assert workload.access_count(2) == 1

    def test_request_ids_sequential_in_time_order(self):
        workload = Workload(make_records())
        requests = workload.requests
        assert [r.request_id for r in requests] == list(range(6))
        times = [r.time for r in requests]
        assert times == sorted(times)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload([])

    def test_all_writes_rejected(self):
        records = [TraceRecord(time=0.0, data_key="x", op=OpKind.WRITE)]
        with pytest.raises(ConfigurationError):
            Workload(records)


class TestStats:
    def test_stats_fields(self):
        stats = Workload(make_records()).stats()
        assert stats.num_requests == 6
        assert stats.num_data == 3
        assert stats.duration == pytest.approx(6.0)
        assert stats.mean_rate == pytest.approx(1.0)
        assert stats.max_popularity_share == pytest.approx(0.5)

    def test_describe_is_readable(self):
        text = Workload(make_records()).stats().describe()
        assert "6 requests" in text


class TestPlace:
    def test_place_covers_every_data_item(self):
        workload = Workload(make_records())
        catalog = workload.place(UniformPlacement(replication_factor=2), 5, seed=1)
        for data_id in workload.data_ids:
            assert catalog.replication_factor(data_id) == 2

    def test_bind_returns_requests_and_catalog(self):
        workload = Workload(make_records())
        requests, catalog = workload.bind(UniformPlacement(), 4, seed=0)
        assert len(requests) == 6
        assert len(catalog) == 3
