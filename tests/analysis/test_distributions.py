"""Tests for distribution helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.distributions import (
    inverse_cdf,
    log_spaced_thresholds,
    mean,
    nearest_rank_percentile,
)
from repro.errors import ConfigurationError


class TestInverseCdf:
    def test_basic_points(self):
        values = [1.0, 2.0, 3.0, 4.0]
        points = dict(inverse_cdf(values, [0.5, 2.0, 4.0, 5.0]))
        assert points[0.5] == 1.0       # all greater
        assert points[2.0] == 0.5       # strictly greater than 2: {3, 4}
        assert points[4.0] == 0.0
        assert points[5.0] == 0.0

    def test_empty_values(self):
        assert inverse_cdf([], [1.0]) == [(1.0, 0.0)]

    @given(
        values=st.lists(st.floats(min_value=0, max_value=100), min_size=1),
        x=st.floats(min_value=-1, max_value=101),
    )
    def test_probability_in_unit_interval(self, values, x):
        (_x, p), = inverse_cdf(values, [x])
        assert 0.0 <= p <= 1.0

    def test_monotone_nonincreasing(self):
        values = [0.1, 0.5, 2.5, 9.0]
        points = inverse_cdf(values, [0.0, 1.0, 5.0, 10.0])
        probs = [p for _x, p in points]
        assert probs == sorted(probs, reverse=True)


class TestPercentile:
    def test_median(self):
        assert nearest_rank_percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_p90_of_uniform_grid(self):
        values = [float(i) for i in range(1, 101)]
        assert nearest_rank_percentile(values, 0.9) == 90.0

    def test_extremes(self):
        values = [5.0, 7.0, 9.0]
        assert nearest_rank_percentile(values, 0.0) == 5.0
        assert nearest_rank_percentile(values, 1.0) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([1.0], 1.5)


class TestThresholds:
    def test_log_spacing(self):
        thresholds = log_spaced_thresholds(0.001, 10.0, points_per_decade=1)
        assert thresholds == pytest.approx([0.001, 0.01, 0.1, 1.0, 10.0])

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            log_spaced_thresholds(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            log_spaced_thresholds(1.0, 0.5)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])
