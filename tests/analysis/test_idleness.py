"""Tests for state-period analysis."""

import pytest

from repro.analysis.idleness import (
    PeriodSummary,
    idle_periods_of_report,
    standby_periods_of_report,
    state_periods,
)
from repro.errors import ConfigurationError
from repro.power.states import DiskPowerState

S = DiskPowerState


class TestStatePeriods:
    def test_basic_extraction(self):
        log = [
            (0.0, S.STANDBY),
            (10.0, S.SPIN_UP),
            (16.0, S.IDLE),
            (20.0, S.SPIN_DOWN),
            (22.0, S.STANDBY),
        ]
        assert state_periods(log, S.STANDBY, 100.0) == [10.0, 78.0]
        assert state_periods(log, S.IDLE, 100.0) == [4.0]
        assert state_periods(log, S.ACTIVE, 100.0) == []

    def test_open_final_interval_clamped_to_end(self):
        log = [(0.0, S.IDLE)]
        assert state_periods(log, S.IDLE, 42.0) == [42.0]

    def test_empty_log(self):
        assert state_periods([], S.IDLE, 10.0) == []

    def test_unsorted_log_rejected(self):
        log = [(0.0, S.IDLE), (5.0, S.ACTIVE), (1.0, S.IDLE)]
        with pytest.raises(ConfigurationError):
            state_periods(log, S.IDLE, 10.0)

    def test_adjacent_same_state_intervals_counted_separately(self):
        # ACTIVE -> ACTIVE re-entries (queue continuation) appear as
        # separate log entries and separate (possibly zero) periods.
        log = [(0.0, S.ACTIVE), (1.0, S.ACTIVE), (2.0, S.IDLE)]
        assert state_periods(log, S.ACTIVE, 5.0) == [1.0, 1.0]


class TestSummary:
    def test_of_durations(self):
        summary = PeriodSummary.of([1.0, 3.0, 2.0])
        assert summary.count == 3
        assert summary.total == 6.0
        assert summary.mean == 2.0
        assert summary.longest == 3.0

    def test_empty(self):
        summary = PeriodSummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0


class TestReportIntegration:
    def make_report(self, record):
        from repro.core.static_scheduler import StaticScheduler
        from repro.placement.catalog import PlacementCatalog
        from repro.power.profile import BARRACUDA
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.types import Request

        catalog = PlacementCatalog({0: [0]})
        requests = [
            Request(time=0.0, request_id=0, data_id=0),
            Request(time=200.0, request_id=1, data_id=0),
        ]
        config = SimulationConfig(
            num_disks=2,
            profile=BARRACUDA,
            record_transitions=record,
            drain_slack=60.0,
        )
        return simulate(requests, catalog, StaticScheduler(), config)

    def test_standby_periods_extracted(self):
        report = self.make_report(record=True)
        periods = standby_periods_of_report(report)
        # Disk 0: between the two far-apart requests + the tail;
        # disk 1: asleep the whole run.
        assert len(periods) >= 3
        assert max(periods) >= 100.0

    def test_idle_periods_bounded_by_threshold(self):
        from repro.power.profile import BARRACUDA

        report = self.make_report(record=True)
        for period in idle_periods_of_report(report):
            assert period <= BARRACUDA.breakeven_time + 1e-6

    def test_without_recording_no_periods(self):
        report = self.make_report(record=False)
        assert standby_periods_of_report(report) == []
