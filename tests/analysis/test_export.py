"""Tests for CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    figure_to_csv,
    figure_to_json,
    report_to_dict,
    report_to_json,
)
from repro.errors import ConfigurationError
from repro.experiments.figures import FigureResult


@pytest.fixture
def figure():
    return FigureResult(
        figure_id="figX",
        title="test figure",
        x_label="rf",
        x_values=[1, 2, 3],
        series={"a": [0.1, 0.2, 0.3], "b": [1.0, 2.0, 3.0]},
    )


class TestFigureExport:
    def test_csv_round_trip(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["rf", "a", "b"]
        assert rows[1] == ["1", "0.1", "1.0"]
        assert len(rows) == 4

    def test_json_payload(self, figure):
        payload = json.loads(figure_to_json(figure))
        assert payload["figure_id"] == "figX"
        assert payload["series"]["b"] == [1.0, 2.0, 3.0]
        assert payload["x_values"] == [1, 2, 3]

    def test_rejects_non_figure(self):
        with pytest.raises(ConfigurationError):
            figure_to_csv("not a figure")


class TestReportExport:
    def make_report(self):
        from repro.core.static_scheduler import StaticScheduler
        from repro.placement.catalog import PlacementCatalog
        from repro.power.profile import PAPER_UNIT
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.types import Request

        catalog = PlacementCatalog({0: [0]})
        requests = [Request(time=0.0, request_id=0, data_id=0)]
        config = SimulationConfig(
            num_disks=1, profile=PAPER_UNIT, drain_slack=1.0
        )
        return simulate(requests, catalog, StaticScheduler(), config)

    def test_dict_fields(self):
        payload = report_to_dict(self.make_report())
        assert payload["scheduler"] == "Static"
        assert payload["requests_completed"] == 1
        assert "mean_response_s" in payload

    def test_json_serialises(self):
        payload = json.loads(report_to_json(self.make_report()))
        assert payload["spin_downs"] >= 1
