"""Tests for table rendering."""

import pytest

from repro.analysis.tables import format_breakdown, format_series_table, format_table
from repro.errors import ConfigurationError
from repro.power.states import STATE_ORDER, DiskPowerState


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len({line.index("bbb") for line in lines[:1]}) == 1
        assert lines[1].startswith("-")

    def test_title_included(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSeriesTable:
    def test_one_row_per_x(self):
        text = format_series_table(
            "rf", [1, 2, 3], {"s": [0.1, 0.2, 0.3]}
        )
        assert len(text.splitlines()) == 2 + 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series_table("x", [1, 2], {"s": [1.0]})

    def test_precision_respected(self):
        text = format_series_table(
            "x", [1], {"s": [0.123456]}, precision=2
        )
        assert "0.12" in text
        assert "0.1235" not in text


class TestBreakdown:
    def test_samples_rows(self):
        fractions = [
            {state: (1.0 if state is DiskPowerState.STANDBY else 0.0) for state in DiskPowerState}
            for _ in range(100)
        ]
        text = format_breakdown(fractions, STATE_ORDER, max_rows=5)
        # 5 sampled rows + header + separator.
        assert len(text.splitlines()) == 7

    def test_empty(self):
        assert "no disks" in format_breakdown([], STATE_ORDER)
