"""Tests for the core value types."""

import pytest

from repro.types import DEFAULT_REQUEST_BYTES, Assignment, OpKind, Request


class TestRequest:
    def test_defaults(self):
        request = Request(time=1.0, request_id=0, data_id=5)
        assert request.size_bytes == DEFAULT_REQUEST_BYTES == 512 * 1024
        assert request.op is OpKind.READ

    def test_ordering_by_time_then_id(self):
        a = Request(time=1.0, request_id=0, data_id=0)
        b = Request(time=1.0, request_id=1, data_id=0)
        c = Request(time=0.5, request_id=2, data_id=0)
        assert sorted([b, a, c]) == [c, a, b]

    def test_data_id_not_part_of_ordering(self):
        a = Request(time=1.0, request_id=0, data_id=9)
        b = Request(time=1.0, request_id=0, data_id=1)
        assert a == b  # compare fields: time + request_id only

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Request(time=-0.1, request_id=0, data_id=0)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            Request(time=0.0, request_id=0, data_id=0, size_bytes=0)

    def test_frozen(self):
        request = Request(time=0.0, request_id=0, data_id=0)
        with pytest.raises(AttributeError):
            request.time = 5.0

    def test_write_op_carried(self):
        request = Request(time=0.0, request_id=0, data_id=0, op=OpKind.WRITE)
        assert request.op is OpKind.WRITE


class TestAssignmentChains:
    def test_chains_split_by_disk(self):
        requests = [
            Request(time=float(t), request_id=t, data_id=0) for t in range(4)
        ]
        assignment = Assignment.from_mapping(
            requests, {0: 0, 1: 1, 2: 0, 3: 1}
        )
        chains = assignment.chains()
        assert [r.request_id for r in chains[0]] == [0, 2]
        assert [r.request_id for r in chains[1]] == [1, 3]

    def test_len_and_contains(self):
        requests = [Request(time=0.0, request_id=0, data_id=0)]
        assignment = Assignment(requests)
        assert len(assignment) == 0
        assert 0 not in assignment
        assignment.assign(0, 3)
        assert len(assignment) == 1
        assert 0 in assignment
        assert assignment.get(0) == 3
        assert assignment.get(99) is None

    def test_requests_property_sorted(self):
        requests = [
            Request(time=2.0, request_id=1, data_id=0),
            Request(time=1.0, request_id=0, data_id=0),
        ]
        assignment = Assignment(requests)
        assert [r.request_id for r in assignment.requests] == [0, 1]
