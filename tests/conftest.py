"""Shared fixtures: the paper's worked example and small workloads."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.problem import SchedulingProblem
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import BARRACUDA, PAPER_EVAL, PAPER_UNIT
from repro.types import Request


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache_dir(tmp_path_factory):
    """Point the persistent run cache at a session-temporary directory.

    Tests must never read results cached by earlier (possibly different)
    code, nor litter the user's real ``~/.cache``.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("run-cache"))
    yield


@pytest.fixture
def paper_catalog() -> PlacementCatalog:
    """The Fig. 2/3 placement: b1..b6 over d1..d4 (0-based ids).

    d1 = {b1, b2, b3, b5}, d2 = {b2, b3}, d3 = {b4, b6}, d4 = {b3, b4, b5, b6}.
    """
    return PlacementCatalog(
        {
            0: [0],
            1: [0, 1],
            2: [0, 1, 3],
            3: [2, 3],
            4: [0, 3],
            5: [2, 3],
        }
    )


@pytest.fixture
def paper_requests() -> list:
    """Fig. 3 arrival times: r1..r6 at 0, 1, 3, 5, 12, 13; ri wants bi."""
    times = [0.0, 1.0, 3.0, 5.0, 12.0, 13.0]
    return [
        Request(time=t, request_id=i, data_id=i) for i, t in enumerate(times)
    ]


@pytest.fixture
def paper_problem(paper_requests, paper_catalog) -> SchedulingProblem:
    return SchedulingProblem.build(paper_requests, paper_catalog, PAPER_UNIT, 4)


@pytest.fixture
def batch_requests() -> list:
    """Fig. 2 batch variant: all six requests arrive at time 0."""
    return [Request(time=0.0, request_id=i, data_id=i) for i in range(6)]


@pytest.fixture
def batch_problem(batch_requests, paper_catalog) -> SchedulingProblem:
    return SchedulingProblem.build(batch_requests, paper_catalog, PAPER_UNIT, 4)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def unit_profile():
    return PAPER_UNIT


@pytest.fixture
def barracuda():
    return BARRACUDA


@pytest.fixture
def eval_profile():
    return PAPER_EVAL
