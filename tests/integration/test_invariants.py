"""Property-based end-to-end invariants of the full simulator.

Random workloads + random placements are replayed through every scheduler
and physically-meaningful invariants are checked:

* every offered request completes (the horizon covers the drain);
* response time >= 0 for every request; with spin-up time Tup, no request
  waits longer than the queue ahead of it + transition overheads;
* per-disk state times tile the simulation duration exactly;
* spin-ups and spin-downs never differ by more than one per disk;
* total energy is bounded by the always-on energy from above (2CPM only
  sheds energy) and by standby-everything from below;
* 2CPM never leaves a disk idle for longer than TB + epsilon without
  spinning down.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristic import HeuristicScheduler
from repro.core.random_scheduler import RandomScheduler
from repro.core.static_scheduler import StaticScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.disk.service import ConstantServiceModel
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.profile import BARRACUDA
from repro.power.states import DiskPowerState
from repro.sim.config import SimulationConfig
from repro.sim.runner import always_on_baseline, simulate
from repro.traces.record import TraceRecord
from repro.traces.workload import Workload


SCHEDULER_FACTORIES = (
    StaticScheduler,
    lambda: RandomScheduler(seed=3),
    HeuristicScheduler,
    lambda: WSCBatchScheduler(interval=0.5),
)


@st.composite
def small_workloads(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    num_requests = draw(st.integers(min_value=1, max_value=40))
    num_data = draw(st.integers(min_value=1, max_value=10))
    num_disks = draw(st.integers(min_value=2, max_value=6))
    rf = draw(st.integers(min_value=1, max_value=num_disks))
    records = []
    t = 0.0
    for _ in range(num_requests):
        t += rng.expovariate(0.2)  # sparse: exercises spin cycles
        records.append(TraceRecord(time=t, data_key=rng.randrange(num_data)))
    workload = Workload(records)
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=rf),
        num_disks=num_disks,
        seed=seed,
    )
    return requests, catalog, num_disks, seed


def run_one(requests, catalog, num_disks, seed, scheduler, service=0.001):
    config = SimulationConfig(
        num_disks=num_disks,
        profile=BARRACUDA,
        service_model=ConstantServiceModel(service),
        seed=seed,
        drain_slack=120.0,
    )
    return simulate(requests, catalog, scheduler, config), config


@given(data=small_workloads(), scheduler_index=st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_all_requests_complete_and_times_tile(data, scheduler_index):
    requests, catalog, num_disks, seed = data
    scheduler = SCHEDULER_FACTORIES[scheduler_index]()
    report, _config = run_one(requests, catalog, num_disks, seed, scheduler)

    assert report.requests_completed == len(requests)
    assert all(rt >= 0 for rt in report.response_times)
    for stats in report.disk_stats.values():
        assert stats.total_time == pytest.approx(report.duration, rel=1e-9)
        assert abs(stats.spin_ups - stats.spin_downs) <= 1


@given(data=small_workloads(), scheduler_index=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_energy_bounds(data, scheduler_index):
    requests, catalog, num_disks, seed = data
    scheduler = SCHEDULER_FACTORIES[scheduler_index]()
    report, config = run_one(requests, catalog, num_disks, seed, scheduler)
    baseline = always_on_baseline(requests, catalog, config)

    # Upper bound: always-on, plus the transition premium 2CPM can burn
    # (each spin cycle costs at most Eup+Edown above idle).
    cycles = max(report.spin_ups, report.spin_downs)
    upper = baseline.total_energy + cycles * BARRACUDA.transition_energy
    assert report.total_energy <= upper + 1e-6

    # Lower bound: everything in standby the whole time.
    lower = num_disks * report.duration * BARRACUDA.standby_power
    assert report.total_energy >= lower - 1e-6


@given(data=small_workloads())
@settings(max_examples=25, deadline=None)
def test_2cpm_idle_periods_bounded(data):
    """No disk may accumulate more idle time than (requests+1) * TB."""
    requests, catalog, num_disks, seed = data
    report, _config = run_one(
        requests, catalog, num_disks, seed, StaticScheduler()
    )
    threshold = BARRACUDA.breakeven_time
    for stats in report.disk_stats.values():
        max_idle = (stats.requests_serviced + 1) * threshold + 1e-6
        assert stats.state_time[DiskPowerState.IDLE] <= max_idle


@given(data=small_workloads())
@settings(max_examples=25, deadline=None)
def test_untouched_disks_stay_standby(data):
    requests, catalog, num_disks, seed = data
    report, _config = run_one(
        requests, catalog, num_disks, seed, StaticScheduler()
    )
    for stats in report.disk_stats.values():
        if stats.requests_serviced == 0:
            assert stats.standby_fraction() == pytest.approx(1.0)
            assert stats.spin_ups == 0


@given(data=small_workloads())
@settings(max_examples=20, deadline=None)
def test_identical_seeds_identical_reports(data):
    requests, catalog, num_disks, seed = data
    first, _ = run_one(requests, catalog, num_disks, seed, StaticScheduler())
    second, _ = run_one(requests, catalog, num_disks, seed, StaticScheduler())
    assert first.total_energy == second.total_energy
    assert first.response_times == second.response_times
