"""End-to-end scenario tests at small (but non-trivial) scale.

These replay a scaled Cello-like trace through every scheduler and check
the *qualitative* results the paper reports — the same checks the
benchmarks make at full scale.
"""

import pytest

from repro.core.heuristic import HeuristicScheduler
from repro.core.mwis import MWISOfflineScheduler
from repro.core.random_scheduler import RandomScheduler
from repro.core.static_scheduler import StaticScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.profile import PAPER_EVAL
from repro.sim.config import SimulationConfig
from repro.sim.runner import always_on_baseline, run_offline, simulate
from repro.traces.cello import CelloLikeConfig, generate_cello_like
from repro.traces.workload import Workload

SCALE = 0.08
NUM_DISKS = 14


@pytest.fixture(scope="module")
def workload():
    return Workload(generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1))


def bind(workload, rf):
    return workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=rf),
        num_disks=NUM_DISKS,
        seed=9,
    )


def config():
    return SimulationConfig(num_disks=NUM_DISKS, profile=PAPER_EVAL, seed=2)


@pytest.fixture(scope="module")
def rf3_reports(workload):
    requests, catalog = bind(workload, 3)
    cfg = config()
    reports = {
        "static": simulate(requests, catalog, StaticScheduler(), cfg),
        "random": simulate(requests, catalog, RandomScheduler(seed=4), cfg),
        "heuristic": simulate(requests, catalog, HeuristicScheduler(), cfg),
        "wsc": simulate(requests, catalog, WSCBatchScheduler(), cfg),
        "always_on": always_on_baseline(requests, catalog, cfg),
    }
    reports["mwis"] = run_offline(
        requests, catalog, MWISOfflineScheduler(neighborhood=4), cfg
    )
    return reports


class TestReplicationFactor3:
    def test_everything_completes(self, rf3_reports):
        for key in ("static", "random", "heuristic", "wsc"):
            report = rf3_reports[key]
            assert report.requests_completed == report.requests_offered

    def test_energy_aware_beats_static(self, rf3_reports):
        base = rf3_reports["always_on"].total_energy
        static = rf3_reports["static"].total_energy / base
        heuristic = rf3_reports["heuristic"].total_energy / base
        wsc = rf3_reports["wsc"].total_energy / base
        assert heuristic < static
        assert wsc < static

    def test_mwis_is_best(self, rf3_reports):
        base = rf3_reports["always_on"].total_energy
        mwis = rf3_reports["mwis"].report.total_energy / base
        for key in ("static", "random", "heuristic", "wsc"):
            assert mwis < rf3_reports[key].total_energy / base

    def test_random_is_worst_energy(self, rf3_reports):
        random_energy = rf3_reports["random"].total_energy
        for key in ("static", "heuristic", "wsc"):
            assert rf3_reports[key].total_energy < random_energy

    def test_heuristic_improves_response_time(self, rf3_reports):
        assert (
            rf3_reports["heuristic"].mean_response_time
            < rf3_reports["static"].mean_response_time
        )

    def test_energy_aware_fewer_spin_ops(self, rf3_reports):
        assert (
            rf3_reports["heuristic"].spin_operations
            < rf3_reports["static"].spin_operations
        )

    def test_always_on_has_zero_spin_downs(self, rf3_reports):
        assert rf3_reports["always_on"].spin_downs == 0

    def test_standby_share_higher_for_energy_aware(self, rf3_reports):
        """The Fig. 9 observation: WSC pushes more disks into standby."""
        from repro.power.states import DiskPowerState

        def standby_share(report):
            fractions = report.per_disk_fractions()
            return sum(f[DiskPowerState.STANDBY] for f in fractions) / len(fractions)

        assert standby_share(rf3_reports["wsc"]) > standby_share(
            rf3_reports["random"]
        )


class TestReplicationSweep:
    def test_heuristic_energy_falls_with_replication(self, workload):
        cfg = config()
        energies = []
        for rf in (1, 3, 5):
            requests, catalog = bind(workload, rf)
            base = always_on_baseline(requests, catalog, cfg).total_energy
            report = simulate(requests, catalog, HeuristicScheduler(), cfg)
            energies.append(report.total_energy / base)
        assert energies[0] > energies[1] > energies[2]

    def test_static_energy_flat_in_replication(self, workload):
        cfg = config()
        energies = []
        for rf in (1, 5):
            requests, catalog = bind(workload, rf)
            base = always_on_baseline(requests, catalog, cfg).total_energy
            report = simulate(requests, catalog, StaticScheduler(), cfg)
            energies.append(report.total_energy / base)
        assert energies[0] == pytest.approx(energies[1], rel=0.05)

    def test_rf1_all_schedulers_equal_energy(self, workload):
        cfg = config()
        requests, catalog = bind(workload, 1)
        static = simulate(requests, catalog, StaticScheduler(), cfg)
        rand = simulate(requests, catalog, RandomScheduler(seed=0), cfg)
        heuristic = simulate(requests, catalog, HeuristicScheduler(), cfg)
        assert static.total_energy == pytest.approx(rand.total_energy)
        assert static.total_energy == pytest.approx(heuristic.total_energy)
