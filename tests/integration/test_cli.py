"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import common
from repro.experiments.harness.schema import validate_bench_file


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    """Shrink the experiment scale so CLI tests stay fast."""
    monkeypatch.setattr(common, "SCALE", 0.05)
    monkeypatch.setattr(common, "MWIS_SCALE", 0.05)
    common.clear_caches()
    yield
    common.clear_caches()


class TestParser:
    def test_profile_defaults_to_paper_eval(self):
        args = build_parser().parse_args(["profile"])
        assert args.name == "paper-evaluation"

    def test_figure_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "both"
        assert args.requests == 2000
        assert args.arrival == "poisson"
        assert not args.wall

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "clairvoyant"])


class TestCommands:
    def test_profile_prints_breakeven(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "breakeven" in out

    def test_profile_by_name(self, capsys):
        assert main(["profile", "paper-unit-model"]) == 0
        assert "paper-unit-model" in capsys.readouterr().out

    def test_simulate_prints_normalized_energy(self, capsys):
        code = main(
            ["simulate", "--scheduler", "static", "--replication", "2"]
        )
        assert code == 0
        assert "normalized energy" in capsys.readouterr().out

    def test_compare_lists_all_schedulers(self, capsys):
        assert main(["compare", "--replication", "2"]) == 0
        out = capsys.readouterr().out
        for label in ("Static", "Random", "Heuristic", "WSC", "MWIS"):
            assert label in out

    def test_figure_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        assert "breakeven" in capsys.readouterr().out

    def test_headline_scorecard(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "up to 55%" in out
        assert "measured" in out

    def test_serve_writes_valid_reports_for_both_policies(
        self, capsys, tmp_path
    ):
        code = main(
            [
                "serve",
                "--requests",
                "120",
                "--rate",
                "60",
                "--disks",
                "6",
                "--replication",
                "2",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("SERVE_online.json", "SERVE_micro_batch.json"):
            path = tmp_path / name
            assert path.is_file()
            assert validate_bench_file(path) == []
            document = json.loads(path.read_text())
            assert document["result"]["outcome"]["completed"] == 120
            # Virtual-clock runs must be free of wall-clock fields.
            assert document["created_unix"] == 0.0
            assert document["peak_rss_bytes"] is None
        assert "online" in out and "micro-batch" in out

    def test_serve_single_policy_is_deterministic(self, tmp_path):
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        for out_dir in (first_dir, second_dir):
            code = main(
                [
                    "serve",
                    "--policy",
                    "online",
                    "--requests",
                    "80",
                    "--rate",
                    "40",
                    "--disks",
                    "6",
                    "--replication",
                    "2",
                    "--output-dir",
                    str(out_dir),
                ]
            )
            assert code == 0
        first = (first_dir / "SERVE_online.json").read_text()
        second = (second_dir / "SERVE_online.json").read_text()
        assert first == second


class TestExitCodes:
    """Every subcommand returns an explicit int status (satellite b)."""

    def test_domain_errors_exit_one(self, capsys):
        assert main(["profile", "no-such-profile"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_unknown_name_exits_one(self, capsys):
        assert main(["bench", "no-such-bench"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_usage_errors_exit_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "fig99"])
        assert excinfo.value.code == 2
