"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import common


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    """Shrink the experiment scale so CLI tests stay fast."""
    monkeypatch.setattr(common, "SCALE", 0.05)
    monkeypatch.setattr(common, "MWIS_SCALE", 0.05)
    common.clear_caches()
    yield
    common.clear_caches()


class TestParser:
    def test_profile_defaults_to_paper_eval(self):
        args = build_parser().parse_args(["profile"])
        assert args.name == "paper-evaluation"

    def test_figure_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_profile_prints_breakeven(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "breakeven" in out

    def test_profile_by_name(self, capsys):
        assert main(["profile", "paper-unit-model"]) == 0
        assert "paper-unit-model" in capsys.readouterr().out

    def test_simulate_prints_normalized_energy(self, capsys):
        code = main(
            ["simulate", "--scheduler", "static", "--replication", "2"]
        )
        assert code == 0
        assert "normalized energy" in capsys.readouterr().out

    def test_compare_lists_all_schedulers(self, capsys):
        assert main(["compare", "--replication", "2"]) == 0
        out = capsys.readouterr().out
        for label in ("Static", "Random", "Heuristic", "WSC", "MWIS"):
            assert label in out

    def test_figure_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        assert "breakeven" in capsys.readouterr().out

    def test_headline_scorecard(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "up to 55%" in out
        assert "measured" in out
