"""Smoke tests: the fast example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_offline_optimal_reproduces_the_worked_example():
    result = run_example("offline_optimal.py")
    assert result.returncode == 0, result.stderr
    assert "schedule C (optimal): energy = 19" in result.stdout
    assert "saving 11" in result.stdout


def test_replay_real_trace_with_synthetic_sample():
    result = run_example("replay_real_trace.py")
    assert result.returncode == 0, result.stderr
    assert "energy vs always-on" in result.stdout


def test_replay_real_trace_parses_given_file(tmp_path):
    trace = tmp_path / "sample.spc"
    lines = [f"0,{i * 8},4096,r,{i * 0.5}" for i in range(400)]
    trace.write_text("\n".join(lines))
    result = run_example("replay_real_trace.py", str(trace))
    assert result.returncode == 0, result.stderr
    assert "parsed 400 records" in result.stdout


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "placement_sensitivity.py", "cost_tradeoff.py",
     "extensions_tour.py"],
)
def test_heavy_examples_importable(name):
    """The longer examples at least compile (full runs live in docs/CI)."""
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
