"""Metamorphic tests: transformations with predictable effect on results.

These pin down the simulator's physics without reference values: scaling
powers, shifting time, and composing disjoint systems must change the
outputs in exactly the way dimensional analysis predicts.
"""

import pytest

from repro.core.static_scheduler import StaticScheduler
from repro.disk.service import ConstantServiceModel
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import BARRACUDA
from repro.sim.config import SimulationConfig
from repro.sim.runner import always_on_baseline, simulate
from repro.types import Request


def make_requests(times, data_ids):
    return [
        Request(time=t, request_id=i, data_id=d)
        for i, (t, d) in enumerate(zip(times, data_ids))
    ]


BASE_TIMES = [0.0, 4.0, 9.0, 120.0, 121.0, 400.0]
BASE_DATA = [0, 1, 0, 1, 0, 1]


def run(catalog, requests, profile=BARRACUDA, num_disks=2, horizon=None):
    config = SimulationConfig(
        num_disks=num_disks,
        profile=profile,
        service_model=ConstantServiceModel(0.001),
        horizon=horizon,
        drain_slack=60.0,
    )
    return simulate(requests, catalog, StaticScheduler(), config)


class TestPowerScaling:
    def test_always_on_energy_scales_with_idle_power(self):
        catalog = PlacementCatalog({0: [0], 1: [1]})
        requests = make_requests(BASE_TIMES, BASE_DATA)
        # Pin the horizon: doubling idle power halves TB, which would
        # otherwise change the *derived* horizon and muddy the comparison.
        horizon = max(BASE_TIMES) + 100.0
        config = SimulationConfig(
            num_disks=2,
            profile=BARRACUDA,
            service_model=ConstantServiceModel(0.0),
            horizon=horizon,
        )
        doubled = SimulationConfig(
            num_disks=2,
            profile=BARRACUDA.with_overrides(
                idle_power=BARRACUDA.idle_power * 2,
                active_power=BARRACUDA.active_power * 2,
            ),
            service_model=ConstantServiceModel(0.0),
            horizon=horizon,
        )
        base = always_on_baseline(requests, catalog, config)
        double = always_on_baseline(requests, catalog, doubled)
        assert double.total_energy == pytest.approx(2 * base.total_energy)

    def test_scaling_all_powers_scales_total_energy(self):
        """Multiplying every power by k multiplies energy by k: the
        breakeven time is a power *ratio*, so behaviour is unchanged."""
        catalog = PlacementCatalog({0: [0], 1: [1]})
        requests = make_requests(BASE_TIMES, BASE_DATA)
        k = 3.0
        scaled_profile = BARRACUDA.with_overrides(
            idle_power=BARRACUDA.idle_power * k,
            active_power=BARRACUDA.active_power * k,
            standby_power=BARRACUDA.standby_power * k,
            spin_up_power=BARRACUDA.spin_up_power * k,
            spin_down_power=BARRACUDA.spin_down_power * k,
        )
        assert scaled_profile.breakeven_time == pytest.approx(
            BARRACUDA.breakeven_time
        )
        base = run(catalog, requests)
        scaled = run(catalog, requests, profile=scaled_profile)
        assert scaled.total_energy == pytest.approx(k * base.total_energy)
        assert scaled.spin_operations == base.spin_operations
        assert scaled.response_times == base.response_times


class TestTimeShift:
    def test_shift_adds_only_standby_energy(self):
        catalog = PlacementCatalog({0: [0], 1: [1]})
        shift = 500.0
        base_requests = make_requests(BASE_TIMES, BASE_DATA)
        shifted_requests = make_requests(
            [t + shift for t in BASE_TIMES], BASE_DATA
        )
        base = run(catalog, base_requests)
        shifted = run(catalog, shifted_requests)
        # Both disks sleep through the added lead-in.
        expected_extra = 2 * shift * BARRACUDA.standby_power
        assert shifted.total_energy - base.total_energy == pytest.approx(
            expected_extra, rel=1e-6
        )
        assert shifted.response_times == pytest.approx(base.response_times)


class TestComposition:
    def test_disjoint_systems_compose_additively(self):
        """Two independent halves simulated together = the sum of the
        halves simulated apart (same horizon)."""
        catalog_a = PlacementCatalog({0: [0], 1: [1]})
        catalog_b = PlacementCatalog({0: [0], 1: [1]})
        requests = make_requests(BASE_TIMES, BASE_DATA)
        horizon = max(BASE_TIMES) + 200.0

        part_a = run(catalog_a, requests, horizon=horizon)
        part_b = run(catalog_b, requests, horizon=horizon)

        joint_catalog = PlacementCatalog(
            {0: [0], 1: [1], 100: [2], 101: [3]}
        )
        joint_requests = make_requests(BASE_TIMES, BASE_DATA) + [
            Request(time=t, request_id=100 + i, data_id=100 + d)
            for i, (t, d) in enumerate(zip(BASE_TIMES, BASE_DATA))
        ]
        joint = run(
            joint_catalog, joint_requests, num_disks=4, horizon=horizon
        )
        assert joint.total_energy == pytest.approx(
            part_a.total_energy + part_b.total_energy, rel=1e-9
        )
        assert joint.spin_operations == part_a.spin_operations + part_b.spin_operations
