"""Fault-sweep tier: zero-rate identity, monotone degradation, no crashes."""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    baseline_spec,
    canonical_json,
    cell_spec,
    execute_spec,
)
from repro.experiments.fault_sweep import SWEEP_SCHEDULERS

SCALE = 0.05
SEED = 1

#: A compact rate grid for the test tier (the bench sweeps more points).
RATES = (0.0, 1e-4, 5e-4, 1e-3)


def _availability(payload: Dict[str, Any]) -> float:
    report = payload["report"]
    if "availability" not in report:
        return 1.0
    avail = report["availability"]
    downtime = sum(avail["downtime_s"].values())
    disk_seconds = avail["disk_seconds"]
    return max(0.0, 1.0 - downtime / disk_seconds) if disk_seconds else 1.0


class TestSpecSurface:
    def test_fault_rate_in_cache_key_and_label(self) -> None:
        spec = cell_spec("cello", 3, "static", scale=SCALE, seed=SEED, fault_rate=5e-4)
        assert spec.key_payload()["fault_rate"] == 5e-4
        assert spec.label().endswith("/f0.0005")
        plain = cell_spec("cello", 3, "static", scale=SCALE, seed=SEED)
        assert plain != spec
        assert "/f" not in plain.label()

    def test_negative_fault_rate_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="fault_rate"):
            cell_spec("cello", 3, "static", scale=SCALE, seed=SEED, fault_rate=-1e-4)

    def test_baseline_specs_must_stay_fault_free(self) -> None:
        plain = baseline_spec("cello", scale=SCALE, seed=SEED)
        with pytest.raises(ConfigurationError, match="fault-free"):
            replace(plain, fault_rate=1e-4)

    def test_mwis_specs_cannot_be_fault_injected(self) -> None:
        with pytest.raises(ConfigurationError, match="mwis"):
            cell_spec("cello", 3, "mwis", scale=SCALE, seed=SEED, fault_rate=1e-4)


class TestZeroRateIdentity:
    def test_rate_zero_is_the_no_fault_spec(self) -> None:
        # fault_rate=0.0 is not a distinct cell: it IS the ordinary spec,
        # so the sweep's zero column reuses cached no-fault runs.
        plain = cell_spec("cello", 3, "heuristic", scale=SCALE, seed=SEED)
        zero = cell_spec(
            "cello", 3, "heuristic", scale=SCALE, seed=SEED, fault_rate=0.0
        )
        assert zero == plain
        payload = execute_spec(zero)
        assert "availability" not in payload["report"]

    def test_faulted_payload_carries_availability(self) -> None:
        spec = cell_spec(
            "cello", 3, "heuristic", scale=SCALE, seed=SEED, fault_rate=1e-3
        )
        payload = execute_spec(spec)
        avail = payload["report"]["availability"]
        assert avail["disk_failures"] > 0
        assert avail["disk_seconds"] > 0
        assert _availability(payload) < 1.0


class TestDegradationCurve:
    def test_availability_monotone_in_rate(self) -> None:
        availabilities: List[float] = []
        for rate in RATES:
            payload = execute_spec(
                cell_spec(
                    "cello", 3, "static", scale=SCALE, seed=SEED, fault_rate=rate
                )
            )
            availabilities.append(_availability(payload))
        assert availabilities[0] == 1.0
        for lower, higher in zip(availabilities[1:], availabilities):
            assert lower <= higher
        assert availabilities[-1] < 1.0

    def test_no_scheduler_crashes_at_high_rate(self) -> None:
        for key in SWEEP_SCHEDULERS:
            payload = execute_spec(
                cell_spec(
                    "cello", 3, key, scale=SCALE, seed=SEED, fault_rate=1e-3
                )
            )
            report = payload["report"]
            lost = report["availability"].get("requests_lost", 0)
            assert report["requests_completed"] + lost <= report["requests_offered"]
            assert report["requests_completed"] > 0

    def test_same_rate_same_schedule_across_runs(self) -> None:
        spec = cell_spec(
            "cello", 3, "random", scale=SCALE, seed=SEED, fault_rate=5e-4
        )
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert canonical_json(first["report"]) == canonical_json(second["report"])
