"""Drive-level fault behaviour: crash-stop, repair, spin-up failures."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.disk.drive import SimulatedDisk
from repro.disk.service import ConstantServiceModel
from repro.errors import ReplicaUnavailableError, SimulationError
from repro.faults import DiskHealth, SpinUpFaults
from repro.power.policy import TwoCompetitivePolicy
from repro.power.profile import BARRACUDA
from repro.power.states import DiskPowerState
from repro.sim.engine import SimulationEngine
from repro.types import DiskId, Request

TUP = BARRACUDA.spin_up_time

Completions = List[Tuple[Request, float]]


def make_disk(
    engine: SimulationEngine,
    service: float = 0.0,
    initial_state: DiskPowerState = DiskPowerState.STANDBY,
) -> Tuple[SimulatedDisk, Completions]:
    completions: Completions = []

    def on_complete(request: Request, disk_id: DiskId, now: float) -> None:
        del disk_id
        completions.append((request, now))

    disk = SimulatedDisk(
        disk_id=0,
        engine=engine,
        profile=BARRACUDA,
        policy=TwoCompetitivePolicy(),
        service_model=ConstantServiceModel(service),
        rng=random.Random(0),
        on_complete=on_complete,
        initial_state=initial_state,
    )
    return disk, completions


def req(time: float, rid: int = 0) -> Request:
    return Request(time=time, request_id=rid, data_id=0)


class TestCrashStop:
    def test_fail_drains_in_service_and_queue(self) -> None:
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=1.0, initial_state=DiskPowerState.IDLE
        )
        for i in range(3):
            engine.schedule(0.0, lambda i=i: disk.submit(req(0.0, i)))
        engine.run(until=0.5)  # first request mid-service, two queued
        disk.enable_fault_injection()
        drained = disk.fail(permanent=True)
        assert [r.request_id for r in drained] == [0, 1, 2]
        assert disk.health is DiskHealth.FAILED
        assert disk.state is DiskPowerState.STANDBY
        assert disk.queue_length == 0
        assert not completions

    def test_crash_stop_counts_no_spin_operations(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(
            engine, service=1.0, initial_state=DiskPowerState.IDLE
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=0.5)
        disk.enable_fault_injection()
        disk.fail(permanent=True)
        # An orderly spin-down would count; a crash-stop must not.
        assert disk.stats.spin_ups == 0
        assert disk.stats.spin_downs == 0

    def test_submit_on_failed_disk_rejected(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        disk.enable_fault_injection()
        disk.fail(permanent=True)
        with pytest.raises(ReplicaUnavailableError, match="failed"):
            disk.submit(req(0.0))

    def test_submit_on_down_disk_rejected(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        disk.enable_fault_injection()
        disk.fail(permanent=False)
        assert disk.health is DiskHealth.DOWN
        assert not disk.is_available
        with pytest.raises(ReplicaUnavailableError, match="down"):
            disk.submit(req(0.0))

    def test_double_fail_rejected(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        disk.enable_fault_injection()
        disk.fail(permanent=True)
        with pytest.raises(SimulationError, match="failed twice"):
            disk.fail(permanent=True)


class TestRepair:
    def test_repair_restores_service(self) -> None:
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, initial_state=DiskPowerState.IDLE
        )
        disk.enable_fault_injection()
        disk.fail(permanent=False)
        disk.repair()
        assert disk.health is DiskHealth.HEALTHY
        assert disk.is_available
        engine.schedule(1.0, lambda: disk.submit(req(1.0)))
        engine.run(until=TUP + 2.0)
        assert len(completions) == 1

    def test_repair_requires_down_health(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        disk.enable_fault_injection()
        with pytest.raises(SimulationError, match="repair"):
            disk.repair()  # healthy
        disk.fail(permanent=True)
        with pytest.raises(SimulationError, match="repair"):
            disk.repair()  # permanently failed


class TestEpochGuard:
    def test_stale_service_completion_dropped_across_fail(self) -> None:
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=5.0, initial_state=DiskPowerState.IDLE
        )
        disk.enable_fault_injection()
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.run(until=1.0)  # in service; completion queued for t=5
        disk.fail(permanent=False)
        disk.repair()
        # The pre-failure completion event fires at t=5 but belongs to a
        # dead epoch: it must neither complete nor corrupt the machine.
        engine.run(until=6.0)
        assert completions == []
        assert disk.state is DiskPowerState.STANDBY

    def test_disk_serves_normally_after_repair(self) -> None:
        engine = SimulationEngine()
        disk, completions = make_disk(
            engine, service=5.0, initial_state=DiskPowerState.IDLE
        )
        disk.enable_fault_injection()
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 0)))
        engine.run(until=1.0)
        disk.fail(permanent=False)
        disk.repair()
        engine.schedule(10.0, lambda: disk.submit(req(10.0, 1)))
        engine.run(until=10.0 + TUP + 6.0)
        assert [r.request_id for r, _ in completions] == [1]
        assert completions[0][1] == pytest.approx(10.0 + TUP + 5.0)


class TestSpinUpFailures:
    def _make_faulty(
        self, engine: SimulationEngine, max_retries: int
    ) -> Tuple[SimulatedDisk, List[DiskId], List[List[Request]]]:
        disk, _ = make_disk(engine)  # STANDBY: first submit spins up
        failures: List[DiskId] = []
        deaths: List[List[Request]] = []
        disk.enable_fault_injection(
            spin_up=SpinUpFaults(probability=1.0, max_retries=max_retries),
            spin_up_rng=random.Random(7),
            on_spin_up_failure=failures.append,
            on_fault_death=lambda disk_id, drained: deaths.append(drained),
        )
        return disk, failures, deaths

    def test_rng_required_for_spin_up_faults(self) -> None:
        engine = SimulationEngine()
        disk, _ = make_disk(engine)
        with pytest.raises(SimulationError, match="dedicated RNG"):
            disk.enable_fault_injection(
                spin_up=SpinUpFaults(probability=1.0)
            )

    def test_retries_then_bricks_after_budget(self) -> None:
        engine = SimulationEngine()
        disk, failures, deaths = self._make_faulty(engine, max_retries=2)
        engine.schedule(0.0, lambda: disk.submit(req(0.0, 5)))
        engine.run(until=10 * TUP)
        # Initial attempt + 2 retries, each paying the full Tup, then dead.
        assert failures == [0, 0, 0]
        assert disk.stats.spin_ups == 3
        assert disk.health is DiskHealth.FAILED
        assert len(deaths) == 1
        assert [r.request_id for r in deaths[0]] == [5]
        assert engine.now <= 10 * TUP  # no runaway retry loop

    def test_zero_retry_budget_bricks_on_first_failure(self) -> None:
        engine = SimulationEngine()
        disk, failures, deaths = self._make_faulty(engine, max_retries=0)
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=2 * TUP)
        assert failures == [0]
        assert disk.stats.spin_ups == 1
        assert disk.health is DiskHealth.FAILED
        assert len(deaths) == 1

    def test_zero_probability_never_fails(self) -> None:
        engine = SimulationEngine()
        disk, completions = make_disk(engine)
        disk.enable_fault_injection(
            spin_up=SpinUpFaults(probability=0.0),
            spin_up_rng=random.Random(7),
        )
        engine.schedule(0.0, lambda: disk.submit(req(0.0)))
        engine.run(until=TUP + 1.0)
        assert len(completions) == 1
        assert disk.health is DiskHealth.HEALTHY
