"""Tests for fault plans and their deterministic schedules."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    MAX_OUTAGES_PER_DISK,
    DiskFaultSchedule,
    FaultPlan,
    PermanentFaults,
    ScriptedFault,
    SpinUpFaults,
    TransientFaults,
    build_schedule,
    spin_up_stream,
    weibull_time_s,
)
from repro.types import DiskId


class TestPlanValidation:
    def test_permanent_rejects_nonpositive_mttf(self) -> None:
        with pytest.raises(ConfigurationError, match="mttf_s"):
            PermanentFaults(mttf_s=0.0)
        with pytest.raises(ConfigurationError, match="mttf_s"):
            PermanentFaults(mttf_s=-5.0)

    def test_permanent_rejects_nonpositive_shape(self) -> None:
        with pytest.raises(ConfigurationError, match="weibull_shape"):
            PermanentFaults(mttf_s=100.0, weibull_shape=0.0)

    def test_transient_rejects_bad_times(self) -> None:
        with pytest.raises(ConfigurationError, match="mtbf_s"):
            TransientFaults(mtbf_s=0.0, mean_repair_s=1.0)
        with pytest.raises(ConfigurationError, match="mean_repair_s"):
            TransientFaults(mtbf_s=1.0, mean_repair_s=-1.0)

    def test_spin_up_rejects_bad_probability(self) -> None:
        with pytest.raises(ConfigurationError, match="probability"):
            SpinUpFaults(probability=1.5)
        with pytest.raises(ConfigurationError, match="probability"):
            SpinUpFaults(probability=-0.1)

    def test_spin_up_rejects_negative_retries(self) -> None:
        with pytest.raises(ConfigurationError, match="max_retries"):
            SpinUpFaults(probability=0.5, max_retries=-1)

    def test_scripted_rejects_negative_instant(self) -> None:
        with pytest.raises(ConfigurationError, match="at_s"):
            ScriptedFault(disk_id=0, at_s=-1.0)

    def test_scripted_rejects_nonpositive_repair(self) -> None:
        with pytest.raises(ConfigurationError, match="repair_after_s"):
            ScriptedFault(disk_id=0, at_s=1.0, repair_after_s=0.0)

    def test_canonical_rejects_nonpositive_rate(self) -> None:
        with pytest.raises(ConfigurationError, match="failure_rate_per_s"):
            FaultPlan.canonical(0.0)


class TestPlanShape:
    def test_none_plan_is_inactive(self) -> None:
        assert FaultPlan.none().active is False

    def test_each_fault_source_activates(self) -> None:
        assert FaultPlan(permanent=PermanentFaults(mttf_s=1.0)).active
        assert FaultPlan(
            transient=TransientFaults(mtbf_s=1.0, mean_repair_s=1.0)
        ).active
        assert FaultPlan(spin_up=SpinUpFaults(probability=0.1)).active
        assert FaultPlan(
            scripted=(ScriptedFault(disk_id=0, at_s=1.0),)
        ).active

    def test_canonical_is_permanent_only(self) -> None:
        plan = FaultPlan.canonical(1e-4, seed=7)
        assert plan.seed == 7
        assert plan.permanent is not None
        assert plan.permanent.mttf_s == pytest.approx(1e4)
        assert plan.permanent.weibull_shape == 1.0
        assert plan.transient is None
        assert plan.spin_up is None
        assert plan.scripted == ()

    def test_key_payload_names_every_knob(self) -> None:
        plan = FaultPlan(
            seed=3,
            permanent=PermanentFaults(mttf_s=50.0, weibull_shape=2.0),
            transient=TransientFaults(mtbf_s=10.0, mean_repair_s=1.0),
            spin_up=SpinUpFaults(probability=0.25, max_retries=1),
            scripted=(ScriptedFault(disk_id=2, at_s=9.0, repair_after_s=4.0),),
        )
        payload = plan.key_payload()
        assert payload["seed"] == 3
        assert payload["permanent"] == {"mttf_s": 50.0, "weibull_shape": 2.0}
        assert payload["transient"] == {"mtbf_s": 10.0, "mean_repair_s": 1.0}
        assert payload["spin_up"] == {"probability": 0.25, "max_retries": 1}
        assert payload["scripted"] == [
            {"disk_id": 2, "at_s": 9.0, "repair_after_s": 4.0}
        ]


class TestWeibullDraw:
    def test_zero_uniform_is_immediate(self) -> None:
        assert weibull_time_s(0.0, mttf_s=100.0, shape=1.0) == 0.0

    def test_uniform_domain_enforced(self) -> None:
        with pytest.raises(ConfigurationError, match="u must be"):
            weibull_time_s(1.0, mttf_s=100.0, shape=1.0)
        with pytest.raises(ConfigurationError, match="u must be"):
            weibull_time_s(-0.5, mttf_s=100.0, shape=1.0)

    def test_scales_linearly_with_mttf(self) -> None:
        # The monotonicity the fault sweep relies on: for one uniform,
        # halving the rate (doubling the MTTF) doubles the failure time.
        short = weibull_time_s(0.37, mttf_s=100.0, shape=1.0)
        long = weibull_time_s(0.37, mttf_s=200.0, shape=1.0)
        assert long == pytest.approx(2.0 * short)

    def test_exponential_shape_recovers_inverse_cdf(self) -> None:
        import math

        u = 0.5
        expected = 100.0 * -math.log(1.0 - u)
        assert weibull_time_s(u, mttf_s=100.0, shape=1.0) == pytest.approx(
            expected
        )


class TestScheduleDeterminism:
    def test_same_inputs_same_schedule(self) -> None:
        plan = FaultPlan(
            seed=11,
            permanent=PermanentFaults(mttf_s=500.0),
            transient=TransientFaults(mtbf_s=200.0, mean_repair_s=20.0),
        )
        first = build_schedule(plan, num_disks=6, horizon_s=1000.0)
        second = build_schedule(plan, num_disks=6, horizon_s=1000.0)
        assert first == second

    def test_disk_schedules_stable_under_fleet_growth(self) -> None:
        # Per-disk streams derive from (seed, disk_id) alone, so adding
        # disks never perturbs the existing disks' failure times.
        plan = FaultPlan(seed=11, permanent=PermanentFaults(mttf_s=500.0))
        small = build_schedule(plan, num_disks=4, horizon_s=1000.0)
        large = build_schedule(plan, num_disks=8, horizon_s=1000.0)
        assert large[:4] == small

    def test_different_seeds_differ(self) -> None:
        def deaths(seed: int) -> Tuple[Optional[float], ...]:
            plan = FaultPlan(seed=seed, permanent=PermanentFaults(mttf_s=500.0))
            sched = build_schedule(plan, num_disks=16, horizon_s=10_000.0)
            return tuple(entry.permanent_at_s for entry in sched)

        assert deaths(1) != deaths(2)

    def test_spin_up_stream_is_per_disk_deterministic(self) -> None:
        plan = FaultPlan(seed=5, spin_up=SpinUpFaults(probability=0.5))
        again = spin_up_stream(plan, 3)
        draws = [spin_up_stream(plan, 3).random() for _ in range(1)]
        assert again.random() == draws[0]
        assert spin_up_stream(plan, 4).random() != draws[0]

    def test_input_validation(self) -> None:
        plan = FaultPlan(seed=1, permanent=PermanentFaults(mttf_s=10.0))
        with pytest.raises(ConfigurationError, match="num_disks"):
            build_schedule(plan, num_disks=0, horizon_s=10.0)
        with pytest.raises(ConfigurationError, match="horizon_s"):
            build_schedule(plan, num_disks=1, horizon_s=-1.0)


class TestScheduleMonotonicity:
    def test_higher_rate_strictly_advances_every_death(self) -> None:
        horizon = 50_000.0
        lo = build_schedule(FaultPlan.canonical(1e-5, seed=1), 32, horizon)
        hi = build_schedule(FaultPlan.canonical(1e-4, seed=1), 32, horizon)
        deaths_lo: Dict[DiskId, float] = {
            s.disk_id: s.permanent_at_s
            for s in lo
            if s.permanent_at_s is not None
        }
        deaths_hi: Dict[DiskId, float] = {
            s.disk_id: s.permanent_at_s
            for s in hi
            if s.permanent_at_s is not None
        }
        # Every disk dead at the low rate is dead (earlier) at the high rate.
        assert set(deaths_lo) <= set(deaths_hi)
        for disk_id, at_lo in deaths_lo.items():
            assert deaths_hi[disk_id] < at_lo
        # And the high rate genuinely kills more of the fleet here.
        assert len(deaths_hi) > len(deaths_lo)


class TestScriptedMerge:
    def test_earlier_scripted_death_overrides_stochastic(self) -> None:
        plan = FaultPlan(
            seed=1,
            permanent=PermanentFaults(mttf_s=10.0),  # everything dies fast
            scripted=(ScriptedFault(disk_id=0, at_s=0.25),),
        )
        sched = build_schedule(plan, num_disks=1, horizon_s=1000.0)
        death = sched[0].permanent_at_s
        assert death is not None
        assert death <= 0.25

    def test_later_scripted_death_does_not_postpone(self) -> None:
        plan = FaultPlan(
            seed=1,
            scripted=(
                ScriptedFault(disk_id=0, at_s=5.0),
                ScriptedFault(disk_id=0, at_s=100.0),
            ),
        )
        sched = build_schedule(plan, num_disks=1, horizon_s=1000.0)
        assert sched[0].permanent_at_s == 5.0

    def test_outages_truncated_at_permanent_death(self) -> None:
        plan = FaultPlan(
            scripted=(
                ScriptedFault(disk_id=0, at_s=10.0),  # permanent
                ScriptedFault(disk_id=0, at_s=20.0, repair_after_s=5.0),
                ScriptedFault(disk_id=0, at_s=2.0, repair_after_s=1.0),
            )
        )
        sched = build_schedule(plan, num_disks=1, horizon_s=1000.0)
        assert sched[0].permanent_at_s == 10.0
        assert sched[0].outages == ((2.0, 3.0),)

    def test_scripted_fault_beyond_horizon_ignored(self) -> None:
        plan = FaultPlan(scripted=(ScriptedFault(disk_id=0, at_s=999.0),))
        sched = build_schedule(plan, num_disks=1, horizon_s=100.0)
        assert sched[0].permanent_at_s is None

    def test_scripted_fault_on_unknown_disk_rejected(self) -> None:
        plan = FaultPlan(scripted=(ScriptedFault(disk_id=9, at_s=1.0),))
        with pytest.raises(ConfigurationError, match="unknown disk 9"):
            build_schedule(plan, num_disks=3, horizon_s=100.0)


class TestOutageBackstop:
    def test_outage_count_bounded_per_disk(self) -> None:
        # A pathological parameterisation (repairs much faster than
        # failures arrive) cannot wedge the event loop: the generator
        # stops at MAX_OUTAGES_PER_DISK intervals.
        plan = FaultPlan(
            seed=1,
            transient=TransientFaults(mtbf_s=1e-4, mean_repair_s=1e-6),
        )
        sched: Tuple[DiskFaultSchedule, ...] = build_schedule(
            plan, num_disks=1, horizon_s=1e9
        )
        assert len(sched[0].outages) == MAX_OUTAGES_PER_DISK

    def test_outages_are_ordered(self) -> None:
        plan = FaultPlan(
            seed=4, transient=TransientFaults(mtbf_s=50.0, mean_repair_s=5.0)
        )
        sched = build_schedule(plan, num_disks=2, horizon_s=5000.0)
        for entry in sched:
            downs = [down for down, _ in entry.outages]
            assert downs == sorted(downs)
            for down, up in entry.outages:
                assert up > down
