"""End-to-end failover: scripted faults driven through StorageSystem."""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro.core.heuristic import HeuristicScheduler
from repro.core.random_scheduler import RandomScheduler
from repro.core.scheduler import Scheduler
from repro.core.static_scheduler import StaticScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.disk.service import ConstantServiceModel
from repro.faults import FaultPlan, ScriptedFault, SpinUpFaults
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT
from repro.report import AvailabilityReport, SimulationReport
from repro.sim.config import SimulationConfig
from repro.sim.storage import StorageSystem
from repro.types import Request


def unit_config(
    num_disks: int = 2,
    service: float = 1.0,
    fault_plan: Optional[FaultPlan] = None,
) -> SimulationConfig:
    return SimulationConfig(
        num_disks=num_disks,
        profile=PAPER_UNIT,
        service_model=ConstantServiceModel(service),
        drain_slack=5.0,
        fault_plan=fault_plan,
    )


def make_requests(times: Sequence[float], data_id: int = 0) -> List[Request]:
    return [
        Request(time=t, request_id=i, data_id=data_id)
        for i, t in enumerate(times)
    ]


def scripted(*faults: ScriptedFault) -> FaultPlan:
    return FaultPlan(scripted=tuple(faults))


def availability_of(report: SimulationReport) -> AvailabilityReport:
    assert report.availability is not None
    return report.availability


class TestMidFlightFailover:
    def test_death_redispatches_queue_to_surviving_replica(self) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.5))
        system = StorageSystem(catalog, StaticScheduler(), unit_config(fault_plan=plan))
        report = system.run(make_requests([0.0, 0.1]))
        # Static routes both to disk 0; its death at 0.5 drains them and
        # the failover path re-runs them on disk 1.
        assert report.requests_completed == 2
        avail = availability_of(report)
        assert avail.requests_redispatched == 2
        assert avail.requests_lost == 0
        assert avail.disk_failures == 1
        assert report.disk_stats[1].requests_serviced == 2
        assert report.disk_stats[0].requests_serviced == 0

    @pytest.mark.parametrize(
        "scheduler",
        [StaticScheduler(), RandomScheduler(seed=1), HeuristicScheduler()],
        ids=["static", "random", "heuristic"],
    )
    def test_online_schedulers_skip_dead_replica(
        self, scheduler: Scheduler
    ) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.0))
        system = StorageSystem(catalog, scheduler, unit_config(fault_plan=plan))
        report = system.run(make_requests([0.5, 1.0, 1.5]))
        assert report.requests_completed == 3
        assert report.disk_stats[0].requests_serviced == 0
        assert report.disk_stats[1].requests_serviced == 3
        assert availability_of(report).requests_lost == 0


class TestDataLoss:
    def test_all_replicas_dead_records_lost_not_crash(self) -> None:
        catalog = PlacementCatalog({0: [0]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.5))
        system = StorageSystem(
            catalog, StaticScheduler(), unit_config(num_disks=1, fault_plan=plan)
        )
        # First request is mid-service when the only replica dies; the
        # second arrives after the death.  Both are lost, neither raises.
        report = system.run(make_requests([0.0, 1.0]))
        assert report.requests_completed == 0
        avail = availability_of(report)
        assert avail.requests_lost == 2
        assert avail.loss_fraction(report.requests_offered) == 1.0
        assert avail.requests_redispatched == 0

    def test_partial_fleet_death_loses_nothing(self) -> None:
        catalog = PlacementCatalog({0: [0, 1], 1: [1, 0]})
        plan = scripted(ScriptedFault(disk_id=1, at_s=0.25))
        system = StorageSystem(catalog, HeuristicScheduler(), unit_config(fault_plan=plan))
        report = system.run(
            make_requests([0.0, 0.5, 1.0]) + [Request(time=0.5, request_id=9, data_id=1)]
        )
        assert report.requests_completed == 4
        assert availability_of(report).requests_lost == 0


class TestTransientBackoff:
    def test_request_during_outage_retries_then_completes(self) -> None:
        catalog = PlacementCatalog({0: [0]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.5, repair_after_s=2.0))
        system = StorageSystem(
            catalog, StaticScheduler(), unit_config(num_disks=1, fault_plan=plan)
        )
        report = system.run(make_requests([1.0]))
        # Arrival at t=1 finds the only replica down (outage 0.5..2.5);
        # exponential backoff retries at 1.5 and 2.5, the second of which
        # lands after the repair.
        assert report.requests_completed == 1
        avail = availability_of(report)
        assert avail.requests_lost == 0
        assert avail.failover_retries == 2
        assert avail.transient_outages == 1
        assert avail.downtime_s[0] == pytest.approx(2.0)
        assert report.response_times[0] == pytest.approx(1.5 + 1.0)

    def test_availability_accounts_open_ended_downtime(self) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=1.0))
        system = StorageSystem(catalog, StaticScheduler(), unit_config(fault_plan=plan))
        report = system.run(make_requests([0.0]))
        avail = availability_of(report)
        # Disk 0 is down from t=1 to the end of the run; disk 1 never is.
        assert avail.downtime_s[0] == pytest.approx(report.duration - 1.0)
        assert 1 not in avail.downtime_s
        assert avail.disk_seconds == pytest.approx(2 * report.duration)
        assert 0.0 < avail.availability < 1.0
        expected = 1.0 - (report.duration - 1.0) / (2 * report.duration)
        assert avail.availability == pytest.approx(expected)


class TestBatchFailover:
    def test_wsc_batch_routes_around_dead_disk(self) -> None:
        catalog = PlacementCatalog({0: [0, 1], 1: [0, 1]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.2))
        system = StorageSystem(
            catalog,
            WSCBatchScheduler(interval=0.5),
            unit_config(fault_plan=plan),
        )
        report = system.run(
            make_requests([0.1, 0.3]) + [Request(time=0.3, request_id=9, data_id=1)]
        )
        assert report.requests_completed == 3
        assert report.disk_stats[0].requests_serviced == 0
        assert availability_of(report).requests_lost == 0

    def test_wsc_batch_with_total_loss_does_not_crash(self) -> None:
        catalog = PlacementCatalog({0: [0]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.2))
        system = StorageSystem(
            catalog,
            WSCBatchScheduler(interval=0.5),
            unit_config(num_disks=1, fault_plan=plan),
        )
        report = system.run(make_requests([0.3]))
        assert report.requests_completed == 0
        assert availability_of(report).requests_lost == 1


class TestSpinUpFaultIntegration:
    def test_fleet_bricked_by_spin_up_failures(self) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        plan = FaultPlan(spin_up=SpinUpFaults(probability=1.0, max_retries=0))
        system = StorageSystem(catalog, StaticScheduler(), unit_config(fault_plan=plan))
        # With Tup=0 and certain failure, the first submission bricks
        # disk 0 inline, failover bricks disk 1, and the request is lost.
        report = system.run(make_requests([0.0]))
        assert report.requests_completed == 0
        avail = availability_of(report)
        assert avail.spin_up_failures == 2
        assert avail.disk_failures == 2
        assert avail.requests_lost == 1


class TestReportSurface:
    def test_no_fault_run_has_no_availability(self) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        system = StorageSystem(catalog, StaticScheduler(), unit_config())
        report = system.run(make_requests([0.0]))
        assert report.availability is None
        assert "availability" not in report.summary()

    def test_faulted_summary_mentions_availability(self) -> None:
        catalog = PlacementCatalog({0: [0, 1]})
        plan = scripted(ScriptedFault(disk_id=0, at_s=0.5))
        system = StorageSystem(catalog, StaticScheduler(), unit_config(fault_plan=plan))
        report = system.run(make_requests([0.0]))
        summary = report.summary()
        assert "availability" in summary
        assert "lost / redispatched" in summary
