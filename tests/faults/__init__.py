"""Tests for the fault-injection subsystem (``repro.faults``).

This package is part of the mypy strict set (see ``pyproject.toml``):
the fault layer guards the zero-overlay invariant of every no-fault
figure, so its tests are held to the same typing bar as the code.
"""
