"""Tests for block cache policies."""

import pytest

from repro.cache.policy import LRUBlockCache, PowerAwareLRUCache, make_cache
from repro.errors import ConfigurationError
from repro.power.states import DiskPowerState


def spinning(disk_id):
    return DiskPowerState.IDLE


def sleeping(disk_id):
    return DiskPowerState.STANDBY


class TestLRU:
    def test_hit_after_insert(self):
        cache = LRUBlockCache(4)
        cache.insert(1, 0, spinning)
        assert cache.lookup(1)
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = LRUBlockCache(4)
        assert not cache.lookup(1)
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUBlockCache(2)
        cache.insert(1, 0, spinning)
        cache.insert(2, 0, spinning)
        cache.lookup(1)                 # 1 becomes most recent
        cache.insert(3, 0, spinning)    # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_capacity_zero_is_noop(self):
        cache = LRUBlockCache(0)
        cache.insert(1, 0, spinning)
        assert not cache.lookup(1)
        assert len(cache) == 0

    def test_reinsert_refreshes_position_and_home(self):
        cache = LRUBlockCache(2)
        cache.insert(1, 0, spinning)
        cache.insert(2, 0, spinning)
        cache.insert(1, 5, spinning)    # refresh
        cache.insert(3, 0, spinning)    # evicts 2, not 1
        assert 1 in cache
        assert cache.home_disk(1) == 5

    def test_hit_ratio(self):
        cache = LRUBlockCache(4)
        cache.insert(1, 0, spinning)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUBlockCache(-1)


class TestPowerAware:
    def probe_factory(self, sleeping_disks):
        def probe(disk_id):
            if disk_id in sleeping_disks:
                return DiskPowerState.STANDBY
            return DiskPowerState.IDLE

        return probe

    def test_spares_sleeping_disk_blocks(self):
        cache = PowerAwareLRUCache(2, scan_depth=4)
        probe = self.probe_factory(sleeping_disks={9})
        cache.insert(1, 9, probe)   # oldest, but its disk sleeps
        cache.insert(2, 0, probe)
        cache.insert(3, 0, probe)   # must evict — spares block 1
        assert 1 in cache
        assert 2 not in cache

    def test_falls_back_to_lru_when_all_sleep(self):
        cache = PowerAwareLRUCache(2, scan_depth=4)
        probe = self.probe_factory(sleeping_disks={0, 1})
        cache.insert(1, 0, probe)
        cache.insert(2, 1, probe)
        cache.insert(3, 0, probe)
        assert 1 not in cache  # plain LRU victim

    def test_scan_depth_limits_the_search(self):
        cache = PowerAwareLRUCache(3, scan_depth=1)
        probe = self.probe_factory(sleeping_disks={9})
        cache.insert(1, 9, probe)   # oldest; scan depth 1 only sees this
        cache.insert(2, 0, probe)
        cache.insert(3, 0, probe)
        cache.insert(4, 0, probe)   # scan sees only block 1 (asleep) -> LRU
        assert 1 not in cache

    def test_invalid_scan_depth(self):
        with pytest.raises(ConfigurationError):
            PowerAwareLRUCache(4, scan_depth=0)


class TestFactory:
    def test_kinds(self):
        assert make_cache(None, 10) is None
        assert make_cache("none", 10) is None
        assert isinstance(make_cache("lru", 10), LRUBlockCache)
        assert isinstance(make_cache("pa-lru", 10), PowerAwareLRUCache)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_cache("arc", 10)


class TestSimulationIntegration:
    def test_hits_bypass_disks(self):
        from repro.core.static_scheduler import StaticScheduler
        from repro.disk.service import ConstantServiceModel
        from repro.placement.catalog import PlacementCatalog
        from repro.power.profile import PAPER_UNIT
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.types import Request

        catalog = PlacementCatalog({0: [0]})
        requests = [
            Request(time=float(t), request_id=t, data_id=0) for t in range(5)
        ]
        config = SimulationConfig(
            num_disks=1,
            profile=PAPER_UNIT,
            service_model=ConstantServiceModel(0.0),
            drain_slack=1.0,
            cache_factory=lambda: LRUBlockCache(8),
        )
        report = simulate(requests, catalog, StaticScheduler(), config)
        assert report.requests_completed == 5
        assert report.cache_hits == 4          # first miss, rest hit
        assert report.cache_misses == 1
        assert report.disk_stats[0].requests_serviced == 1
        assert report.cache_hit_ratio == pytest.approx(0.8)

    def test_cache_reduces_energy_on_rereference_workload(self):
        import random

        from repro.core.heuristic import HeuristicScheduler
        from repro.placement.schemes import ZipfOriginalUniformReplicas
        from repro.power.profile import PAPER_EVAL
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import simulate
        from repro.traces.record import TraceRecord
        from repro.traces.workload import Workload

        rng = random.Random(3)
        records = []
        t = 0.0
        for _ in range(3000):
            t += rng.expovariate(1.0)
            records.append(TraceRecord(time=t, data_key=rng.randrange(100)))
        workload = Workload(records)
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(replication_factor=2),
            num_disks=8,
            seed=4,
        )
        base_config = SimulationConfig(num_disks=8, profile=PAPER_EVAL)
        cached_config = SimulationConfig(
            num_disks=8,
            profile=PAPER_EVAL,
            cache_factory=lambda: PowerAwareLRUCache(50),
        )
        plain = simulate(requests, catalog, HeuristicScheduler(), base_config)
        cached = simulate(
            requests, catalog, HeuristicScheduler(), cached_config
        )
        assert cached.cache_hits > 0
        assert cached.total_energy < plain.total_energy
        # Note: the *mean* response time may rise — absorbing re-references
        # in the cache leaves the disks sleepier, so the remaining misses
        # pay more spin-up delays. The median tells the hit story instead.
        assert cached.response_percentile(0.5) <= plain.response_percentile(0.5)
