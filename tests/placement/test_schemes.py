"""Tests for placement schemes."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PlacementError
from repro.placement.schemes import (
    PackedPlacement,
    UniformPlacement,
    ZipfOriginalUniformReplicas,
)


DATA = list(range(400))


class TestZipfOriginalUniformReplicas:
    def test_every_item_gets_requested_replication(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=3)
        catalog = scheme.place(DATA, 20, random.Random(0))
        assert all(catalog.replication_factor(d) == 3 for d in DATA)

    def test_locations_are_distinct(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=5)
        catalog = scheme.place(DATA, 10, random.Random(1))
        for d in DATA:
            locations = catalog.locations(d)
            assert len(set(locations)) == len(locations)

    def test_originals_are_skewed_when_z_high(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=1, zipf_exponent=1.0)
        catalog = scheme.place(list(range(5000)), 20, random.Random(2))
        counts = Counter(catalog.original(d) for d in range(5000))
        top = counts.most_common(1)[0][1]
        assert top > 5000 / 20 * 2  # far above a uniform share

    def test_originals_uniform_when_z_zero(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=1, zipf_exponent=0.0)
        catalog = scheme.place(list(range(5000)), 10, random.Random(3))
        counts = Counter(catalog.original(d) for d in range(5000))
        for disk in range(10):
            assert counts[disk] == pytest.approx(500, rel=0.25)

    def test_replicas_roughly_uniform_even_with_skewed_originals(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=2, zipf_exponent=1.0)
        catalog = scheme.place(list(range(8000)), 16, random.Random(4))
        counts = Counter(
            replica for d in range(8000) for replica in catalog.replicas(d)
        )
        for disk in range(16):
            assert counts[disk] == pytest.approx(500, rel=0.35)

    def test_deterministic_given_seed(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=3)
        a = scheme.place(DATA, 12, random.Random(9))
        b = scheme.place(DATA, 12, random.Random(9))
        assert all(a.locations(d) == b.locations(d) for d in DATA)

    def test_replication_beyond_disks_rejected(self):
        scheme = ZipfOriginalUniformReplicas(replication_factor=11)
        with pytest.raises(PlacementError):
            scheme.place(DATA, 10, random.Random(0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfOriginalUniformReplicas(replication_factor=0)
        with pytest.raises(ConfigurationError):
            ZipfOriginalUniformReplicas(zipf_exponent=-1.0)

    @given(
        rf=st.integers(min_value=1, max_value=5),
        disks=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=30)
    def test_placement_always_valid(self, rf, disks, seed):
        scheme = ZipfOriginalUniformReplicas(replication_factor=rf)
        catalog = scheme.place(list(range(50)), disks, random.Random(seed))
        for d in range(50):
            locations = catalog.locations(d)
            assert len(locations) == rf
            assert len(set(locations)) == rf
            assert all(0 <= disk < disks for disk in locations)


class TestUniformPlacement:
    def test_replication_respected(self):
        catalog = UniformPlacement(replication_factor=2).place(
            DATA, 8, random.Random(0)
        )
        assert all(catalog.replication_factor(d) == 2 for d in DATA)

    def test_roughly_balanced(self):
        catalog = UniformPlacement(replication_factor=1).place(
            list(range(8000)), 8, random.Random(1)
        )
        counts = Counter(catalog.original(d) for d in range(8000))
        for disk in range(8):
            assert counts[disk] == pytest.approx(1000, rel=0.2)


class TestPackedPlacement:
    def test_hot_items_share_first_disk(self):
        catalog = PackedPlacement(replication_factor=1, items_per_disk=100).place(
            DATA, 10, random.Random(0)
        )
        assert all(catalog.original(d) == 0 for d in range(100))
        assert all(catalog.original(d) == 1 for d in range(100, 200))

    def test_overflow_lands_on_last_disk(self):
        catalog = PackedPlacement(replication_factor=1, items_per_disk=10).place(
            DATA, 3, random.Random(0)
        )
        assert catalog.original(399) == 2

    def test_replicas_avoid_original(self):
        catalog = PackedPlacement(replication_factor=3, items_per_disk=50).place(
            DATA, 12, random.Random(5)
        )
        for d in DATA:
            original = catalog.original(d)
            assert original not in catalog.replicas(d)
