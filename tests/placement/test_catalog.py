"""Tests for the placement catalog."""

import pytest

from repro.errors import PlacementError
from repro.placement.catalog import PlacementCatalog


@pytest.fixture
def catalog():
    return PlacementCatalog({0: [3, 1], 1: [1], 2: [2, 0, 3]})


def test_locations_preserve_order(catalog):
    assert catalog.locations(0) == (3, 1)


def test_original_is_first(catalog):
    assert catalog.original(2) == 2


def test_replicas_exclude_original(catalog):
    assert catalog.replicas(2) == (0, 3)
    assert catalog.replicas(1) == ()


def test_replication_factor(catalog):
    assert catalog.replication_factor(0) == 2
    assert catalog.replication_factor(1) == 1


def test_unknown_data_raises(catalog):
    with pytest.raises(PlacementError):
        catalog.locations(99)


def test_len_and_contains(catalog):
    assert len(catalog) == 3
    assert 1 in catalog
    assert 99 not in catalog


def test_disks_enumerates_all(catalog):
    assert catalog.disks == (0, 1, 2, 3)


def test_data_on_disk(catalog):
    assert catalog.data_on_disk(1) == (0, 1)
    assert catalog.data_on_disk(3) == (0, 2)
    assert catalog.data_on_disk(9) == ()


def test_empty_location_list_rejected():
    with pytest.raises(PlacementError):
        PlacementCatalog({0: []})


def test_duplicate_locations_rejected():
    with pytest.raises(PlacementError):
        PlacementCatalog({0: [1, 1]})


def test_load_share_uses_originals(catalog):
    share = catalog.load_share({0: 10.0, 1: 5.0, 2: 1.0})
    assert share == {3: 10.0, 1: 5.0, 2: 1.0}


def test_from_pairs_round_trip():
    catalog = PlacementCatalog.from_pairs([(5, [0, 2])])
    assert catalog.locations(5) == (0, 2)
