"""Tests for Zipf samplers."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.placement.zipf import (
    ZipfSampler,
    empirical_ranks,
    rank_permutation,
    zipf_probabilities,
)


class TestProbabilities:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(100, 1.0)
        assert sum(probs) == pytest.approx(1.0)

    def test_zipf_ratio_between_ranks(self):
        probs = zipf_probabilities(100, 1.0)
        # rank0 / rank1 = 2 for z = 1.
        assert probs[0] / probs[1] == pytest.approx(2.0)

    def test_z_zero_is_uniform(self):
        probs = zipf_probabilities(50, 0.0)
        assert all(p == pytest.approx(1.0 / 50) for p in probs)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(200, 0.8)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_higher_exponent_more_skewed(self):
        flat = zipf_probabilities(100, 0.3)[0]
        steep = zipf_probabilities(100, 1.0)[0]
        assert steep > flat


class TestSampling:
    def test_samples_in_range(self):
        sampler = ZipfSampler(10, 1.0)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(1000))

    def test_empirical_matches_theory(self):
        sampler = ZipfSampler(20, 1.0)
        rng = random.Random(2)
        n = 40_000
        counts = Counter(sampler.sample(rng) for _ in range(n))
        for rank in (0, 1, 5):
            expected = sampler.probability(rank) * n
            assert counts[rank] == pytest.approx(expected, rel=0.1)

    def test_deterministic_given_seed(self):
        sampler = ZipfSampler(30, 0.9)
        a = sampler.sample_many(random.Random(7), 100)
        b = sampler.sample_many(random.Random(7), 100)
        assert a == b

    @given(
        n=st.integers(min_value=1, max_value=500),
        z=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50)
    def test_sample_always_valid_rank(self, n, z, seed):
        sampler = ZipfSampler(n, z)
        assert 0 <= sampler.sample(random.Random(seed)) < n


class TestValidation:
    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, -0.5)

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, 1.0).probability(10)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, 1.0).sample_many(random.Random(0), -1)


class TestHelpers:
    def test_rank_permutation_is_bijection(self):
        perm = rank_permutation(50, random.Random(3))
        assert sorted(perm) == list(range(50))

    def test_empirical_ranks_counts(self):
        counts = empirical_ranks([0, 0, 1, 3], 4)
        assert counts == [2, 1, 0, 1]
