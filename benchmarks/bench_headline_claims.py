"""The paper's abstract, asserted.

"Our evaluation results using two realistic traces show that our approach
significantly reduces energy consumption up to 55% and achieves fewer
disk spin-up/down operations and shorter request response time as
compared to other approaches."
"""

from repro.experiments.headline import headline_claims


def test_headline_claims_cello(benchmark, show):
    claims = benchmark.pedantic(
        lambda: headline_claims("cello"), rounds=1, iterations=1
    )
    show(claims.render())
    # "significantly reduces energy consumption up to 55%" — we require a
    # best-case cut of at least a third (the paper's simulator and traces
    # differ; see EXPERIMENTS.md for the level discussion).
    assert claims.best_energy_reduction > 0.33
    # "fewer disk spin-up/down operations"
    assert claims.spin_reduction_vs_static > 0.0
    # "shorter request response time"
    assert claims.response_reduction_vs_static > 0.0


def test_headline_claims_financial(benchmark, show):
    claims = benchmark.pedantic(
        lambda: headline_claims("financial"), rounds=1, iterations=1
    )
    show(claims.render())
    assert claims.best_energy_reduction > 0.33
    assert claims.spin_reduction_vs_static > 0.0
    assert claims.response_reduction_vs_static > 0.0
