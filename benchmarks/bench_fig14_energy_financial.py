"""Fig. 14 — energy consumption vs replication factor (Financial1).

Paper: "the results are quite similar with the ones with the Cello trace"
— the same Fig. 6 shape on the steadier OLTP-like workload.
"""

import pytest

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig14_energy_vs_replication_financial(benchmark, show):
    result = benchmark.pedantic(figures.fig14, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    random_ = series[SCHEDULER_LABELS["random"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]

    assert static[0] == pytest.approx(random_[0], rel=0.02)
    assert max(static) - min(static) < 0.05
    assert random_[-1] > 0.9
    for values in (heuristic, wsc):
        assert values[-1] < values[0] - 0.15
    assert wsc[-1] < static[-1] * 0.8
