"""Fig. 9 — per-disk state-time breakdown at replication 3 (Cello).

Paper shape: under Random most disks are idle most of the time (requests
scattered, little standby); Static shows skew-driven standby on the cold
disks; WSC pushes more disks into standby than either baseline; active
time is <1% everywhere (I/O is ms-scale).
"""

from repro.experiments import figures
from repro.power.states import DiskPowerState


def aggregate(panels, label, state):
    fractions = panels[label]
    return sum(f[state] for f in fractions) / len(fractions)


def test_fig09_state_breakdown_cello(benchmark, show):
    result = benchmark.pedantic(figures.fig9, rounds=1, iterations=1)
    show(result.render())
    panels = result.panels

    random_label = "Random"
    static_label = "Static"
    wsc_label = "Energy-aware WSC(batch 0.1s)"
    mwis_label = "Energy-aware MWIS(offline)"

    # Active time is negligible everywhere (paper: "<1%, hardly visible").
    for label in panels:
        assert aggregate(panels, label, DiskPowerState.ACTIVE) < 0.02

    # WSC achieves more standby than Random and Static.
    wsc_standby = aggregate(panels, wsc_label, DiskPowerState.STANDBY)
    assert wsc_standby > aggregate(panels, random_label, DiskPowerState.STANDBY)
    assert wsc_standby >= aggregate(panels, static_label, DiskPowerState.STANDBY)

    # MWIS (offline, at its own scale) pushes standby hardest.
    mwis_standby = aggregate(panels, mwis_label, DiskPowerState.STANDBY)
    assert mwis_standby >= wsc_standby - 0.1

    # Random keeps disks spinning: its idle share dominates its standby.
    assert aggregate(panels, random_label, DiskPowerState.IDLE) > aggregate(
        panels, random_label, DiskPowerState.STANDBY
    )
