"""Fig. 15 — spin-up/down operations vs replication factor (Financial1)."""

import pytest

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig15_spin_operations_financial(benchmark, show):
    result = benchmark.pedantic(figures.fig15, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]
    mwis = series[SCHEDULER_LABELS["mwis"]]

    assert all(v == pytest.approx(1.0) for v in static)
    assert heuristic[-1] < 0.85
    assert wsc[-1] < 0.85
    # MWIS spins far less than Static at every replication factor; at
    # rf=1 (no scheduling choice for anyone) it is the only scheduler
    # below 1.0 — the offline model's no-wasted-spin-down property.
    assert mwis[0] < 0.9
    assert all(v < 0.8 for v in mwis[1:])
