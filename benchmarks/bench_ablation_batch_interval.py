"""Ablation: the WSC batch scheduling interval (Section 3.2 / Fig. 8 gap).

Thin wrapper over :func:`repro.experiments.ablations.run_batch_interval`;
the assertions live here.
"""

from repro.experiments.ablations import BATCH_INTERVALS, run_batch_interval

PANEL = "ablation: WSC batch interval (cello, rf=3)"


def test_ablation_batch_interval(benchmark, show):
    result = benchmark.pedantic(run_batch_interval, rounds=1, iterations=1)
    show(result.render())
    energies = result.series(PANEL, "energy vs always-on")
    responses = result.series(PANEL, "mean response (s)")
    p90s = result.series(PANEL, "p90 response (s)")
    # The p90 floor rises with the interval (every request queues).
    assert p90s[-1] > p90s[0]
    # More batching information never costs energy...
    assert energies[-1] <= energies[0] + 0.03
    # ...but the latency price explodes: the 5 s interval roughly doubles
    # the 0.01 s mean response.
    assert responses[-1] > responses[0] * 1.5
    # The paper's 0.1 s choice: within 10% of the sweep's best energy at a
    # p90 cost bounded by (roughly) one interval.
    paper_index = BATCH_INTERVALS.index(0.1)
    assert energies[paper_index] <= min(energies) + 0.1
    assert p90s[paper_index] <= 0.1 + p90s[0] + 0.05
