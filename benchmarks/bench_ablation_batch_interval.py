"""Ablation: the WSC batch scheduling interval (Section 3.2 / Fig. 8 gap).

The batch interval trades information for latency: a longer interval
batches more requests per set-cover instance (better covers, fewer woken
disks) but every request eats the queueing delay. The paper fixes 0.1 s;
this sweep shows what that choice buys.
"""

from repro.analysis.tables import format_series_table
from repro.core.wsc import WSCBatchScheduler
from repro.experiments import common
from repro.sim.runner import always_on_baseline, simulate

INTERVALS = (0.01, 0.1, 1.0, 5.0)
SCALE = 0.2


def run_sweep():
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
    config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, config)
    energies, responses, p90s = [], [], []
    for interval in INTERVALS:
        scheduler = WSCBatchScheduler(interval=interval)
        report = simulate(requests, catalog, scheduler, config)
        energies.append(report.total_energy / baseline.total_energy)
        responses.append(report.mean_response_time)
        p90s.append(report.response_percentile(0.9))
    return energies, responses, p90s


def test_ablation_batch_interval(benchmark, show):
    energies, responses, p90s = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    show(
        format_series_table(
            "interval (s)",
            INTERVALS,
            {
                "energy vs always-on": energies,
                "mean response (s)": responses,
                "p90 response (s)": p90s,
            },
            title="ablation: WSC batch interval (cello, rf=3)",
        )
    )
    # The p90 floor rises with the interval (every request queues).
    assert p90s[-1] > p90s[0]
    # More batching information never costs energy...
    assert energies[-1] <= energies[0] + 0.03
    # ...but the latency price explodes: the 5 s interval roughly doubles
    # the 0.01 s mean response.
    assert responses[-1] > responses[0] * 1.5
    # The paper's 0.1 s choice: within 10% of the sweep's best energy at a
    # p90 cost bounded by (roughly) one interval.
    paper_index = INTERVALS.index(0.1)
    assert energies[paper_index] <= min(energies) + 0.1
    assert p90s[paper_index] <= 0.1 + p90s[0] + 0.05
