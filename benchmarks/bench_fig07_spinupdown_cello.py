"""Fig. 7 — disk spin-up/down operations vs replication factor (Cello).

Paper shape: normalised to Static; Random falls below 1 as replication
grows (scattered requests keep disks up); the energy-aware schedulers also
fall (requests concentrate on already-spinning disks); MWIS is lowest.
"""

import pytest

from repro.experiments import common, figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig07_spin_operations_cello(benchmark, show):
    result = benchmark.pedantic(figures.fig7, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    random_ = series[SCHEDULER_LABELS["random"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]
    mwis = series[SCHEDULER_LABELS["mwis"]]

    # Static is the normalisation baseline.
    assert all(v == pytest.approx(1.0) for v in static)

    # Everything coincides at replication 1 (no scheduling choice).
    assert random_[0] == pytest.approx(1.0, abs=0.02)
    assert heuristic[0] == pytest.approx(1.0, abs=0.02)

    # Energy-aware schedulers spin less than Static at high replication.
    assert heuristic[-1] < 0.85
    assert wsc[-1] < 0.85

    # Random's spin count also falls with replication (paper's point:
    # disks stay up, for the wrong reason).
    assert random_[-1] < random_[0]

    # MWIS (offline: never spins down into a waiting request) spins far
    # less than Static everywhere — already at rf=1, where no simulated
    # scheduler has any choice.
    assert mwis[0] < 0.9
    assert all(v < 0.8 for v in mwis[1:])
