"""Ablation: the library's paper-suggested extensions.

Thin wrapper over :func:`repro.experiments.ablations.run_extensions`; the
assertions live here.
"""

from repro.experiments.ablations import run_extensions

READ_PANEL = "ablation: extensions, read workload (cello, rf=3)"
WRITE_PANEL = "ablation: extensions, 70% writes (cello, rf=3)"


def test_ablation_extensions(benchmark, show):
    result = benchmark.pedantic(run_extensions, rounds=1, iterations=1)
    show(result.render())

    read_labels = list(result.panel(READ_PANEL).x_values)
    read_energy = dict(
        zip(read_labels, result.series(READ_PANEL, "energy vs always-on"))
    )
    plain = read_energy["Heuristic(a=0.2,b=100)"]
    predictive = read_energy["PredictiveHeuristic(a=0.2,b=100)"]
    covering = [v for k, v in read_energy.items() if k.startswith("CoveringSet")][0]
    # Prediction should not hurt energy materially on a skewed trace.
    assert predictive <= plain * 1.1
    # Concentrating on the covering subset also saves vs always-on.
    assert covering < 1.0

    write_labels = list(result.panel(WRITE_PANEL).x_values)
    write_energy = dict(
        zip(write_labels, result.series(WRITE_PANEL, "energy vs always-on"))
    )
    plain_writes = write_energy["Heuristic(a=0.2,b=100)"]
    offload_key = [k for k in write_labels if k != "Heuristic(a=0.2,b=100)"][0]
    # Write off-loading beats the write-oblivious Heuristic on a
    # write-heavy workload, and actually diverted writes.
    assert write_energy[offload_key] <= plain_writes + 0.01
    assert result.total_offloaded > 0
