"""Ablation: the library's paper-suggested extensions.

Three ideas the paper sketches but does not evaluate, measured here:

* **Prediction** (Section 3.3 future work) — the EWMA-discounted cost
  function vs the plain Heuristic.
* **Write off-loading** (the Section 2.1 write-path assumption) — a
  70%-write workload with and without off-loading.
* **Covering subset** (Section 1's Hadoop-combo remark) — concentrating
  reads on a minimal covering group of disks.
"""

import random

from repro.analysis.tables import format_table
from repro.core.covering_scheduler import CoveringSetScheduler
from repro.core.heuristic import HeuristicScheduler
from repro.core.prediction import PredictiveHeuristicScheduler
from repro.core.static_scheduler import StaticScheduler
from repro.core.writeoffload import WriteOffloadingScheduler
from repro.experiments import common
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.sim.runner import always_on_baseline, simulate
from repro.traces.cello import CelloLikeConfig, generate_cello_like
from repro.traces.workload import Workload

SCALE = 0.2
NUM_DISKS = 36


def read_world():
    workload = Workload(
        generate_cello_like(CelloLikeConfig().scaled(SCALE), seed=1)
    )
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=NUM_DISKS,
        seed=8,
    )
    return requests, catalog


def write_world():
    config = CelloLikeConfig(
        num_requests=int(70_000 * SCALE),
        num_data=int(30_000 * SCALE),
        burst_rate=120.0 * SCALE,
        quiet_rate=3.0 * SCALE,
        read_fraction=0.3,
    )
    workload = Workload(generate_cello_like(config, seed=2), include_writes=True)
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=NUM_DISKS,
        seed=8,
    )
    return requests, catalog


def run_all():
    config = common.make_config(NUM_DISKS)
    rows = []

    requests, catalog = read_world()
    baseline = always_on_baseline(requests, catalog, config)
    for scheduler in (
        HeuristicScheduler(),
        PredictiveHeuristicScheduler(),
        CoveringSetScheduler(catalog),
    ):
        report = simulate(requests, catalog, scheduler, config)
        rows.append(
            [
                scheduler.name,
                "reads",
                f"{report.total_energy / baseline.total_energy:.3f}",
                f"{report.mean_response_time * 1000:.0f}",
            ]
        )
    read_results = {row[0]: float(row[2]) for row in rows}

    wrequests, wcatalog = write_world()
    wbaseline = always_on_baseline(wrequests, wcatalog, config)
    offloader = WriteOffloadingScheduler(HeuristicScheduler())
    for scheduler in (HeuristicScheduler(), offloader):
        report = simulate(wrequests, wcatalog, scheduler, config)
        rows.append(
            [
                scheduler.name,
                "70% writes",
                f"{report.total_energy / wbaseline.total_energy:.3f}",
                f"{report.mean_response_time * 1000:.0f}",
            ]
        )
    write_results = {row[0]: float(row[2]) for row in rows[-2:]}
    return rows, read_results, write_results, offloader


def test_ablation_extensions(benchmark, show):
    rows, read_results, write_results, offloader = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    show(
        format_table(
            ["scheduler", "workload", "energy vs always-on", "mean resp (ms)"],
            rows,
            title="ablation: paper-suggested extensions (cello @ 0.2, rf=3)",
        )
    )
    plain = read_results["Heuristic(a=0.2,b=100)"]
    predictive = read_results["PredictiveHeuristic(a=0.2,b=100)"]
    covering = [v for k, v in read_results.items() if k.startswith("CoveringSet")][0]

    # Prediction should not hurt energy materially on a skewed trace.
    assert predictive <= plain * 1.1
    # Concentrating on the covering subset also saves vs always-on.
    assert covering < 1.0

    # Write off-loading beats the write-oblivious Heuristic on a
    # write-heavy workload, and actually diverted writes.
    offload_key = offloader.name
    plain_writes = write_results["Heuristic(a=0.2,b=100)"]
    assert write_results[offload_key] <= plain_writes + 0.01
    assert offloader.total_offloaded > 0
