"""Fig. 16 — mean response time vs replication factor (Financial1).

Paper: same ordering as Cello, but the absolute response times are
roughly 3x lower because Financial1's arrivals are far less bursty
(Appendix A.4 attributes Cello's ~1 s means entirely to burstiness).
"""

from repro.experiments import common, figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig16_mean_response_financial(benchmark, show):
    result = benchmark.pedantic(figures.fig16, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]

    # Energy-aware schedulers beat Static once replication gives choices.
    for index in (2, 3, 4):
        assert heuristic[index] < static[index]
        assert wsc[index] < static[index]


def test_fig16_financial_faster_than_cello(benchmark, show):
    """The cross-trace claim: steadier arrivals, lower response times."""
    cello, financial = benchmark.pedantic(
        lambda: (figures.fig8(), figures.fig16()), rounds=1, iterations=1
    )
    label = SCHEDULER_LABELS["static"]
    cello_mean = sum(cello.series[label]) / len(cello.series[label])
    financial_mean = sum(financial.series[label]) / len(financial.series[label])
    show(
        "fig16 cross-trace check: Static mean response "
        f"cello={cello_mean:.3f}s vs financial={financial_mean:.3f}s"
    )
    assert financial_mean < cello_mean
