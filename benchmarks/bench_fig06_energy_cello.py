"""Fig. 6 — energy consumption vs replication factor (Cello).

Paper shape: all schedulers coincide at replication 1 (~0.88 of
always-on); Static stays flat; Random climbs toward 1.0; the energy-aware
schedulers fall monotonically (paper WSC: 0.88, 0.73, 0.63, 0.57, 0.52);
MWIS <= WSC <= Heuristic at a common scale.
"""

import pytest

from repro.experiments import common, figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig06_energy_vs_replication_cello(benchmark, show):
    result = benchmark.pedantic(figures.fig6, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    random_ = series[SCHEDULER_LABELS["random"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]

    # Replication 1: no choice, every simulated scheduler identical.
    assert static[0] == pytest.approx(random_[0], rel=0.02)
    assert static[0] == pytest.approx(heuristic[0], rel=0.02)
    # 2CPM alone already saves against always-on at replication 1.
    assert static[0] < 0.97

    # Static is flat in replication.
    assert max(static) - min(static) < 0.05

    # Random approaches (or exceeds, via transition overhead) always-on.
    assert random_[-1] > 0.9

    # Energy-aware schedulers decline monotonically (small tolerance for
    # seed noise between adjacent points).
    for values in (heuristic, wsc):
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 0.02
        assert values[-1] < values[0] - 0.15

    # Headline: replication 5 cuts energy vs Static by a large factor.
    assert wsc[-1] < static[-1] * 0.8


def test_fig06_offline_ordering_at_common_scale(benchmark, show):
    """MWIS <= WSC <= Heuristic when everything runs at the same scale."""

    def collect():
        rows = []
        for rf in (3, 5):
            mwis = common.run_cell("cello", rf, "mwis").normalized_energy
            wsc = common.run_cell(
                "cello", rf, "wsc", scale=common.MWIS_SCALE
            ).normalized_energy
            heuristic = common.run_cell(
                "cello", rf, "heuristic", scale=common.MWIS_SCALE
            ).normalized_energy
            rows.append((rf, mwis, wsc, heuristic))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    for _rf, mwis, wsc, heuristic in rows:
        assert mwis <= wsc + 0.02
        assert wsc <= heuristic + 0.03
    show(
        "fig6 (ordering check at MWIS scale "
        f"{common.MWIS_SCALE}):\n"
        + "\n".join(
            f"  rf={rf}: MWIS={m:.3f} <= WSC={w:.3f} <= Heuristic={h:.3f}"
            for rf, m, w, h in rows
        )
    )
