"""Ablation: power-aware caching in front of the scheduler.

Thin wrapper over :func:`repro.experiments.ablations.run_cache`; the
assertions live here.
"""

from repro.experiments.ablations import run_cache

PANEL = "ablation: block cache (cello, rf=3, Heuristic)"


def test_ablation_cache(benchmark, show):
    result = benchmark.pedantic(run_cache, rounds=1, iterations=1)
    show(result.render())
    labels = list(result.panel(PANEL).x_values)
    energies = result.series(PANEL, "energy vs always-on")
    by_label = dict(zip(labels, energies))
    # Any cache saves energy over none (absorbed re-references).
    assert by_label["lru(1000)"] < by_label["no cache"]
    assert by_label["pa-lru(1000)"] < by_label["no cache"]
    # Bigger caches do not cost energy.
    assert by_label["lru(1000)"] <= by_label["lru(200)"] + 0.01
    # Power-aware eviction is at least as good as plain LRU.
    assert by_label["pa-lru(1000)"] <= by_label["lru(1000)"] + 0.01
