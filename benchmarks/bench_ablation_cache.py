"""Ablation: power-aware caching in front of the scheduler.

The paper's related work (Zhu & Zhou) argues caching is complementary to
energy-aware scheduling: a cache absorbs re-references, and *power-aware*
eviction (spare the blocks of sleeping disks) turns hits into avoided
spin-ups. This sweep runs the Heuristic with no cache, plain LRU, and
PA-LRU at several capacities.
"""

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.cache.policy import LRUBlockCache, PowerAwareLRUCache
from repro.experiments import common
from repro.sim.runner import always_on_baseline, simulate

SCALE = 0.2
CAPACITIES = (200, 1000)


def run_sweep():
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
    base_config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, base_config)
    rows = []
    results = {}

    def run(label, factory):
        config = (
            base_config
            if factory is None
            else replace(base_config, cache_factory=factory)
        )
        scheduler = common.make_scheduler_for_key("heuristic")
        report = simulate(requests, catalog, scheduler, config)
        energy = report.total_energy / baseline.total_energy
        rows.append(
            [
                label,
                f"{energy:.3f}",
                f"{report.cache_hit_ratio * 100:.0f}%",
                f"{report.mean_response_time * 1000:.0f}",
            ]
        )
        results[label] = energy

    run("no cache", None)
    for capacity in CAPACITIES:
        run(f"lru({capacity})", lambda c=capacity: LRUBlockCache(c))
        run(
            f"pa-lru({capacity})",
            lambda c=capacity: PowerAwareLRUCache(c, scan_depth=16),
        )
    return rows, results


def test_ablation_cache(benchmark, show):
    rows, results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["cache", "energy vs always-on", "hit ratio", "mean resp (ms)"],
            rows,
            title="ablation: block cache (cello @ 0.2, rf=3, Heuristic)",
        )
    )
    # Any cache saves energy over none (absorbed re-references).
    assert results["lru(1000)"] < results["no cache"]
    assert results["pa-lru(1000)"] < results["no cache"]
    # Bigger caches do not cost energy.
    assert results["lru(1000)"] <= results["lru(200)"] + 0.01
    # Power-aware eviction is at least as good as plain LRU.
    assert results["pa-lru(1000)"] <= results["lru(1000)"] + 0.01
