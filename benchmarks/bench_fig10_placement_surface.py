"""Fig. 10 — energy vs (replication factor x data-locality z), Cello.

Paper shape: Random and Static only save energy when data locality is
skewed (z -> 1) and barely react to replication; the Heuristic still
saves heavily under uniform placement (z = 0) once replication is high
(paper: >40% saving at rf=5, z=0), and its locality sensitivity shrinks
as replication grows.
"""

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig10_energy_surface(benchmark, show):
    panels = benchmark.pedantic(figures.fig10, rounds=1, iterations=1)
    for panel in panels.values():
        show(panel.render())

    z_grid = panels["static"].x_values
    z0 = 0
    z1 = len(z_grid) - 1

    static_rf1 = panels["static"].series["rf=1"]
    random_rf5 = panels["random"].series["rf=5"]
    heuristic_rf5 = panels["heuristic"].series["rf=5"]
    heuristic_rf1 = panels["heuristic"].series["rf=1"]

    # Static/Random need skew: z=0 saves (almost) nothing vs z=1.
    assert static_rf1[z0] > 0.95
    assert static_rf1[z1] < static_rf1[z0]
    assert random_rf5[z0] > 0.95

    # Heuristic at rf=5 still saves heavily under uniform placement
    # (paper: over 40%).
    assert heuristic_rf5[z0] < 0.75

    # Replication shrinks the Heuristic's locality sensitivity.
    spread_rf1 = heuristic_rf1[z0] - heuristic_rf1[z1]
    spread_rf5 = heuristic_rf5[z0] - heuristic_rf5[z1]
    assert spread_rf5 <= spread_rf1 + 0.02
