"""Ablation: inactivity-period reshaping (the paper's problem (b), measured).

Section 1 motivates the whole approach with problem (b): disks rarely see
inactivity periods longer than the breakeven threshold, so 2CPM alone
saves little. Energy-aware scheduling *re-shapes the workload* — few
disks absorb the traffic, the rest accumulate long standby periods. This
ablation measures the standby-period distribution per scheduler from the
recorded per-disk transition logs.
"""

from dataclasses import replace

from repro.analysis.idleness import period_summary, standby_periods_of_report
from repro.analysis.tables import format_table
from repro.experiments import common
from repro.sim.runner import simulate

SCALE = 0.2
SCHEDULERS = ("random", "static", "heuristic", "wsc")


def run_sweep():
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
    config = replace(common.make_config(disks), record_transitions=True)
    summaries = {}
    for key in SCHEDULERS:
        scheduler = common.make_scheduler_for_key(key)
        report = simulate(requests, catalog, scheduler, config)
        summaries[key] = period_summary(standby_periods_of_report(report))
    return summaries


def test_ablation_standby_periods(benchmark, show):
    summaries = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [
            common.SCHEDULER_LABELS[key],
            summary.count,
            f"{summary.mean:.0f}",
            f"{summary.longest:.0f}",
            f"{summary.total:.0f}",
        ]
        for key, summary in summaries.items()
    ]
    show(
        format_table(
            [
                "scheduler",
                "standby periods",
                "mean (s)",
                "longest (s)",
                "total standby (s)",
            ],
            rows,
            title="ablation: standby-period reshaping (cello @ 0.2, rf=3)",
        )
    )
    # Energy-aware scheduling accumulates more total standby time than
    # both baselines...
    for key in ("heuristic", "wsc"):
        assert summaries[key].total > summaries["random"].total
        assert summaries[key].total >= summaries["static"].total * 0.95
    # ...in *longer* average stretches than Random's scatter allows.
    assert summaries["heuristic"].mean > summaries["random"].mean
