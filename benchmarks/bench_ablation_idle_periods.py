"""Ablation: inactivity-period reshaping (the paper's problem (b), measured).

Thin wrapper over :func:`repro.experiments.ablations.run_idle_periods`;
the assertions live here.
"""

from repro.experiments.ablations import IDLE_SCHEDULERS, run_idle_periods

PANEL = "ablation: standby-period reshaping (cello, rf=3)"


def test_ablation_standby_periods(benchmark, show):
    result = benchmark.pedantic(run_idle_periods, rounds=1, iterations=1)
    show(result.render())
    totals = dict(zip(IDLE_SCHEDULERS, result.series(PANEL, "total standby (s)")))
    means = dict(zip(IDLE_SCHEDULERS, result.series(PANEL, "mean (s)")))
    # Energy-aware scheduling accumulates more total standby time than
    # both baselines...
    for key in ("heuristic", "wsc"):
        assert totals[key] > totals["random"]
        assert totals[key] >= totals["static"] * 0.95
    # ...in *longer* average stretches than Random's scatter allows.
    assert means["heuristic"] > means["random"]
