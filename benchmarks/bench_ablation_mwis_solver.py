"""Ablation: MWIS solver choice and graph-construction cap (Section 3.1).

Thin wrapper over :func:`repro.experiments.ablations.run_mwis_solver`;
the assertions live here.
"""

from repro.experiments.ablations import MWIS_METHODS, run_mwis_solver

SOLVER_PANEL = "ablation: MWIS solver (cello, rf=3, cap=4)"
CAP_PANEL = "ablation: successor cap (gwmin)"


def test_ablation_mwis_solver(benchmark, show):
    result = benchmark.pedantic(run_mwis_solver, rounds=1, iterations=1)
    show(result.render())

    energies = result.series(SOLVER_PANEL, "energy vs always-on")
    by_method = dict(zip(MWIS_METHODS, energies))
    # Weighted greedies never lose to the unweighted min-degree rule.
    assert by_method["gwmin"] <= by_method["min-degree"] + 0.01
    assert by_method["gwmin2"] <= by_method["min-degree"] + 0.01

    savings = result.series(CAP_PANEL, "true saving (J)")
    nodes = result.series(CAP_PANEL, "graph nodes")
    # Graph size grows with the cap; the saving saturates early.
    assert nodes == sorted(nodes)
    assert savings[1] >= savings[0] - 1e-6
    assert savings[-1] <= savings[1] * 1.15 + 1.0  # cap=2 already ~there
