"""Ablation: MWIS solver choice and graph-construction cap (Section 3.1).

Compares the paper's GWMIN greedy against GWMIN2 and the unweighted
min-degree greedy on the same conflict graph, and sweeps the per-request
successor cap (``neighborhood``) that bounds graph size. Expected story:

* weighted greedies (GWMIN/GWMIN2) beat the unweighted min-degree rule;
* a small cap already captures almost all of the achievable saving —
  the nearest successors carry the largest Eq. 3 weights — which is why
  the default benchmarks can cap the construction safely.
"""

from repro.analysis.tables import format_series_table, format_table
from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator
from repro.core.problem import SchedulingProblem
from repro.experiments import common

SCALE = 0.1
CAPS = (1, 2, 4, 8)
METHODS = ("gwmin", "gwmin2", "min-degree")


def build_problem():
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
    config = common.make_config(disks)
    return SchedulingProblem.build(requests, catalog, config.profile, disks)


def run_solver_comparison(problem):
    evaluator = OfflineEvaluator(problem)
    rows = []
    for method in METHODS:
        scheduler = MWISOfflineScheduler(method=method, neighborhood=4)
        result = scheduler.schedule_detailed(problem)
        evaluation = evaluator.evaluate(result.assignment)
        rows.append(
            [
                method,
                f"{result.estimated_saving:.0f}",
                f"{evaluation.total_saving:.0f}",
                f"{evaluation.normalized_energy:.3f}",
            ]
        )
    return rows


def run_cap_sweep(problem):
    evaluator = OfflineEvaluator(problem)
    savings, nodes = [], []
    for cap in CAPS:
        scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=cap)
        result = scheduler.schedule_detailed(problem)
        evaluation = evaluator.evaluate(result.assignment)
        savings.append(evaluation.total_saving)
        nodes.append(float(result.num_nodes))
    return savings, nodes


def test_ablation_mwis_solver(benchmark, show):
    problem = build_problem()

    def run_all():
        return run_solver_comparison(problem), run_cap_sweep(problem)

    (solver_rows, (savings, nodes)) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    show(
        format_table(
            ["solver", "MWIS weight", "true saving", "energy vs always-on"],
            solver_rows,
            title="ablation: MWIS solver (cello @ 0.1 scale, rf=3, cap=4)",
        )
    )
    show(
        format_series_table(
            "cap",
            CAPS,
            {"true saving (J)": savings, "graph nodes": nodes},
            title="ablation: successor cap (gwmin)",
            precision=0,
        )
    )

    by_method = {row[0]: float(row[3]) for row in solver_rows}
    # Weighted greedies never lose to the unweighted min-degree rule.
    assert by_method["gwmin"] <= by_method["min-degree"] + 0.01
    assert by_method["gwmin2"] <= by_method["min-degree"] + 0.01

    # Graph size grows with the cap; the saving saturates early.
    assert nodes == sorted(nodes)
    assert savings[1] >= savings[0] - 1e-6
    assert savings[-1] <= savings[1] * 1.15 + 1.0  # cap=2 already ~there
