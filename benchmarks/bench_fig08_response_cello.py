"""Fig. 8 — mean request response time vs replication factor (Cello).

Paper shape: Heuristic and WSC beat Static and Random (fewer spin-up
delays); WSC sits above Heuristic (batch queueing delay); replication
helps the energy-aware schedulers. MWIS is omitted (offline model).
"""

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig08_mean_response_cello(benchmark, show):
    result = benchmark.pedantic(figures.fig8, rounds=1, iterations=1)
    show(result.render())
    series = result.series
    static = series[SCHEDULER_LABELS["static"]]
    random_ = series[SCHEDULER_LABELS["random"]]
    heuristic = series[SCHEDULER_LABELS["heuristic"]]
    wsc = series[SCHEDULER_LABELS["wsc"]]

    # At replication >= 3 the energy-aware schedulers respond faster than
    # the baselines (the paper's 38.7%-reduction headline for WSC at rf=3).
    for index in (2, 3, 4):
        assert heuristic[index] < static[index]
        assert wsc[index] < static[index]
        assert heuristic[index] < random_[index]

    # WSC pays the batch queueing delay over Heuristic.
    assert wsc[-1] >= heuristic[-1]

    # Replication improves the Heuristic's responsiveness.
    assert heuristic[-1] < heuristic[0]
