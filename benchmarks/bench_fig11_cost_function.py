"""Fig. 11 — the Heuristic cost-function trade-off (Cello, rf=3).

Paper shape: raising alpha (weighting energy) cuts energy and raises
response time, both normalised to the alpha=0 run; small beta makes the
energy term dominate sooner (curves shift toward the alpha=1 corner),
large beta shifts everything toward the alpha=0 corner. The paper settles
on alpha=0.2, beta=100 as the balanced operating point.
"""

from repro.experiments import figures


def test_fig11_cost_function_tradeoff(benchmark, show):
    energy, response = benchmark.pedantic(
        figures.fig11, rounds=1, iterations=1
    )
    show(energy.render())
    show(response.render())

    for beta_label, values in energy.series.items():
        # Normalised to alpha=0.
        assert values[0] == 1.0
        # Energy at alpha=1 is no higher than at alpha=0...
        assert values[-1] <= 1.0 + 1e-9

    # ...and for the small betas the drop is substantial (paper: >35%
    # with their configuration; exact depth depends on the profile).
    assert energy.series["beta=1"][-1] < 0.9

    # Response time rises when energy dominates the cost.
    for beta_label, values in response.series.items():
        assert values[-1] >= values[0] - 0.05

    # Larger beta = less energy weight = higher energy at a given alpha.
    mid = len(energy.x_values) // 2
    assert energy.series["beta=1000"][mid] >= energy.series["beta=1"][mid] - 0.02
