"""Ablation: arrival burstiness (the Appendix A.4 cross-trace claim).

Thin wrapper over :func:`repro.experiments.ablations.run_burstiness`; the
assertion lives here.
"""

from repro.experiments.ablations import run_burstiness

PANEL = "ablation: arrival burstiness (Heuristic, rf=3, same rate)"


def test_ablation_burstiness(benchmark, show):
    result = benchmark.pedantic(run_burstiness, rounds=1, iterations=1)
    show(result.render())
    labels = list(result.panel(PANEL).x_values)
    responses = dict(zip(labels, result.series(PANEL, "mean response (s)")))
    # The Appendix A.4 claim, isolated: burstier arrivals -> slower
    # responses, all else equal.
    assert responses["poisson (financial-like)"] < responses["mmpp (cello-like)"]
