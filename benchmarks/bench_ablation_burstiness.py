"""Ablation: arrival burstiness (the Appendix A.4 cross-trace claim).

The paper attributes the Cello-vs-Financial1 response-time gap entirely
to burstiness. This ablation isolates the variable: three arrival models
(MMPP = Cello-like, Poisson = Financial1-like, Pareto = heavy-tailed) at
one mean rate and one popularity model, through the same scheduler.
"""

import random

from repro.analysis.tables import format_table
from repro.core.heuristic import HeuristicScheduler
from repro.experiments import common
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.sim.runner import always_on_baseline, simulate
from repro.traces.record import TraceRecord
from repro.traces.synthetic import (
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
    ZipfPopularity,
    coefficient_of_variation,
    inter_arrival_gaps,
)
from repro.traces.workload import Workload

NUM_REQUESTS = 14_000
NUM_DATA = 6_000
NUM_DISKS = 36
RATE = 4.3  # matches the scaled Cello-like mean rate at this disk count

PROCESSES = (
    ("mmpp (cello-like)", MMPPArrivals(24.0, 0.6, 4.0, 22.0)),
    ("poisson (financial-like)", PoissonArrivals(RATE)),
    ("pareto (heavy tail)", ParetoArrivals(RATE, shape=1.6)),
)


def run_sweep():
    rows = []
    responses = {}
    for label, process in PROCESSES:
        rng = random.Random(7)
        times = process.generate(NUM_REQUESTS, rng)
        popularity = ZipfPopularity(NUM_DATA, 0.9)
        records = [
            TraceRecord(time=t, data_key=popularity.sample(rng)) for t in times
        ]
        workload = Workload(records)
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(replication_factor=3),
            num_disks=NUM_DISKS,
            seed=8,
        )
        config = common.make_config(NUM_DISKS)
        baseline = always_on_baseline(requests, catalog, config)
        report = simulate(requests, catalog, HeuristicScheduler(), config)
        cv = coefficient_of_variation(inter_arrival_gaps(times))
        responses[label] = report.mean_response_time
        rows.append(
            [
                label,
                f"{cv:.2f}",
                f"{report.total_energy / baseline.total_energy:.3f}",
                f"{report.mean_response_time * 1000:.0f}",
                f"{report.response_percentile(0.9) * 1000:.0f}",
            ]
        )
    return rows, responses


def test_ablation_burstiness(benchmark, show):
    rows, responses = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["arrivals", "CV", "energy", "mean resp (ms)", "p90 (ms)"],
            rows,
            title="ablation: arrival burstiness (Heuristic, rf=3, same rate)",
        )
    )
    # The Appendix A.4 claim, isolated: burstier arrivals -> slower
    # responses, all else equal.
    assert responses["poisson (financial-like)"] < responses["mmpp (cello-like)"]
