"""Shared benchmark plumbing.

Each ``bench_figNN_*.py`` file reproduces one figure of the paper: it runs
the experiment once (results are memoised across benchmark files, so the
Cello campaign is simulated a single time for Figs. 6-9 and 12-13), prints
the figure's series as a table, asserts the paper's qualitative shape, and
reports wall-clock through pytest-benchmark.

Scale notes: simulated runs default to the paper's full scale (180 disks,
70 000 requests — seconds per run in this simulator); offline MWIS runs
default to ``REPRO_MWIS_SCALE`` = 0.15 because its conflict graph at full
scale is ~1M nodes. Ordering assertions against MWIS are therefore made
at the MWIS scale (all schedulers re-run there, cheaply).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a figure table through pytest's captured stdout."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
            print()

    return _show
