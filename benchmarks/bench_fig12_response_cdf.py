"""Fig. 12 — inverse CDF of response time at replication 3 (Cello).

Paper shape: the majority of requests finish within ~100 ms under every
schedule; under 2CPM a small tail (about a percent) waits out the full
spin-up delay; the always-on configuration (and the offline MWIS model)
has no such tail.
"""

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig12_response_inverse_cdf(benchmark, show):
    result = benchmark.pedantic(figures.fig12, rounds=1, iterations=1)
    show(result.render())
    thresholds = list(result.x_values)

    def prob_at(label, x):
        return result.series[label][thresholds.index(x)]

    # Always-on: no spin-up tail at all beyond 1 s (only queueing noise).
    assert prob_at("Always-on", 10.0) < 0.001

    # 2CPM schedules have a visible but small tail beyond 10 s.
    static_tail = prob_at(SCHEDULER_LABELS["static"], 10.0)
    assert 0.0 < static_tail < 0.2

    # The energy-aware Heuristic shrinks that tail.
    heuristic_tail = prob_at(SCHEDULER_LABELS["heuristic"], 10.0)
    assert heuristic_tail <= static_tail

    # The bulk of requests are fast in every schedule: at 100 ms most
    # requests have completed for the always-on config...
    assert prob_at("Always-on", 0.1) < 0.35
    # ...and no 2CPM tail survives past the max spin-up + queue horizon.
    for label, values in result.series.items():
        assert values[-1] < 0.25
