"""Ablation: the 2CPM idleness threshold (design choice behind Section 1).

Sweeps the spin-down threshold as a multiple of the breakeven time TB and
measures energy + response time, plus the empirical competitive ratio of
2CPM against the per-disk offline power oracle on the *actual* per-disk
arrival chains. The expected story:

* aggressive thresholds (<< TB) burn transition energy and spin-up
  delays; conservative ones (>> TB) burn idle energy;
* the breakeven threshold (x1) sits near the energy minimum — the
  2-competitiveness design, measured;
* the measured competitive ratio is far below the worst-case 2.
"""

from dataclasses import replace
from typing import Dict, List

from repro.analysis.tables import format_series_table
from repro.core.scheduler import OnlineScheduler
from repro.experiments import common
from repro.power.oracle import empirical_competitive_ratio
from repro.power.policy import ScaledBreakevenPolicy
from repro.power.profile import PAPER_EVAL
from repro.sim.runner import always_on_baseline, simulate
from repro.types import DiskId

FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
SCALE = 0.2


class RecordingScheduler(OnlineScheduler):
    """Wraps a scheduler and records each disk's arrival chain."""

    def __init__(self, inner: OnlineScheduler):
        self._inner = inner
        self.chains: Dict[DiskId, List[float]] = {}

    def choose(self, request, view):
        disk_id = self._inner.choose(request, view)
        self.chains.setdefault(disk_id, []).append(view.now)
        return disk_id

    @property
    def name(self):
        return self._inner.name


def run_sweep():
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, SCALE)
    base_config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, base_config)
    energies, responses, ratios = [], [], []
    for factor in FACTORS:
        config = replace(base_config, policy=ScaledBreakevenPolicy(factor))
        scheduler = RecordingScheduler(
            common.make_scheduler_for_key("heuristic")
        )
        report = simulate(requests, catalog, scheduler, config)
        energies.append(report.total_energy / baseline.total_energy)
        responses.append(report.mean_response_time)
        ratios.append(
            empirical_competitive_ratio(
                PAPER_EVAL, list(scheduler.chains.values()), report.duration
            )
        )
    return energies, responses, ratios


def test_ablation_threshold(benchmark, show):
    energies, responses, ratios = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    show(
        format_series_table(
            "threshold xTB",
            FACTORS,
            {
                "energy vs always-on": energies,
                "mean response (s)": responses,
                "2CPM/oracle ratio": ratios,
            },
            title="ablation: spin-down threshold (cello, rf=3, Heuristic)",
        )
    )
    index_of_one = FACTORS.index(1.0)
    # The breakeven threshold is within 10% of the sweep's energy minimum.
    assert energies[index_of_one] <= min(energies) + 0.1
    # Very conservative thresholds cost more than the breakeven setting.
    assert energies[-1] > energies[index_of_one]
    # Measured 2CPM-vs-oracle ratios sit comfortably under the bound.
    assert all(ratio < 2.5 for ratio in ratios)
