"""Ablation: the 2CPM idleness threshold (design choice behind Section 1).

Thin wrapper over :func:`repro.experiments.ablations.run_threshold` (see
its docstring for the expected story); the assertions live here.
"""

from repro.experiments.ablations import THRESHOLD_FACTORS, run_threshold

PANEL = "ablation: spin-down threshold (cello, rf=3, Heuristic)"


def test_ablation_threshold(benchmark, show):
    result = benchmark.pedantic(run_threshold, rounds=1, iterations=1)
    show(result.render())
    energies = result.series(PANEL, "energy vs always-on")
    ratios = result.series(PANEL, "2CPM/oracle ratio")
    index_of_one = THRESHOLD_FACTORS.index(1.0)
    # The breakeven threshold is within 10% of the sweep's energy minimum.
    assert energies[index_of_one] <= min(energies) + 0.1
    # Very conservative thresholds cost more than the breakeven setting.
    assert energies[-1] > energies[index_of_one]
    # Measured 2CPM-vs-oracle ratios sit comfortably under the bound.
    assert all(ratio < 2.5 for ratio in ratios)
