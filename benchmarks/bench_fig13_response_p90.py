"""Fig. 13 — 90th-percentile response time vs replication factor (Cello).

Paper shape: always-on stays at pure service time (~10 ms); WSC is the
highest (its batch interval adds queueing delay to every request) but
improves with replication; the Heuristic converges toward the service
floor as replication grows.
"""

from repro.experiments import figures
from repro.experiments.common import SCHEDULER_LABELS


def test_fig13_p90_response(benchmark, show):
    result = benchmark.pedantic(figures.fig13, rounds=1, iterations=1)
    show(result.render())
    always_on = result.series["Always-on"]
    heuristic = result.series[SCHEDULER_LABELS["heuristic"]]
    wsc = result.series[SCHEDULER_LABELS["wsc"]]

    # Always-on p90 is flat (same value repeated).
    assert len(set(always_on)) == 1

    # WSC's p90 includes the batch queueing delay: above Heuristic's.
    assert wsc[-1] >= heuristic[-1]

    # Replication does not hurt the energy-aware schedulers' p90.
    assert heuristic[-1] <= heuristic[0] * 1.5 + 1.0
    assert wsc[-1] <= wsc[0] * 1.5 + 1.0
