"""Fig. 17 — per-disk state-time breakdown at replication 3 (Financial1)."""

from repro.experiments import figures
from repro.power.states import DiskPowerState


def aggregate(panels, label, state):
    fractions = panels[label]
    return sum(f[state] for f in fractions) / len(fractions)


def test_fig17_state_breakdown_financial(benchmark, show):
    result = benchmark.pedantic(figures.fig17, rounds=1, iterations=1)
    show(result.render())
    panels = result.panels

    for label in panels:
        assert aggregate(panels, label, DiskPowerState.ACTIVE) < 0.02

    wsc_standby = aggregate(
        panels, "Energy-aware WSC(batch 0.1s)", DiskPowerState.STANDBY
    )
    assert wsc_standby > aggregate(panels, "Random", DiskPowerState.STANDBY)
    assert wsc_standby >= aggregate(panels, "Static", DiskPowerState.STANDBY)
