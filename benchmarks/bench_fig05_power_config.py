"""Fig. 5 — the 2CPM power configuration used throughout the evaluation."""

from repro.experiments import figures
from repro.power.profile import PAPER_EVAL


def test_fig05_power_config(benchmark, show):
    text = benchmark.pedantic(figures.fig5, rounds=1, iterations=1)
    show(text)
    # The calibration constraints the profile must satisfy (see DESIGN.md):
    # standby draws far less than idle (the paper's premise)...
    assert PAPER_EVAL.standby_power < PAPER_EVAL.idle_power / 4
    # ...the spin-up penalty matches the paper's 5-15 s band (Fig. 12)...
    assert 5.0 <= PAPER_EVAL.spin_up_time <= 15.0
    # ...and the breakeven threshold is the 2CPM one.
    assert PAPER_EVAL.breakeven_time * PAPER_EVAL.idle_power == (
        PAPER_EVAL.transition_energy
    )
