"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists so the package can
be installed in environments without the ``wheel`` package / PEP 660
support (``python setup.py develop`` or legacy ``pip install -e .``).
"""

from setuptools import setup

setup()
