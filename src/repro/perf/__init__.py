"""Performance observability for the simulation core.

Three layers, all opt-in so the hot path pays nothing by default:

* :mod:`repro.perf.profiler` — a :class:`~repro.perf.profiler.Profiler`
  combining cProfile accumulation with cheap per-phase wall-clock (and
  optionally allocation) counters. When no profiler is active, the
  instrumentation hook returns one shared ``nullcontext`` — a single
  ``is None`` test per phase, no allocation.
* :mod:`repro.perf.microbench` — isolated microbenchmarks of the engine
  event loop, timer churn, scheduler ``choose()`` and storage dispatch,
  plus the ``perf_core`` end-to-end events/sec measurement that feeds
  ``BENCH_perf_core.json`` and the CI regression gate.
* :mod:`repro.perf.benchprof` — runs any registered bench under cProfile
  and prints the top-N cumulative table (``repro-storage profile fig6``).
"""

from __future__ import annotations

from repro.perf.profiler import (
    PhaseStats,
    Profiler,
    activate,
    active_profiler,
    deactivate,
    hook_phase,
)

__all__ = [
    "PhaseStats",
    "Profiler",
    "activate",
    "active_profiler",
    "deactivate",
    "hook_phase",
]
