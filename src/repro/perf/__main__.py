"""``python -m repro.perf`` — run the microbenchmark suite."""

from __future__ import annotations

import sys

from repro.perf.microbench import main

if __name__ == "__main__":
    sys.exit(main())
