"""Microbenchmarks of the simulation hot path.

Each bench isolates one layer so a regression can be localised without
bisecting a full experiment:

* ``engine_dispatch`` — raw event-loop throughput: posted (handle-free)
  no-op events through :meth:`SimulationEngine.run`.
* ``timer_churn`` — :class:`ReusableTimer` re-arm/cancel churn, the 2CPM
  idle-timer pattern that dominated heap traffic before the slotted
  timer existed.
* ``scheduler_choose`` — :meth:`HeuristicScheduler.choose` against a
  live :class:`StorageSystem` view (Eq. 5 evaluation per replica).
* ``storage_dispatch`` — a small end-to-end trace replay (arrival →
  cost → dispatch → service → completion).
* ``kernel_choose_{python,numpy}_{10,180,1000}`` — the columnar
  fleet-cost kernel's Eq. 5/Eq. 6 argmin (scalar gather vs vectorised
  pass) over whole-fleet candidate sets of each size.
* ``wsc_weight_pass_{python,numpy}_180`` — the WSC batch scheduler's
  per-tick Eq. 6 weight pass over every covering disk.
* ``perf_core`` — the headline number: events/sec of the fig6 workload
  cell (cello, rf=3, heuristic) via the harness's
  :func:`~repro.experiments.harness.runner.execute_spec`, measured with
  a warm workload binding (generation excluded, like the recorded
  pre-optimisation baseline).

``python -m repro.perf`` runs the suite, writes a schema-versioned
``BENCH_perf_core.json`` and — given ``--baseline`` — enforces the CI
regression gate: fail when measured events/sec drops more than
``--tolerance`` below the committed baseline document.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Best-of events/sec of the fig6 workload cell (cello rf=3 heuristic,
#: scale 0.5, seed 1, warm binding) measured on the reference container
#: immediately *before* the hot-path optimisation PR. The ``speedup``
#: field of the emitted document is relative to this constant; the CI
#: gate compares against the committed document instead (same-machine
#: comparison, no cross-hardware constant involved).
PRE_PR_BASELINE_EPS = 109305.0

#: Default acceptable fractional drop of events/sec vs the baseline
#: document before the gate fails (hardware noise on shared runners).
DEFAULT_GATE_TOLERANCE = 0.2


@dataclass(frozen=True)
class MicrobenchResult:
    """One microbench measurement.

    Attributes:
        name: Bench identifier.
        iterations: Operations performed (events, choose calls, ...).
        wall_s: Wall-clock seconds for the measured region.
    """

    name: str
    iterations: int
    wall_s: float

    @property
    def rate_per_s(self) -> float:
        """Operations per second (0.0 for an unmeasurably fast region)."""
        return self.iterations / self.wall_s if self.wall_s > 0 else 0.0

    def payload(self) -> Dict[str, Any]:
        """JSON-ready dict for the bench document's result block."""
        return {
            "iterations": self.iterations,
            "wall_s": self.wall_s,
            "rate_per_s": self.rate_per_s,
        }


def _noop() -> None:
    return None


def bench_engine_dispatch(num_events: int = 200_000) -> MicrobenchResult:
    """Raw dispatch throughput of posted (handle-free) no-op events."""
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()
    for index in range(num_events):
        engine.post(float(index) * 1e-6, _noop)
    started = time.perf_counter()
    engine.run()
    wall_s = time.perf_counter() - started
    return MicrobenchResult("engine_dispatch", engine.events_processed, wall_s)


def bench_timer_churn(
    num_timers: int = 256, rounds: int = 200
) -> MicrobenchResult:
    """2CPM-style timer churn: re-arm, cancel, re-arm again, drain.

    Every round re-arms all timers to staggered future deadlines,
    cancels half, re-arms the cancelled half later still, and drains
    one round's worth of firings — the cancel/re-arm interleave the
    idle-timer path produces under bursty arrivals.
    """
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()
    timers = [engine.timer(_noop) for _ in range(num_timers)]
    operations = 0
    started = time.perf_counter()
    for _ in range(rounds):
        base_s = engine.now + 1.0
        for offset, timer in enumerate(timers):
            timer.schedule_at(base_s + offset * 1e-3)
        operations += num_timers
        for offset, timer in enumerate(timers):
            if offset % 2:
                timer.cancel()
        operations += num_timers // 2
        for offset, timer in enumerate(timers):
            if offset % 2:
                timer.schedule_at(base_s + 1.0 + offset * 1e-3)
        operations += num_timers // 2
        engine.run(until=base_s + 2.0 + num_timers * 1e-3)
    wall_s = time.perf_counter() - started
    return MicrobenchResult("timer_churn", operations, wall_s)


def _build_fleet_fixture(num_disks: int, seed: int = 1) -> Any:
    """A :class:`FleetCostState` with a deterministic mixed-state fleet.

    Roughly the state mix a mid-run fig6 cell shows: a third standby
    (memoised wake-up constant), the rest idle with a recorded ``Tlast``
    and a small queue — so both Eq. 5 branches and the queue term are
    live in the measured arithmetic.
    """
    import random

    from repro.core.fleet import FleetCostState
    from repro.power.profile import PAPER_EVAL
    from repro.power.states import DiskPowerState

    fleet = FleetCostState(
        num_disks, PAPER_EVAL, initial_state=DiskPowerState.STANDBY
    )
    rng = random.Random(seed)
    for disk_id in range(num_disks):
        if rng.random() < 2.0 / 3.0:
            # IDLE with a recorded last-request time and queued work.
            fleet.const[disk_id] = 0.0
            fleet.pi[disk_id] = fleet.idle_power
            fleet.tlast[disk_id] = rng.uniform(0.0, 3600.0)
            fleet.queue[disk_id] = float(rng.randrange(0, 4))
    return fleet


def bench_kernel_choose(
    num_disks: int, *, vector: bool, iterations: int = 2_000, seed: int = 1
) -> MicrobenchResult:
    """Eq. 5/Eq. 6 argmin over the whole fleet, scalar vs vectorised.

    Scores all ``num_disks`` disks per call — the worst-case candidate
    set — through the requested :class:`FleetCostState` branch, so the
    scalar-vs-numpy crossover is visible across fleet sizes.
    """
    fleet = _build_fleet_fixture(num_disks, seed=seed)
    choose = fleet.choose_vector if vector else fleet.choose_scalar
    candidates = list(range(num_disks))
    now = 3600.0
    started = time.perf_counter()
    for _ in range(iterations):
        choose(candidates, now, 0.2, 100.0, 0.8)
    wall_s = time.perf_counter() - started
    kernel = "numpy" if vector else "python"
    return MicrobenchResult(
        f"kernel_choose_{kernel}_{num_disks}", iterations, wall_s
    )


def bench_wsc_weight_pass(
    num_disks: int = 180,
    *,
    vector: bool,
    iterations: int = 2_000,
    seed: int = 1,
) -> MicrobenchResult:
    """The WSC per-tick weight pass: Eq. 6 over every covering disk."""
    fleet = _build_fleet_fixture(num_disks, seed=seed)
    weights = fleet.weights_vector if vector else fleet.weights_scalar
    disk_ids = list(range(num_disks))
    now = 3600.0
    started = time.perf_counter()
    for _ in range(iterations):
        weights(disk_ids, now, 0.2, 100.0, 0.8)
    wall_s = time.perf_counter() - started
    kernel = "numpy" if vector else "python"
    return MicrobenchResult(
        f"wsc_weight_pass_{kernel}_{num_disks}", iterations, wall_s
    )


def _build_choose_fixture(
    scale: float, seed: int
) -> Tuple[Any, Any, Sequence[Any]]:
    """A live (scheduler, system view, requests) triple for choose()."""
    from repro.core import CostFunction, HeuristicScheduler
    from repro.experiments.harness.runner import (
        get_binding,
        make_config,
    )
    from repro.sim.storage import StorageSystem

    requests, catalog, disks = get_binding("cello", 3, 1.0, scale, seed)
    config = make_config(disks, "paper-evaluation", seed)
    scheduler = HeuristicScheduler(CostFunction(alpha=0.2, beta=100.0))
    system = StorageSystem(catalog, scheduler, config)
    return scheduler, system, requests


def bench_scheduler_choose(
    scale: float = 0.1, seed: int = 1, repeats: int = 3
) -> MicrobenchResult:
    """Eq. 5 evaluation throughput: choose() over a real request stream.

    The system view is frozen at t=0 (no events run), so this isolates
    the scheduler + cost-function arithmetic from the event loop.
    """
    scheduler, system, requests = _build_choose_fixture(scale, seed)
    choose = scheduler.choose
    started = time.perf_counter()
    for _ in range(repeats):
        for request in requests:
            choose(request, system)
    wall_s = time.perf_counter() - started
    return MicrobenchResult(
        "scheduler_choose", repeats * len(requests), wall_s
    )


def bench_storage_dispatch(
    scale: float = 0.05, seed: int = 1
) -> MicrobenchResult:
    """Small end-to-end replay: arrival → dispatch → service → complete."""
    from repro.core import CostFunction, HeuristicScheduler
    from repro.experiments.harness.runner import get_binding, make_config
    from repro.sim.storage import StorageSystem

    requests, catalog, disks = get_binding("cello", 3, 1.0, scale, seed)
    config = make_config(disks, "paper-evaluation", seed)
    scheduler = HeuristicScheduler(CostFunction(alpha=0.2, beta=100.0))
    system = StorageSystem(catalog, scheduler, config)
    started = time.perf_counter()
    report = system.run(requests)
    wall_s = time.perf_counter() - started
    return MicrobenchResult(
        "storage_dispatch", report.events_processed, wall_s
    )


def bench_tape_plan(
    policy: str, queue_depth: int, iterations: int = 200, seed: int = 1
) -> MicrobenchResult:
    """LTSP sequencing throughput: plan() over a fixed pending batch.

    One plan call sequences ``queue_depth`` pending requests — the work
    the tape drive performs per busy period. Positions are a seeded
    uniform scatter over an LTO-length tape; the head starts mid-tape so
    both sweep directions stay populated. At ``queue_depth`` above the
    DP cutoff the ``ltsp`` policy exercises its nearest-neighbour
    fallback, which is exactly the saturated-queue path worth timing.
    """
    import random

    from repro.tape.profile import LTO_GEN8
    from repro.tape.sequencer import make_sequencer

    rng = random.Random(seed)
    positions = [
        rng.uniform(0.0, LTO_GEN8.tape_length) for _ in range(queue_depth)
    ]
    head_m = LTO_GEN8.tape_length / 2
    sequencer = make_sequencer(policy)
    plan = sequencer.plan
    started = time.perf_counter()
    for _ in range(iterations):
        plan(head_m, positions)
    wall_s = time.perf_counter() - started
    return MicrobenchResult(
        f"tape_plan_{policy}_{queue_depth}", iterations * queue_depth, wall_s
    )


def measure_perf_core(
    scale: float = 0.5, seed: int = 1, repeats: int = 3
) -> Tuple[MicrobenchResult, List[Dict[str, Any]]]:
    """Events/sec of the fig6 workload cell, best of ``repeats``.

    The first (unmeasured) warm-up run generates and memoises the
    workload binding so measured runs time the simulation alone —
    matching the protocol behind :data:`PRE_PR_BASELINE_EPS`.

    Returns the best-run result plus one schema-shaped point dict per
    measured run.
    """
    from repro.experiments.harness.runner import execute_spec, get_binding
    from repro.experiments.harness.spec import cell_spec

    spec = cell_spec("cello", 3, "heuristic", scale=scale, seed=seed)
    # Warm-up: populate the workload/binding memos (not measured).
    get_binding(
        spec.trace,
        spec.replication_factor,
        spec.zipf_exponent,
        spec.scale,
        spec.seed,
    )
    best: Optional[MicrobenchResult] = None
    points: List[Dict[str, Any]] = []
    for _ in range(repeats):
        started = time.perf_counter()
        payload = execute_spec(spec)
        wall_s = time.perf_counter() - started
        events = int(payload["report"]["events_processed"])
        points.append(
            {
                "spec": spec.key_payload(),
                "label": spec.label(),
                "cached": False,
                "wall_s": wall_s,
                "events_processed": events,
            }
        )
        result = MicrobenchResult("perf_core", events, wall_s)
        if best is None or result.rate_per_s > best.rate_per_s:
            best = result
    assert best is not None  # repeats >= 1 is enforced by the CLI
    return best, points


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` off-POSIX."""
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024  # Linux reports kilobytes


def run_suite(
    *,
    scale: float = 0.5,
    seed: int = 1,
    repeats: int = 3,
    quick: bool = False,
) -> Dict[str, Any]:
    """Run every microbench and assemble the ``repro-bench/1`` document.

    ``quick`` shrinks every bench (CI smoke / test suite); the emitted
    document stays schema-valid either way.
    """
    from repro.experiments.harness.schema import (
        BENCH_SCHEMA,
        validate_bench_payload,
    )

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if quick:
        scale = min(scale, 0.05)
        repeats = 1
    started = time.perf_counter()
    micro = [
        bench_engine_dispatch(20_000 if quick else 200_000),
        bench_timer_churn(rounds=20 if quick else 200),
        bench_scheduler_choose(
            scale=min(scale, 0.1), seed=seed, repeats=1 if quick else 3
        ),
        bench_storage_dispatch(scale=min(scale, 0.05), seed=seed),
    ]
    kernel_iterations = 200 if quick else 2_000
    for num_disks in (10, 180, 1000):
        micro.append(
            bench_kernel_choose(
                num_disks,
                vector=False,
                iterations=kernel_iterations,
                seed=seed,
            )
        )
        micro.append(
            bench_kernel_choose(
                num_disks,
                vector=True,
                iterations=kernel_iterations,
                seed=seed,
            )
        )
    for vector in (False, True):
        micro.append(
            bench_wsc_weight_pass(
                vector=vector, iterations=kernel_iterations, seed=seed
            )
        )
    for policy in ("nearest", "ltsp"):
        for queue_depth in (10, 100, 1000):
            micro.append(
                bench_tape_plan(
                    policy,
                    queue_depth,
                    iterations=20 if quick else 200,
                    seed=seed,
                )
            )
    core, points = measure_perf_core(scale=scale, seed=seed, repeats=repeats)
    wall_clock_s = time.perf_counter() - started

    events = sum(int(point["events_processed"]) for point in points)
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": "perf_core",
        "created_unix": time.time(),
        "scale": scale,
        "mwis_scale": scale,
        "seed": seed,
        "jobs": 1,
        "wall_clock_s": wall_clock_s,
        "events_processed": events,
        "events_per_sec": core.rate_per_s,
        "peak_rss_bytes": _peak_rss_bytes(),
        "cache": {
            # Microbenchmarks must measure real work, never cache replay.
            "enabled": False,
            "hits": 0,
            "misses": len(points),
            "corrupt": 0,
            "hit_rate": 0.0,
        },
        "points": points,
        "result": {
            "baseline_events_per_sec": PRE_PR_BASELINE_EPS,
            "events_per_sec": core.rate_per_s,
            "speedup": core.rate_per_s / PRE_PR_BASELINE_EPS,
            "quick": quick,
            "microbench": {r.name: r.payload() for r in micro},
        },
    }
    violations = validate_bench_payload(payload)
    if violations:
        raise RuntimeError(
            "perf bench document violates the schema: " + "; ".join(violations)
        )
    return payload


def check_regression(
    payload: Dict[str, Any],
    baseline_path: Path,
    tolerance: float = DEFAULT_GATE_TOLERANCE,
) -> Optional[str]:
    """Compare measured events/sec against a committed bench document.

    Returns a human-readable failure message when the measured rate is
    more than ``tolerance`` (fractional) below the baseline document's,
    else None.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline_eps = float(baseline["events_per_sec"])
    measured_eps = float(payload["events_per_sec"])
    floor_eps = baseline_eps * (1.0 - tolerance)
    if measured_eps < floor_eps:
        return (
            f"perf regression: {measured_eps:.0f} events/s is below "
            f"{floor_eps:.0f} (baseline {baseline_eps:.0f} - {tolerance:.0%} "
            f"tolerance, {baseline_path})"
        )
    return None


def _render(payload: Dict[str, Any]) -> str:
    result = payload["result"]
    lines = [
        f"{'bench':<28s} {'iterations':>12s} {'wall (s)':>10s} {'rate/s':>12s}"
    ]
    for name, micro in result["microbench"].items():
        lines.append(
            f"{name:<28s} {micro['iterations']:>12d} "
            f"{micro['wall_s']:>10.3f} {micro['rate_per_s']:>12.0f}"
        )
    lines.append("")
    lines.append(
        f"perf_core: {result['events_per_sec']:.0f} events/s "
        f"({result['speedup']:.2f}x vs pre-optimisation "
        f"{result['baseline_events_per_sec']:.0f})"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.perf``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="simulation-core microbenchmarks + perf regression gate",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3, help="perf_core runs (best-of)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken suite for CI smoke / tests",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf_core.json",
        help="where to write the bench document",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_perf_core.json to gate against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_GATE_TOLERANCE,
        help="fractional events/sec drop allowed before failing",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (1 on regression)."""
    args = build_parser().parse_args(argv)
    payload = run_suite(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        quick=args.quick,
    )
    print(_render(payload))
    output = Path(args.output)
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    if args.baseline is not None:
        failure = check_regression(
            payload, Path(args.baseline), tolerance=args.tolerance
        )
        if failure is not None:
            print(failure, file=sys.stderr)
            return 1
        print(
            f"gate ok: {payload['events_per_sec']:.0f} events/s within "
            f"{args.tolerance:.0%} of baseline"
        )
    return 0
