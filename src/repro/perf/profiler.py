"""Profiling hooks: per-phase counters and cProfile accumulation.

The design constraint is the acceptance criterion "profiling off adds
<2% overhead": instrumented call sites (e.g. the harness runner) call
:func:`hook_phase`, which returns one *shared* ``nullcontext`` instance
when no profiler is active — no object allocation, no clock read, just a
module-global ``is None`` test. All measurement cost is confined to runs
that explicitly :func:`activate` a :class:`Profiler`.

Two kinds of measurement:

* **Phases** — named coarse regions (``binding``, ``simulate``, one per
  :meth:`Profiler.phase` context). Each accumulates call count, wall
  time and (optionally, via tracemalloc) net allocated bytes into a
  :class:`PhaseStats`.
* **cProfile** — :meth:`Profiler.profile_call` runs a callable under a
  single accumulating ``cProfile.Profile`` so several runs merge into
  one statistics table (:meth:`Profiler.top_table`).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
import tracemalloc
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass
from typing import Any, Callable, ContextManager, Dict, Optional, Tuple, TypeVar

T = TypeVar("T")

#: The one context manager every disabled phase shares (allocation-free).
_NULL_CONTEXT: AbstractContextManager[None] = nullcontext()

#: Sort keys accepted by :meth:`Profiler.top_table` (pstats names).
TOP_TABLE_SORTS = ("cumulative", "tottime", "calls")


@dataclass
class PhaseStats:
    """Accumulated cost of one named phase.

    Attributes:
        name: Phase label (e.g. ``"simulate"``).
        calls: Times the phase context was entered.
        wall_s: Total wall-clock seconds spent inside the phase.
        alloc_bytes: Net bytes allocated inside the phase (0 unless the
            owning profiler tracks allocations via tracemalloc).
    """

    name: str
    calls: int = 0
    wall_s: float = 0.0
    alloc_bytes: int = 0


class _Phase:
    """Context manager measuring one entry of one phase."""

    __slots__ = ("_profiler", "_name", "_started_s", "_alloc_before")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._started_s = 0.0
        self._alloc_before = 0

    def __enter__(self) -> None:
        if self._profiler.track_allocations:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            self._alloc_before = tracemalloc.get_traced_memory()[0]
        self._started_s = time.perf_counter()

    def __exit__(self, *exc_info: object) -> None:
        wall_s = time.perf_counter() - self._started_s
        stats = self._profiler._stats_for(self._name)
        stats.calls += 1
        stats.wall_s += wall_s
        if self._profiler.track_allocations:
            grown = tracemalloc.get_traced_memory()[0] - self._alloc_before
            if grown > 0:
                stats.alloc_bytes += grown


class Profiler:
    """Opt-in cost measurement: phase counters + merged cProfile.

    Attributes:
        enabled: When False every method is a no-op passthrough —
            :meth:`phase` returns the shared null context and
            :meth:`profile_call` calls the function directly. A disabled
            profiler behaves exactly like no profiler at all.
        track_allocations: Measure net allocated bytes per phase via
            tracemalloc. Markedly slows execution; off by default.
    """

    def __init__(
        self, *, enabled: bool = True, track_allocations: bool = False
    ) -> None:
        self.enabled = enabled
        self.track_allocations = track_allocations
        self._phases: Dict[str, PhaseStats] = {}
        self._cprofile: Optional[cProfile.Profile] = None

    # -- phases ---------------------------------------------------------

    def phase(self, name: str) -> ContextManager[None]:
        """Context manager accumulating into the phase ``name``.

        Returns the shared allocation-free null context when disabled.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _Phase(self, name)

    def _stats_for(self, name: str) -> PhaseStats:
        stats = self._phases.get(name)
        if stats is None:
            stats = PhaseStats(name)
            self._phases[name] = stats
        return stats

    @property
    def phases(self) -> Tuple[PhaseStats, ...]:
        """Recorded phases, sorted by descending wall time."""
        return tuple(
            sorted(self._phases.values(), key=lambda s: (-s.wall_s, s.name))
        )

    def phase_table(self) -> str:
        """Render the phase counters as an aligned text table."""
        rows = self.phases
        if not rows:
            return "no phases recorded"
        lines = [f"{'phase':<20s} {'calls':>8s} {'wall (s)':>10s} {'alloc':>12s}"]
        for stats in rows:
            alloc = f"{stats.alloc_bytes}B" if self.track_allocations else "-"
            lines.append(
                f"{stats.name:<20s} {stats.calls:>8d} "
                f"{stats.wall_s:>10.4f} {alloc:>12s}"
            )
        return "\n".join(lines)

    # -- cProfile -------------------------------------------------------

    def profile_call(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> T:
        """Run ``fn(*args, **kwargs)`` under the accumulating cProfile.

        Successive calls merge into one statistics table. When the
        profiler is disabled the function runs undisturbed.
        """
        if not self.enabled:
            return fn(*args, **kwargs)
        if self._cprofile is None:
            self._cprofile = cProfile.Profile()
        self._cprofile.enable()
        try:
            return fn(*args, **kwargs)
        finally:
            self._cprofile.disable()

    def top_table(self, limit: int = 25, sort: str = "cumulative") -> str:
        """The top-``limit`` functions by ``sort`` as a pstats table."""
        if sort not in TOP_TABLE_SORTS:
            raise ValueError(
                f"unknown sort {sort!r}; choose one of {TOP_TABLE_SORTS}"
            )
        if self._cprofile is None:
            return "no profiled calls recorded"
        stream = io.StringIO()
        stats = pstats.Stats(self._cprofile, stream=stream)
        stats.sort_stats(sort).print_stats(limit)
        return stream.getvalue().rstrip()


# -- module-level hook ---------------------------------------------------

_ACTIVE: Optional[Profiler] = None


def activate(profiler: Profiler) -> Optional[Profiler]:
    """Install ``profiler`` as the process-wide hook target.

    Returns the previously active profiler (or None) so callers can
    restore it — see :func:`deactivate`.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


def deactivate(previous: Optional[Profiler] = None) -> None:
    """Remove the active profiler (or restore ``previous``)."""
    global _ACTIVE
    _ACTIVE = previous


def active_profiler() -> Optional[Profiler]:
    """The currently installed profiler, if any."""
    return _ACTIVE


def hook_phase(name: str) -> ContextManager[None]:
    """Phase context for instrumented library code.

    The zero-cost-off path: with no active profiler this is a dict-free,
    allocation-free return of one shared ``nullcontext`` instance.
    """
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_CONTEXT
    return profiler.phase(name)
