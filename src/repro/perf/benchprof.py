"""Profile a registered bench: ``repro-storage profile <bench-id>``.

Runs every spec of a bench from :data:`~repro.experiments.harness.bench.BENCHES`
under one accumulating cProfile (cache bypassed — profiling a cache hit
would measure JSON decoding) and renders the merged top-N table plus the
coarse per-phase wall-clock breakdown recorded by the runner's
:func:`~repro.perf.profiler.hook_phase` instrumentation.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.perf.profiler import Profiler, activate, deactivate


def profile_bench(
    bench_id: str,
    *,
    scale: float = 0.1,
    seed: int = 1,
    top: int = 25,
    sort: str = "cumulative",
) -> str:
    """cProfile one bench's specs and return the report text.

    Raises :class:`~repro.errors.ConfigurationError` on an unknown bench
    id (callers present the known ids).
    """
    # Imported lazily: the harness sits above the figure modules in the
    # import graph and this module is reachable from the CLI's cold path.
    from repro.experiments.harness.bench import BENCHES
    from repro.experiments.harness.runner import clear_memos, execute_spec

    try:
        bench = BENCHES[bench_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench {bench_id!r}; known: {sorted(BENCHES)}"
        )
    specs = bench.specs(scale, scale, seed)
    if not specs:
        raise ConfigurationError(
            f"bench {bench_id!r} has no runnable specs to profile "
            "(figure-level recomputation only)"
        )
    profiler = Profiler()
    previous = activate(profiler)
    try:
        for spec in specs:
            profiler.profile_call(execute_spec, spec)
    finally:
        deactivate(previous)
        clear_memos()
    lines: List[str] = [
        f"profiled {len(specs)} spec(s) of bench {bench_id!r} "
        f"at scale {scale:g}, seed {seed}",
        "",
        profiler.phase_table(),
        "",
        profiler.top_table(limit=top, sort=sort),
    ]
    return "\n".join(lines)
