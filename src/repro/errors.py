"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class PlacementError(ReproError):
    """Data placement is invalid (unknown data, empty location list, ...)."""


class SchedulingError(ReproError):
    """A scheduler produced or received an invalid assignment."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class ReplicaUnavailableError(ReproError):
    """An operation targeted a replica that is not currently servable.

    Raised when a request is submitted to a disk whose health is degraded
    (transiently down or permanently failed), or when a scheduler is asked
    to place a request none of whose replicas are live.  Inside the
    simulated storage system this situation is handled — requests are
    retried against surviving replicas or recorded as lost — so the
    exception surfaces only from direct library use.
    """


class DataLossError(ReproError):
    """Data became permanently unreachable: every replica is dead.

    The simulation never raises this during a run (unreachable requests
    are *counted* as lost, not crashed on); it exists for strict callers
    that ask the fault subsystem to verify that data survived a run.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed in the declared format."""
