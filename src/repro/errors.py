"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class PlacementError(ReproError):
    """Data placement is invalid (unknown data, empty location list, ...)."""


class SchedulingError(ReproError):
    """A scheduler produced or received an invalid assignment."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed in the declared format."""
