"""repro — Energy-aware scheduling in replicated disk storage systems.

A full reproduction of *"Exploiting Replication for Energy-Aware
Scheduling in Disk Storage Systems"* (Chou, Kim, Rotem — ICDCS 2011):
the three energy-aware schedulers (online Heuristic, batch Weighted Set
Cover, offline Maximum Weighted Independent Set), the baselines, and the
entire substrate they need — a discrete-event storage simulator, a
five-state disk power model with 2-competitive power management, Zipf
placement with uniform replicas, and bursty/OLTP synthetic traces
standing in for Cello and Financial1.

Quickstart::

    from repro import (
        CelloLikeConfig, HeuristicScheduler, SimulationConfig,
        Workload, ZipfOriginalUniformReplicas,
        generate_cello_like, simulate, always_on_baseline,
    )

    workload = Workload(generate_cello_like(CelloLikeConfig().scaled(0.1)))
    requests, catalog = workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3), num_disks=18
    )
    config = SimulationConfig(num_disks=18)
    report = simulate(requests, catalog, HeuristicScheduler(), config)
    baseline = always_on_baseline(requests, catalog, config)
    print(report.normalized_energy(baseline.total_energy))
"""

from repro.core import (
    CostFunction,
    HeuristicScheduler,
    MWISOfflineScheduler,
    OfflineEvaluator,
    RandomScheduler,
    SchedulingProblem,
    StaticScheduler,
    WSCBatchScheduler,
    make_scheduler,
)
from repro.disk import AnalyticServiceModel, ConstantServiceModel, SimulatedDisk
from repro.errors import ReproError
from repro.placement import (
    PlacementCatalog,
    UniformPlacement,
    ZipfOriginalUniformReplicas,
)
from repro.power import (
    BARRACUDA,
    PAPER_UNIT,
    AlwaysOnPolicy,
    DiskPowerProfile,
    DiskPowerState,
    TwoCompetitivePolicy,
)
from repro.sim import (
    SimulationConfig,
    SimulationReport,
    always_on_baseline,
    run_offline,
    simulate,
)
from repro.traces import (
    CelloLikeConfig,
    FinancialLikeConfig,
    Workload,
    generate_cello_like,
    generate_financial_like,
)
from repro.types import Assignment, Request

__version__ = "1.0.0"

__all__ = [
    "AlwaysOnPolicy",
    "AnalyticServiceModel",
    "Assignment",
    "BARRACUDA",
    "CelloLikeConfig",
    "ConstantServiceModel",
    "CostFunction",
    "DiskPowerProfile",
    "DiskPowerState",
    "FinancialLikeConfig",
    "HeuristicScheduler",
    "MWISOfflineScheduler",
    "OfflineEvaluator",
    "PAPER_UNIT",
    "PlacementCatalog",
    "RandomScheduler",
    "ReproError",
    "Request",
    "SchedulingProblem",
    "SimulatedDisk",
    "SimulationConfig",
    "SimulationReport",
    "StaticScheduler",
    "TwoCompetitivePolicy",
    "UniformPlacement",
    "WSCBatchScheduler",
    "Workload",
    "ZipfOriginalUniformReplicas",
    "always_on_baseline",
    "generate_cello_like",
    "generate_financial_like",
    "make_scheduler",
    "run_offline",
    "simulate",
    "__version__",
]
