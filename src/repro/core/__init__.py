"""The paper's contribution: energy-aware schedulers and their math."""

from repro.core.cost import (
    PAPER_COST_FUNCTION,
    CostFunction,
    energy_cost,
    performance_cost,
)
from repro.core.covering_scheduler import CoveringSetScheduler
from repro.core.fleet import (
    KERNELS,
    FleetCostState,
    default_kernel,
    set_default_kernel,
)
from repro.core.heuristic import HeuristicScheduler
from repro.core.mwis import MWISOfflineScheduler, MWISResult
from repro.core.offline import OfflineEvaluation, OfflineEvaluator, chain_energies
from repro.core.prediction import (
    InterArrivalEstimator,
    PredictiveHeuristicScheduler,
)
from repro.core.problem import SchedulingProblem
from repro.core.random_scheduler import RandomScheduler
from repro.core.saving import (
    SavingTerm,
    gap_energy,
    max_request_energy,
    saving_value,
    saving_window,
)
from repro.core.scheduler import (
    SCHEDULER_FACTORIES,
    BatchScheduler,
    OfflineScheduler,
    OnlineScheduler,
    Scheduler,
    SystemView,
    make_scheduler,
)
from repro.core.static_scheduler import StaticScheduler
from repro.core.writeoffload import WriteOffloadingScheduler
from repro.core.wsc import PAPER_BATCH_INTERVAL, WSCBatchScheduler

__all__ = [
    "BatchScheduler",
    "CostFunction",
    "CoveringSetScheduler",
    "FleetCostState",
    "HeuristicScheduler",
    "KERNELS",
    "InterArrivalEstimator",
    "MWISOfflineScheduler",
    "MWISResult",
    "OfflineEvaluation",
    "OfflineEvaluator",
    "OfflineScheduler",
    "OnlineScheduler",
    "PAPER_BATCH_INTERVAL",
    "PAPER_COST_FUNCTION",
    "PredictiveHeuristicScheduler",
    "RandomScheduler",
    "SCHEDULER_FACTORIES",
    "SavingTerm",
    "Scheduler",
    "SchedulingProblem",
    "StaticScheduler",
    "SystemView",
    "WSCBatchScheduler",
    "WriteOffloadingScheduler",
    "chain_energies",
    "default_kernel",
    "energy_cost",
    "gap_energy",
    "make_scheduler",
    "max_request_energy",
    "performance_cost",
    "saving_value",
    "saving_window",
    "set_default_kernel",
]
