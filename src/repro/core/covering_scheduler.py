"""Covering-subset scheduling: the Hadoop-style "Set-Cover" combo.

Section 1 notes that covering-subset power management (Leverich &
Kozyrakis; Lang & Patel) "could be combined with our approach to save
more power by concentrating requests on fewer active disks".
:class:`CoveringSetScheduler` is that combination: requests route to a
covering-subset replica whenever one exists (ties broken by the Eq. 6
cost function), so the covering disks absorb nearly all traffic and the
rest of the array sleeps.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.cost import PAPER_COST_FUNCTION, CostFunction
from repro.core.scheduler import OnlineScheduler, SystemView
from repro.placement.catalog import PlacementCatalog
from repro.placement.covering import covering_subset
from repro.types import DataId, DiskId, Request


class CoveringSetScheduler(OnlineScheduler):
    """Concentrate requests on a fixed covering subset of disks.

    Args:
        catalog: The placement (the covering subset is computed once).
        weights: Optional access weights for the greedy cover.
        cost_function: Tie-breaker among covering replicas (Eq. 6).
    """

    def __init__(
        self,
        catalog: PlacementCatalog,
        weights: Optional[Mapping[DataId, float]] = None,
        cost_function: Optional[CostFunction] = None,
    ):
        self.covering = frozenset(covering_subset(catalog, weights))
        self.cost_function = cost_function or PAPER_COST_FUNCTION

    def choose(self, request: Request, view: SystemView) -> DiskId:
        # One allocation-free pass: prefer the cheapest covering replica,
        # falling back to the cheapest replica overall when the covering
        # subset holds none of them (cost() is a pure read, so scoring
        # non-covering replicas alongside changes no decision).
        locations = view.locations(request.data_id)
        covering = self.covering
        best: Optional[DiskId] = None
        best_key = None
        fallback: Optional[DiskId] = None
        fallback_key = None
        for disk_id in locations:
            disk = view.disk(disk_id)
            cost = self.cost_function.cost(disk, view.now, view.profile)
            key = (cost, disk.queue_length, disk_id)
            if disk_id in covering:
                if best_key is None or key < best_key:
                    best_key = key
                    best = disk_id
            elif best is None and (fallback_key is None or key < fallback_key):
                fallback_key = key
                fallback = disk_id
        if best is None:
            best = fallback
        assert best is not None
        return best

    @property
    def name(self) -> str:
        return f"CoveringSet({len(self.covering)} disks)"
