"""Write off-loading (Narayanan et al.), the paper's write-path assumption.

Section 2.1 scopes the scheduler to reads: "we assume write requests can
be assigned to one or more idle disks in the system using techniques such
as write off-loading, so that they do not need to be handled by the
scheduler". This module makes that assumption executable:

:class:`WriteOffloadingScheduler` wraps any online scheduler. Reads pass
through to the wrapped policy unchanged; writes are diverted to a
currently-spinning disk *anywhere in the system* (write off-loading's
defining liberty — the redirected block is journalled and reclaimed
later, so placement does not constrain the target). Preference order:

1. a spinning disk (ACTIVE or IDLE), least-loaded first;
2. a disk already spinning up (joins the wake-up);
3. the write's own original location (forced wake-up — happens only when
   every disk in the system is asleep).

The off-loader keeps a per-disk journal of diverted writes so experiments
can report the reclaim debt.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scheduler import OnlineScheduler, SystemView
from repro.power.states import DiskPowerState
from repro.types import DiskId, OpKind, Request


class WriteOffloadingScheduler(OnlineScheduler):
    """Wraps an online scheduler with write off-loading.

    Args:
        read_scheduler: Policy for read requests (e.g. the energy-aware
            Heuristic).
    """

    def __init__(self, read_scheduler: OnlineScheduler):
        self._read_scheduler = read_scheduler
        #: Diverted-write journal: disk -> outstanding off-loaded writes.
        self.offloaded: Dict[DiskId, int] = {}
        #: Writes that found no spinning disk and woke their home disk.
        self.forced_wakeups: int = 0

    def choose(self, request: Request, view: SystemView) -> DiskId:
        if request.op is not OpKind.WRITE:
            return self._read_scheduler.choose(request, view)
        target = self._pick_spinning_disk(view)
        if target is None:
            target = self._pick_waking_disk(view)
        if target is None:
            self.forced_wakeups += 1
            target = view.locations(request.data_id)[0]
        else:
            self.offloaded[target] = self.offloaded.get(target, 0) + 1
        return target

    @property
    def total_offloaded(self) -> int:
        return sum(self.offloaded.values())

    def _pick_spinning_disk(self, view: SystemView) -> Optional[DiskId]:
        best = None
        best_key = None
        for disk_id in view.disk_ids:
            disk = view.disk(disk_id)
            if disk.state.is_spinning:
                key = (disk.queue_length, disk_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best = disk_id
        return best

    def _pick_waking_disk(self, view: SystemView) -> Optional[DiskId]:
        best = None
        best_key = None
        for disk_id in view.disk_ids:
            disk = view.disk(disk_id)
            if disk.state is DiskPowerState.SPIN_UP:
                key = (disk.queue_length, disk_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best = disk_id
        return best

    @property
    def name(self) -> str:
        return f"WriteOffload({self._read_scheduler.name})"
