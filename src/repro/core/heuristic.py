"""Energy-aware online Heuristic (Section 3.3).

On each arrival, evaluate the composite cost ``C(dk)`` (Eq. 6) for every
disk holding the request's data and pick the cheapest. With the paper's
``alpha = 0.2, beta = 100`` the scheduler prefers, in rough order:

1. disks already active or spinning up with short queues (free energy,
   low load — spinning-up disks "overlay" requests into one wake-up),
2. recently-touched idle disks (small idle extension),
3. long-idle disks,
4. standby disks (full ``EPmax`` wake-up cost),

with queue length breaking the energy ties toward responsiveness.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cost import PAPER_COST_FUNCTION, CostFunction, energy_cost
from repro.core.fleet import FleetCostState
from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError
from repro.types import DiskId, Request


class HeuristicScheduler(OnlineScheduler):
    """Cost-function online scheduler.

    Args:
        cost_function: The Eq. 6 instance to minimise; defaults to the
            paper's ``alpha=0.2, beta=100``.
    """

    def __init__(self, cost_function: Optional[CostFunction] = None):
        self.cost_function = cost_function or PAPER_COST_FUNCTION

    def choose(self, request: Request, view: SystemView) -> DiskId:
        locations = view.available_locations(request.data_id)
        if not locations:
            raise ReplicaUnavailableError(
                f"no live replica for data {request.data_id}"
            )
        cost_function = self.cost_function
        # Columnar kernel: views that carry a FleetCostState mirror
        # (StorageSystem under --kernel numpy) score candidates straight
        # from the fleet columns — bit-identical to the loop below.
        fleet: Optional[FleetCostState] = getattr(view, "fleet", None)
        if fleet is not None:
            return fleet.choose(
                locations,
                view.now,
                cost_function.alpha,
                cost_function.beta,
                cost_function.load_weight,
            )
        # Inlined CostFunction.cost(): this loop runs once per arrival and
        # dominated the profile; hoisting the weights and reading each
        # disk's queue once roughly halves its attribute traffic. The
        # arithmetic matches CostFunction.cost() bit for bit (evaluation
        # order `energy * alpha / beta` included).
        alpha = cost_function.alpha
        beta = cost_function.beta
        load_weight = cost_function.load_weight
        now = view.now
        profile = view.profile
        disk_of = view.disk
        best_disk: Optional[DiskId] = None
        best_cost = 0.0
        best_queue = 0
        for disk_id in locations:
            disk = disk_of(disk_id)
            try:
                energy = disk.marginal_energy(now)
            except AttributeError:  # plain DiskView (tests, analyses)
                energy = energy_cost(disk.state, disk.last_request_time, now, profile)
            queue_length = disk.queue_length
            cost = energy * alpha / beta + queue_length * load_weight
            # Deterministic tie-breaks: shorter queue, then lower disk id —
            # the unrolled comparisons equal `<` on the old
            # (cost, queue_length, disk_id) tuple key without allocating it.
            if (
                best_disk is None
                or cost < best_cost
                or (
                    cost == best_cost
                    and (
                        queue_length < best_queue
                        or (queue_length == best_queue and disk_id < best_disk)
                    )
                )
            ):
                best_cost = cost
                best_queue = queue_length
                best_disk = disk_id
        assert best_disk is not None  # locations is non-empty
        return best_disk

    @property
    def name(self) -> str:
        return (
            f"Heuristic(a={self.cost_function.alpha:g},"
            f"b={self.cost_function.beta:g})"
        )


@register_scheduler("heuristic")
def _make_heuristic() -> HeuristicScheduler:
    return HeuristicScheduler()
