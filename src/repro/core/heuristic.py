"""Energy-aware online Heuristic (Section 3.3).

On each arrival, evaluate the composite cost ``C(dk)`` (Eq. 6) for every
disk holding the request's data and pick the cheapest. With the paper's
``alpha = 0.2, beta = 100`` the scheduler prefers, in rough order:

1. disks already active or spinning up with short queues (free energy,
   low load — spinning-up disks "overlay" requests into one wake-up),
2. recently-touched idle disks (small idle extension),
3. long-idle disks,
4. standby disks (full ``EPmax`` wake-up cost),

with queue length breaking the energy ties toward responsiveness.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cost import PAPER_COST_FUNCTION, CostFunction
from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError
from repro.types import DiskId, Request


class HeuristicScheduler(OnlineScheduler):
    """Cost-function online scheduler.

    Args:
        cost_function: The Eq. 6 instance to minimise; defaults to the
            paper's ``alpha=0.2, beta=100``.
    """

    def __init__(self, cost_function: Optional[CostFunction] = None):
        self.cost_function = cost_function or PAPER_COST_FUNCTION

    def choose(self, request: Request, view: SystemView) -> DiskId:
        locations = view.available_locations(request.data_id)
        if not locations:
            raise ReplicaUnavailableError(
                f"no live replica for data {request.data_id}"
            )
        best_disk = locations[0]
        best_key = None
        for disk_id in locations:
            disk = view.disk(disk_id)
            cost = self.cost_function.cost(disk, view.now, view.profile)
            # Deterministic tie-breaks: shorter queue, then lower disk id.
            key = (cost, disk.queue_length, disk_id)
            if best_key is None or key < best_key:
                best_key = key
                best_disk = disk_id
        return best_disk

    @property
    def name(self) -> str:
        return (
            f"Heuristic(a={self.cost_function.alpha:g},"
            f"b={self.cost_function.beta:g})"
        )


@register_scheduler("heuristic")
def _make_heuristic() -> HeuristicScheduler:
    return HeuristicScheduler()
