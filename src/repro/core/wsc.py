"""Energy-aware WSC batch scheduler (Section 3.2).

At each scheduling interval the queued requests form a weighted set cover
instance (Theorem 2): elements are the requests, sets are the disks that
hold at least one queued request's data, and a set's weight is the
marginal cost of using that disk. The greedy set cover picks a cheap disk
subset covering the batch; each request then goes to the cheapest chosen
disk holding its data.

The paper's experiments weight disks "by the same cost function of
Heuristic" — i.e. Eq. 6 with ``alpha=0.2, beta=100`` — rather than the pure
Eq. 5 energy; both are supported (``use_cost_function`` flag).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.set_cover import (
    SetCoverInstance,
    greedy_weighted_set_cover,
    greedy_weighted_set_cover_dense,
    repr_tie_ranks,
)
from repro.core.cost import PAPER_COST_FUNCTION, CostFunction, energy_cost
from repro.core.fleet import FleetCostState
from repro.core.scheduler import BatchScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError, SchedulingError
from repro.types import DiskId, Request, RequestId

#: Scheduling interval used throughout the paper's evaluation.
PAPER_BATCH_INTERVAL = 0.1


class WSCBatchScheduler(BatchScheduler):
    """Weighted-set-cover batch scheduler.

    Args:
        interval: Scheduling interval in seconds (paper: 0.1 s).
        cost_function: Eq. 6 weights (paper default) when
            ``use_cost_function``; otherwise pure Eq. 5 energy weights.
        use_cost_function: Weight sets by C(dk) instead of E(dk).
    """

    def __init__(
        self,
        interval: float = PAPER_BATCH_INTERVAL,
        cost_function: Optional[CostFunction] = None,
        use_cost_function: bool = True,
    ):
        super().__init__(interval)
        self.cost_function = cost_function or PAPER_COST_FUNCTION
        self.use_cost_function = use_cost_function

    def choose_batch(
        self, requests: Sequence[Request], view: SystemView
    ) -> Dict[RequestId, DiskId]:
        if not requests:
            return {}
        # One placement lookup per request, reused by the routing loop
        # below (the same tuple — no simulation state changes inside a
        # batch decision).
        located: List[Tuple[DiskId, ...]] = []
        coverage: Dict[DiskId, List[RequestId]] = {}
        for request in requests:
            available = view.available_locations(request.data_id)
            if not available:
                raise ReplicaUnavailableError(
                    f"no live replica for data {request.data_id} in batch"
                )
            located.append(available)
            for disk_id in available:
                coverage.setdefault(disk_id, []).append(request.request_id)
        fleet: Optional[FleetCostState] = getattr(view, "fleet", None)
        if fleet is not None:
            weights = self._fleet_weights(coverage, fleet, view.now)
            chosen_set = self._cover_dense(requests, coverage, weights)
        else:
            weights = {
                disk_id: self._disk_weight(disk_id, view)
                for disk_id in coverage
            }
            instance = SetCoverInstance.build(
                universe=[request.request_id for request in requests],
                sets=coverage,
                weights=weights,
            )
            chosen_set = set(greedy_weighted_set_cover(instance))
        # Route each request to its cheapest chosen location; tie-break on
        # queue length so covered disks share load, then on disk id. The
        # unrolled comparison equals `min` with the old
        # (weight, queue + extra, disk_id) tuple key without allocating
        # one per candidate.
        result: Dict[RequestId, DiskId] = {}
        extra_load: Dict[DiskId, int] = {disk_id: 0 for disk_id in chosen_set}
        disk_of = view.disk
        for request, available in zip(requests, located):
            best: Optional[DiskId] = None
            best_weight = 0.0
            best_load = 0
            for disk_id in available:
                if disk_id not in chosen_set:
                    continue
                weight = weights[disk_id]
                load = disk_of(disk_id).queue_length + extra_load[disk_id]
                if (
                    best is None
                    or weight < best_weight
                    or (
                        weight == best_weight
                        and (
                            load < best_load
                            or (load == best_load and disk_id < best)
                        )
                    )
                ):
                    best = disk_id
                    best_weight = weight
                    best_load = load
            if best is None:
                raise SchedulingError(
                    f"set cover left request {request.request_id} uncovered"
                )
            extra_load[best] += 1
            result[request.request_id] = best
        return result

    def _fleet_weights(
        self,
        coverage: Dict[DiskId, List[RequestId]],
        fleet: FleetCostState,
        now: float,
    ) -> Dict[DiskId, float]:
        """One vectorised Eq. 6 (or Eq. 5) pass over all covering disks.

        Bit-identical to calling :meth:`_disk_weight` per disk: the
        fleet columns encode the same memoised marginal-energy terms and
        the kernels evaluate the same expressions in the same order.
        """
        disk_ids = list(coverage)
        if self.use_cost_function:
            cost_function = self.cost_function
            values = fleet.weights(
                disk_ids,
                now,
                cost_function.alpha,
                cost_function.beta,
                cost_function.load_weight,
            )
        else:
            values = fleet.energies(disk_ids, now)
        return dict(zip(disk_ids, values))

    @staticmethod
    def _cover_dense(
        requests: Sequence[Request],
        coverage: Dict[DiskId, List[RequestId]],
        weights: Dict[DiskId, float],
    ) -> Set[DiskId]:
        """Greedy set cover through the dense vectorised solver.

        Builds the 0/1 membership matrix directly from ``coverage``
        (every element is coverable by construction — each request
        contributed at least one disk) instead of the frozenset-churning
        :meth:`SetCoverInstance.build`, and delegates to
        :func:`greedy_weighted_set_cover_dense`, which reproduces the
        scalar greedy's decisions exactly.
        """
        disk_ids = list(coverage)
        column_of = {
            request.request_id: column
            for column, request in enumerate(requests)
        }
        membership = np.zeros(
            (len(disk_ids), len(requests)), dtype=np.int64
        )
        for row, disk_id in enumerate(disk_ids):
            for request_id in coverage[disk_id]:
                membership[row, column_of[request_id]] = 1
        weight_array = np.array(
            [weights[disk_id] for disk_id in disk_ids], dtype=np.float64
        )
        chosen_rows = greedy_weighted_set_cover_dense(
            membership, weight_array, repr_tie_ranks(disk_ids)
        )
        return {disk_ids[row] for row in chosen_rows}

    def _disk_weight(self, disk_id: DiskId, view: SystemView) -> float:
        disk = view.disk(disk_id)
        if self.use_cost_function:
            # Takes the memoised marginal-energy fast path on live disks.
            return self.cost_function.cost(disk, view.now, view.profile)
        marginal = getattr(disk, "marginal_energy", None)
        if marginal is not None:
            return float(marginal(view.now))  # float() narrows the Any from getattr
        return energy_cost(disk.state, disk.last_request_time, view.now, view.profile)

    @property
    def name(self) -> str:
        return f"WSC(batch {self.interval:g}s)"


@register_scheduler("wsc")
def _make_wsc() -> WSCBatchScheduler:
    return WSCBatchScheduler()
