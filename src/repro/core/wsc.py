"""Energy-aware WSC batch scheduler (Section 3.2).

At each scheduling interval the queued requests form a weighted set cover
instance (Theorem 2): elements are the requests, sets are the disks that
hold at least one queued request's data, and a set's weight is the
marginal cost of using that disk. The greedy set cover picks a cheap disk
subset covering the batch; each request then goes to the cheapest chosen
disk holding its data.

The paper's experiments weight disks "by the same cost function of
Heuristic" — i.e. Eq. 6 with ``alpha=0.2, beta=100`` — rather than the pure
Eq. 5 energy; both are supported (``use_cost_function`` flag).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.set_cover import SetCoverInstance, greedy_weighted_set_cover
from repro.core.cost import PAPER_COST_FUNCTION, CostFunction, energy_cost
from repro.core.scheduler import BatchScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError, SchedulingError
from repro.types import DiskId, Request, RequestId

#: Scheduling interval used throughout the paper's evaluation.
PAPER_BATCH_INTERVAL = 0.1


class WSCBatchScheduler(BatchScheduler):
    """Weighted-set-cover batch scheduler.

    Args:
        interval: Scheduling interval in seconds (paper: 0.1 s).
        cost_function: Eq. 6 weights (paper default) when
            ``use_cost_function``; otherwise pure Eq. 5 energy weights.
        use_cost_function: Weight sets by C(dk) instead of E(dk).
    """

    def __init__(
        self,
        interval: float = PAPER_BATCH_INTERVAL,
        cost_function: Optional[CostFunction] = None,
        use_cost_function: bool = True,
    ):
        super().__init__(interval)
        self.cost_function = cost_function or PAPER_COST_FUNCTION
        self.use_cost_function = use_cost_function

    def choose_batch(
        self, requests: Sequence[Request], view: SystemView
    ) -> Dict[RequestId, DiskId]:
        if not requests:
            return {}
        coverage: Dict[DiskId, List[RequestId]] = {}
        for request in requests:
            available = view.available_locations(request.data_id)
            if not available:
                raise ReplicaUnavailableError(
                    f"no live replica for data {request.data_id} in batch"
                )
            for disk_id in available:
                coverage.setdefault(disk_id, []).append(request.request_id)
        weights = {
            disk_id: self._disk_weight(disk_id, view) for disk_id in coverage
        }
        instance = SetCoverInstance.build(
            universe=[request.request_id for request in requests],
            sets=coverage,
            weights=weights,
        )
        chosen = greedy_weighted_set_cover(instance)
        chosen_set = set(chosen)
        # Route each request to its cheapest chosen location; tie-break on
        # queue length so covered disks share load.
        result: Dict[RequestId, DiskId] = {}
        extra_load: Dict[DiskId, int] = {disk_id: 0 for disk_id in chosen_set}
        for request in requests:
            candidates = [
                disk_id
                for disk_id in view.available_locations(request.data_id)
                if disk_id in chosen_set
            ]
            if not candidates:
                raise SchedulingError(
                    f"set cover left request {request.request_id} uncovered"
                )
            best = min(
                candidates,
                key=lambda disk_id: (
                    weights[disk_id],
                    view.disk(disk_id).queue_length + extra_load[disk_id],
                    disk_id,
                ),
            )
            extra_load[best] += 1
            result[request.request_id] = best
        return result

    def _disk_weight(self, disk_id: DiskId, view: SystemView) -> float:
        disk = view.disk(disk_id)
        if self.use_cost_function:
            # Takes the memoised marginal-energy fast path on live disks.
            return self.cost_function.cost(disk, view.now, view.profile)
        marginal = getattr(disk, "marginal_energy", None)
        if marginal is not None:
            return float(marginal(view.now))  # float() narrows the Any from getattr
        return energy_cost(disk.state, disk.last_request_time, view.now, view.profile)

    @property
    def name(self) -> str:
        return f"WSC(batch {self.interval:g}s)"


@register_scheduler("wsc")
def _make_wsc() -> WSCBatchScheduler:
    return WSCBatchScheduler()
