"""Prediction-augmented online scheduling (the paper's future-work hook).

Section 3.3 sketches the extension: "a prediction technique could be used
to estimate the access probability of a disk and assign lower cost to a
more frequently used disk". :class:`PredictiveHeuristicScheduler` realises
it:

* each disk's arrival process is summarised by an EWMA of its observed
  inter-arrival gaps (the scheduler learns online from its own routing
  decisions, no oracle);
* the Eq. 5 energy term is discounted by the probability that the disk
  would stay idle through a full breakeven window anyway. Treating the
  disk's arrivals as Poisson with rate ``1 / ewma_gap``, that probability
  is ``exp(-TB / ewma_gap)`` — a hot disk (tiny ewma gap) makes the
  discount ~0, i.e. routing there is (correctly) treated as nearly free:
  it would have stayed awake regardless.

The discounted cost is ``C'(d) = E(d) * exp(-TB/gap_d) * alpha/beta +
P(d) * (1-alpha)``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.cost import (
    PAPER_COST_FUNCTION,
    CostFunction,
    energy_cost,
    performance_cost,
)
from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.errors import ConfigurationError
from repro.types import DiskId, Request


class InterArrivalEstimator:
    """Per-disk EWMA of inter-arrival gaps.

    ``initial_gap`` is the pessimistic prior gap estimate in seconds used
    for disks that have not seen two requests yet.
    """

    def __init__(self, smoothing: float = 0.2, initial_gap: float = 1e6):
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        if initial_gap <= 0:
            raise ConfigurationError("initial_gap must be positive")
        self._smoothing = smoothing
        self._initial_gap = initial_gap
        self._last_time: Dict[DiskId, float] = {}
        self._ewma_gap: Dict[DiskId, float] = {}

    def observe(self, disk_id: DiskId, now: float) -> None:
        """Record that a request was routed to ``disk_id`` at ``now``."""
        last = self._last_time.get(disk_id)
        if last is not None and now >= last:
            gap = now - last
            previous = self._ewma_gap.get(disk_id, self._initial_gap)
            self._ewma_gap[disk_id] = (
                self._smoothing * gap + (1.0 - self._smoothing) * previous
            )
        self._last_time[disk_id] = now

    def expected_gap(self, disk_id: DiskId) -> float:
        """Current inter-arrival estimate in seconds (pessimistic for
        unseen disks)."""
        return self._ewma_gap.get(disk_id, self._initial_gap)

    def idle_through_window_probability(
        self, disk_id: DiskId, window: float
    ) -> float:
        """P[no arrival within ``window``] under the Poisson summary."""
        gap = self.expected_gap(disk_id)
        if gap <= 0:
            return 0.0
        return math.exp(-window / gap)


class PredictiveHeuristicScheduler(OnlineScheduler):
    """Heuristic + learned per-disk access-rate discount.

    Args:
        cost_function: The Eq. 6 parameters (paper default alpha=0.2,
            beta=100).
        smoothing: EWMA smoothing factor for the gap estimates.
    """

    def __init__(
        self,
        cost_function: Optional[CostFunction] = None,
        smoothing: float = 0.2,
    ):
        self.cost_function = cost_function or PAPER_COST_FUNCTION
        self.estimator = InterArrivalEstimator(smoothing=smoothing)

    def choose(self, request: Request, view: SystemView) -> DiskId:
        profile = view.profile
        window = profile.breakeven_time
        alpha = self.cost_function.alpha
        beta = self.cost_function.beta
        best_disk = None
        best_key = None
        for disk_id in view.locations(request.data_id):
            disk = view.disk(disk_id)
            energy = energy_cost(
                disk.state, disk.last_request_time, view.now, profile
            )
            # The prediction: a disk that will see traffic within the idle
            # window anyway costs (almost) nothing extra to touch now.
            survival = self.estimator.idle_through_window_probability(
                disk_id, window
            )
            discounted = energy * survival
            load = performance_cost(disk.queue_length)
            cost = discounted * alpha / beta + load * (1.0 - alpha)
            key = (cost, disk.queue_length, disk_id)
            if best_key is None or key < best_key:
                best_key = key
                best_disk = disk_id
        assert best_disk is not None
        self.estimator.observe(best_disk, view.now)
        return best_disk

    @property
    def name(self) -> str:
        return (
            f"PredictiveHeuristic(a={self.cost_function.alpha:g},"
            f"b={self.cost_function.beta:g})"
        )


@register_scheduler("predictive")
def _make_predictive() -> PredictiveHeuristicScheduler:
    return PredictiveHeuristicScheduler()
