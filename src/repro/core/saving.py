"""Per-request energy savings: ``EPmax`` and the ``X(i, j, k)`` terms.

Section 3.1.1 of the paper defines the energy consumption of a request as
what its disk consumes from servicing it until the successor request
arrives on that disk, capped by::

    EPmax = Eup + Edown + TB * PI

(the successor finds the disk already spun down). The *saving* of
scheduling ``ri`` on disk ``dk`` with successor ``rj`` is (Eq. 3, proved
as Lemma 1)::

    X(i, j, k) = Eup + Edown + (TB - (tj - ti)) * PI   if 0 <= tj-ti < TB+Tup+Tdown
               = 0                                      otherwise

and ``X(i, j, k)`` exists only if ``dk`` holds the data of both requests
and ``ti < tj`` (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.profile import DiskPowerProfile
from repro.types import DiskId, Request, RequestId


def max_request_energy(profile: DiskPowerProfile) -> float:
    """``EPmax = Eup + Edown + TB * PI`` in joules."""
    return profile.max_request_energy


def saving_window(profile: DiskPowerProfile) -> float:
    """Gap bound below which a successor can still save energy:
    ``TB + Tup + Tdown``."""
    return profile.breakeven_time + profile.transition_time


def saving_value(ti: float, tj: float, profile: DiskPowerProfile) -> float:
    """Eq. 3 — the energy saved when ``rj`` follows ``ri`` on one disk.

    Footnote 4 of the paper notes the expression stays non-negative as
    long as the spin-up/down power is at least the idle power; for exotic
    profiles violating that we clamp at zero, which only ever *discards*
    a (physically meaningless) negative saving.
    """
    gap = tj - ti
    if gap < 0 or gap >= saving_window(profile):
        return 0.0
    value = (
        profile.transition_energy
        + (profile.breakeven_time - gap) * profile.idle_power
    )
    return max(0.0, value)


def gap_energy(gap: float, profile: DiskPowerProfile) -> float:
    """Offline-model energy in joules of one predecessor/successor gap
    of ``gap`` seconds (Lemma 1).

    * gap < TB + Tup + Tdown — the disk stays idle the whole gap
      (cases II/III): ``gap * PI``.
    * otherwise — the disk idles out ``TB``, spins down, and must spin up
      again (case I): ``EPmax``.
    """
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    if gap < saving_window(profile):
        return gap * profile.idle_power
    return max_request_energy(profile)


@dataclass(frozen=True)
class SavingTerm:
    """One node ``X(i, j, k)`` of the MWIS graph.

    Attributes:
        predecessor: ``ri``'s request id.
        successor: ``rj``'s request id.
        disk: ``dk``.
        weight: The Eq. 3 saving (strictly positive — zero-valued terms
            are never materialised, per Step 1 of the algorithm).
    """

    predecessor: RequestId
    successor: RequestId
    disk: DiskId
    weight: float

    @staticmethod
    def build(
        ri: Request, rj: Request, disk: DiskId, profile: DiskPowerProfile
    ) -> "SavingTerm | None":
        """Materialise ``X(i, j, k)`` if its value is positive, else None."""
        value = saving_value(ri.time, rj.time, profile)
        if value <= 0:
            return None
        return SavingTerm(
            predecessor=ri.request_id,
            successor=rj.request_id,
            disk=disk,
            weight=value,
        )

    def conflicts_with(self, other: "SavingTerm") -> bool:
        """True when the pair violates the formulation's constraints.

        * energy-constraint — two terms may not share a predecessor, and
          (because a request has exactly one predecessor per disk chain)
          may not share a successor;
        * schedule-constraint — terms sharing any request must agree on
          the disk.
        """
        if self.predecessor == other.predecessor:
            return True
        if self.successor == other.successor:
            return True
        shared = {self.predecessor, self.successor} & {
            other.predecessor,
            other.successor,
        }
        if shared and self.disk != other.disk:
            return True
        return False
