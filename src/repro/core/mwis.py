"""Energy-aware MWIS offline scheduler (Section 3.1).

The four steps of the paper's algorithm (Fig. 4):

1. **Nodes** — one per non-zero saving term ``X(i, j, k)`` (Eq. 3/4):
   disk ``dk`` holds the data of both ``ri`` and ``rj``, ``rj`` follows
   ``ri`` within the saving window ``TB + Tup + Tdown``.
2. **Edges** — between any two terms violating the energy-constraint
   (shared predecessor — and, symmetrically, shared successor, as the
   paper's own Fig. 4 step 2 shows for request r3) or the
   schedule-constraint (shared request, different disks).
3. **Solve** — a maximum weighted independent set algorithm; the paper
   uses the GWMIN greedy of Sakai et al., and exact branch-and-bound is
   available for small instances.
4. **Derive** — schedule both requests of every selected term on its
   disk; requests left untouched can go to any of their locations (we
   use a marginal-energy repair pass that greedily inserts each into the
   cheapest existing chain).

Tractability notes (documented deviations, both configurable off):

* ``neighborhood`` caps, per disk, how many *following* requests each
  request pairs with (nearest successors carry the largest savings);
  ``None`` reproduces the unbounded paper construction.
* The paper's constraints do not forbid *interleaving* two selected terms
  on one disk (e.g. X(1,3,k) with X(2,5,k), t1<t2<t3<t5): the derived
  schedule is still feasible and its true energy is never worse than the
  MWIS estimate — ``tests/core/test_mwis_properties.py`` pins this.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.graph import ConflictGraph
from repro.algorithms.independent_set import solve_mwis
from repro.core.problem import SchedulingProblem
from repro.core.saving import SavingTerm, gap_energy, max_request_energy, saving_window
from repro.core.scheduler import OfflineScheduler, register_scheduler
from repro.power.profile import DiskPowerProfile
from repro.types import Assignment, DiskId, Request, RequestId


@dataclass(frozen=True)
class MWISResult:
    """Detailed output of one MWIS scheduling run.

    Attributes:
        assignment: The derived feasible schedule.
        selected: The independent set of saving terms, in pick order.
        estimated_saving: Total weight of ``selected`` — a lower bound on
            the schedule's true energy saving.
        num_nodes / num_edges: Size of the constructed conflict graph.
    """

    assignment: Assignment
    selected: Tuple[SavingTerm, ...]
    estimated_saving: float
    num_nodes: int
    num_edges: int


class MWISOfflineScheduler(OfflineScheduler):
    """Offline scheduler solving the MWIS formulation.

    Args:
        method: MWIS solver — ``"gwmin"`` (the paper's choice),
            ``"gwmin2"``, ``"min-degree"`` or ``"exact"``.
        neighborhood: Per-disk successor cap per request; ``None`` for the
            full (unbounded) construction.
    """

    def __init__(self, method: str = "gwmin", neighborhood: Optional[int] = 8):
        self.method = method
        self.neighborhood = neighborhood

    @property
    def name(self) -> str:
        return f"MWIS(offline,{self.method})"

    # -- Step 1 + 2 ----------------------------------------------------

    def build_graph(
        self, problem: SchedulingProblem
    ) -> Tuple[ConflictGraph, List[SavingTerm]]:
        """Construct the conflict graph of saving terms.

        Graph nodes are integer indices into the returned term list —
        full-scale traces produce hundreds of thousands of terms, and
        integer nodes keep the solver's hashing cost negligible.
        """
        profile = problem.profile
        window = saving_window(profile)

        requests_on_disk: Dict[DiskId, List[Request]] = {}
        for request in problem.requests:
            for disk_id in problem.locations_of(request):
                requests_on_disk.setdefault(disk_id, []).append(request)

        terms: List[SavingTerm] = []
        for disk_id, disk_requests in requests_on_disk.items():
            disk_requests.sort()
            count = len(disk_requests)
            for a in range(count):
                ri = disk_requests[a]
                limit = count if self.neighborhood is None else min(
                    count, a + 1 + self.neighborhood
                )
                for b in range(a + 1, limit):
                    rj = disk_requests[b]
                    if rj.time - ri.time >= window:
                        break
                    term = SavingTerm.build(ri, rj, disk_id, profile)
                    if term is not None:
                        terms.append(term)

        graph = ConflictGraph()
        for index, term in enumerate(terms):
            graph.add_node(index, term.weight)

        # Group terms by the requests they touch; conflicts only ever occur
        # between terms sharing a request, so pairwise checks stay local.
        # The conflict test is inlined over plain tuples — this is the hot
        # loop of the whole scheduler.
        touching: Dict[RequestId, List[int]] = {}
        flat: List[Tuple[RequestId, RequestId, DiskId]] = []
        for index, term in enumerate(terms):
            flat.append((term.predecessor, term.successor, term.disk))
            touching.setdefault(term.predecessor, []).append(index)
            touching.setdefault(term.successor, []).append(index)
        add_edge = graph.add_edge
        for group in touching.values():
            group_size = len(group)
            for position in range(group_size):
                index_a = group[position]
                pred_a, succ_a, disk_a = flat[index_a]
                for other in range(position + 1, group_size):
                    index_b = group[other]
                    pred_b, succ_b, disk_b = flat[index_b]
                    if (
                        pred_a == pred_b
                        or succ_a == succ_b
                        or disk_a != disk_b
                    ):
                        add_edge(index_a, index_b)
        return graph, terms

    # -- Step 3 + 4 ----------------------------------------------------

    def schedule_detailed(self, problem: SchedulingProblem) -> MWISResult:
        """Steps 3+4: solve the graph and derive a feasible schedule."""
        graph, terms = self.build_graph(problem)
        selected_ids: Sequence[int] = solve_mwis(graph, self.method)
        selected = [terms[index] for index in selected_ids]
        assignment = problem.new_assignment()
        for term in selected:
            assignment.assign(term.predecessor, term.disk)
            assignment.assign(term.successor, term.disk)
        _repair_unassigned(problem, assignment)
        problem.validate_schedule(assignment)
        return MWISResult(
            assignment=assignment,
            selected=tuple(selected),
            estimated_saving=graph.total_weight(selected_ids),
            num_nodes=len(graph),
            num_edges=graph.num_edges,
        )

    def schedule(self, problem: SchedulingProblem) -> Assignment:
        return self.schedule_detailed(problem).assignment


def _repair_unassigned(problem: SchedulingProblem, assignment: Assignment) -> None:
    """Step 4's free requests: insert each into the cheapest chain.

    The paper allows any data location for a request carrying no selected
    saving term. We pick the location with the smallest *marginal* offline
    energy given the partially-built chains: inserting at time ``t``
    between chain neighbours ``p`` and ``s`` costs
    ``E(t-tp) + E(ts-t) - E(ts-tp)`` where ``E`` is the Lemma-1 gap energy
    (``EPmax`` for an empty chain).
    """
    profile = problem.profile
    epmax = max_request_energy(profile)
    chain_times: Dict[DiskId, List[float]] = {}
    for request_id, disk_id in assignment.items():
        times = chain_times.setdefault(disk_id, [])
        times.append(_request_time(problem, request_id))
    for times in chain_times.values():
        times.sort()

    for request in assignment.unassigned():
        best_disk: Optional[DiskId] = None
        best_cost = None
        for disk_id in problem.locations_of(request):
            times = chain_times.get(disk_id, [])
            cost = _marginal_energy(times, request.time, profile, epmax)
            key = (cost, disk_id)
            if best_cost is None or key < best_cost:
                best_cost = key
                best_disk = disk_id
        assert best_disk is not None  # every request has >= 1 location
        assignment.assign(request.request_id, best_disk)
        bisect.insort(chain_times.setdefault(best_disk, []), request.time)


def _marginal_energy(
    times: List[float], t: float, profile: DiskPowerProfile, epmax: float
) -> float:
    if not times:
        return epmax
    index = bisect.bisect_left(times, t)
    predecessor = times[index - 1] if index > 0 else None
    successor = times[index] if index < len(times) else None
    if predecessor is None and successor is None:
        return epmax
    if predecessor is None:
        return gap_energy(successor - t, profile)
    if successor is None:
        return gap_energy(t - predecessor, profile)
    return (
        gap_energy(t - predecessor, profile)
        + gap_energy(successor - t, profile)
        - gap_energy(successor - predecessor, profile)
    )


def _request_time(problem: SchedulingProblem, request_id: RequestId) -> float:
    # Requests are stored sorted; build a lookup lazily and cache on the
    # problem object to avoid quadratic scans.
    cache = getattr(problem, "_time_cache", None)
    if cache is None:
        cache = {request.request_id: request.time for request in problem.requests}
        object.__setattr__(problem, "_time_cache", cache)
    return cache[request_id]


@register_scheduler("mwis")
def _make_mwis() -> MWISOfflineScheduler:
    return MWISOfflineScheduler()
