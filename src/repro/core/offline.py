"""Offline-model analytic evaluator (Section 2.2 / Lemma 1 semantics).

Under the offline model a scheduler knows arrival times a-priori, so disks
spin up *in advance* and no request waits. What remains is pure energy
bookkeeping over each disk's request chain:

* consecutive requests with gap ``g < TB + Tup + Tdown`` keep the disk
  idle for ``g`` seconds (Lemma 1 cases II/III, energy ``g * PI``);
* larger gaps cost the full ``EPmax = Eup + Edown + TB*PI`` (case I — the
  disk idles out the threshold, spins down and later up again);
* a chain's last request pays ``EPmax`` (no successor — the paper's
  formal convention, which makes schedule energy = N*EPmax − total saving).

The evaluator reproduces the paper's worked examples exactly (Fig. 2:
schedule B = 10; Fig. 3: schedule B = 23, schedule C = 19, always-on 76)
and also synthesises physical per-disk state breakdowns so offline (MWIS)
runs can sit on the same figures as simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.saving import gap_energy, max_request_energy, saving_window
from repro.disk.stats import DiskStats
from repro.power.states import DiskPowerState
from repro.report import SimulationReport
from repro.types import Assignment, DiskId, RequestId


@dataclass(frozen=True)
class OfflineEvaluation:
    """Result of evaluating one schedule under the offline model.

    Attributes:
        objective_energy: Paper-convention energy (sum of per-request
            energies; last request of each chain pays ``EPmax``).
        request_energy: Per-request energies in joules.
        total_saving: ``N * EPmax - objective_energy`` (joules).
        report: A :class:`SimulationReport` with synthesised per-disk state
            breakdowns, physical energy and spin counts over the common
            horizon — directly comparable with simulated reports.
        always_on_energy: Energy in joules of the always-on configuration
            over the same horizon (``num_disks * horizon * PI``).

    ``objective_energy`` is the Eq. 4 objective, also in joules.
    """

    objective_energy: float
    request_energy: Mapping[RequestId, float]
    total_saving: float
    report: SimulationReport
    always_on_energy: float

    @property
    def horizon(self) -> float:
        return self.report.duration

    @property
    def normalized_energy(self) -> float:
        """Physical energy relative to always-on, a unitless joules ratio
        (the Fig. 6 metric)."""
        return self.report.total_energy / self.always_on_energy


class OfflineEvaluator:
    """Evaluates complete assignments under the offline model."""

    def __init__(self, problem: SchedulingProblem):
        self._problem = problem

    def horizon(self) -> float:
        """Common evaluation horizon: last arrival + TB + Tdown.

        Matches the paper's always-on accounting in the Fig. 3 example
        (duration 18 = last arrival 13 + breakeven 5 with free
        transitions).
        """
        profile = self._problem.profile
        requests = self._problem.requests
        last_arrival = requests[-1].time if requests else 0.0
        return last_arrival + profile.breakeven_time + profile.spin_down_time

    def always_on_energy(self) -> float:
        """Joules burned with all disks idle for the whole horizon."""
        return (
            self._problem.num_disks
            * self.horizon()
            * self._problem.profile.idle_power
        )

    def evaluate(
        self, assignment: Assignment, scheduler_name: str = "offline"
    ) -> OfflineEvaluation:
        """Evaluate a feasible, complete schedule."""
        self._problem.validate_schedule(assignment)
        profile = self._problem.profile
        epmax = max_request_energy(profile)
        window = saving_window(profile)
        horizon = self.horizon()

        request_energy: Dict[RequestId, float] = {}
        disk_stats: Dict[DiskId, DiskStats] = {}
        chains = assignment.chains()

        for disk_id in self._problem.disks:
            stats = DiskStats(profile)
            chain = chains.get(disk_id, [])
            if not chain:
                _accumulate(stats, DiskPowerState.STANDBY, horizon)
                stats.mark_closed()
                disk_stats[disk_id] = stats
                continue

            # Lead-in: standby, then an in-advance spin-up ending exactly
            # at the first arrival.
            first_time = chain[0].time
            spin_up_lead = min(profile.spin_up_time, first_time)
            _accumulate(stats, DiskPowerState.STANDBY, first_time - spin_up_lead)
            _accumulate(stats, DiskPowerState.SPIN_UP, spin_up_lead)
            stats.spin_ups += 1

            for current, successor in zip(chain, chain[1:]):
                gap = successor.time - current.time
                request_energy[current.request_id] = gap_energy(gap, profile)
                if gap < window:
                    _accumulate(stats, DiskPowerState.IDLE, gap)
                else:
                    _accumulate(stats, DiskPowerState.IDLE, profile.breakeven_time)
                    _accumulate(
                        stats, DiskPowerState.SPIN_DOWN, profile.spin_down_time
                    )
                    _accumulate(
                        stats,
                        DiskPowerState.STANDBY,
                        gap - profile.breakeven_time - profile.transition_time,
                    )
                    _accumulate(stats, DiskPowerState.SPIN_UP, profile.spin_up_time)
                    stats.spin_downs += 1
                    stats.spin_ups += 1
                stats.note_request_serviced()

            # Tail: the last request idles out TB, spins down, sleeps.
            last = chain[-1]
            request_energy[last.request_id] = epmax
            stats.note_request_serviced()
            _accumulate(stats, DiskPowerState.IDLE, profile.breakeven_time)
            _accumulate(stats, DiskPowerState.SPIN_DOWN, profile.spin_down_time)
            stats.spin_downs += 1
            tail_standby = horizon - (
                last.time + profile.breakeven_time + profile.spin_down_time
            )
            _accumulate(stats, DiskPowerState.STANDBY, max(0.0, tail_standby))
            stats.mark_closed()
            disk_stats[disk_id] = stats

        objective = sum(request_energy.values())
        total_requests = len(self._problem.requests)
        report = SimulationReport(
            scheduler_name=scheduler_name,
            duration=horizon,
            total_energy=sum(stats.energy for stats in disk_stats.values()),
            disk_stats=disk_stats,
            response_times=(),
            requests_offered=total_requests,
            requests_completed=total_requests,
        )
        return OfflineEvaluation(
            objective_energy=objective,
            request_energy=request_energy,
            total_saving=total_requests * epmax - objective,
            report=report,
            always_on_energy=self.always_on_energy(),
        )


def _accumulate(stats: DiskStats, state: DiskPowerState, seconds: float) -> None:
    """Directly credit ``seconds`` to ``state`` in a synthetic ledger."""
    if seconds < 0:
        # Negative tails only arise from float noise at the horizon; clamp.
        seconds = 0.0
    stats.state_time[state] += seconds


def chain_energies(
    assignment: Assignment, problem: SchedulingProblem
) -> Dict[DiskId, float]:
    """Per-disk objective energy (diagnostics / tests)."""
    profile = problem.profile
    epmax = max_request_energy(profile)
    result: Dict[DiskId, float] = {}
    for disk_id, chain in assignment.chains().items():
        total = 0.0
        for current, successor in zip(chain, chain[1:]):
            total += gap_energy(successor.time - current.time, profile)
        total += epmax
        result[disk_id] = total
    return result
