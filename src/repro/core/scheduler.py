"""Scheduler interfaces and registry.

Three families, matching the paper's three models (Section 2.2):

* :class:`OnlineScheduler` — decides per request at its arrival instant.
* :class:`BatchScheduler` — decides for a whole queued batch at each
  scheduling interval.
* :class:`OfflineScheduler` — sees the entire request stream up front and
  returns a complete :class:`~repro.types.Assignment`.

Online and batch schedulers observe the live system through a
:class:`SystemView` (disk power states, queue lengths, ``Tlast``); the
offline scheduler works directly on a
:class:`~repro.core.problem.SchedulingProblem`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Protocol, Sequence, Tuple

from repro.core.cost import DiskView
from repro.core.problem import SchedulingProblem
from repro.errors import ConfigurationError
from repro.power.profile import DiskPowerProfile
from repro.types import Assignment, DataId, DiskId, Request, RequestId


class SystemView(Protocol):
    """Live system state exposed to online/batch schedulers."""

    @property
    def now(self) -> float: ...

    @property
    def profile(self) -> DiskPowerProfile: ...

    @property
    def disk_ids(self) -> Sequence[DiskId]: ...

    def disk(self, disk_id: DiskId) -> DiskView: ...

    def locations(self, data_id: DataId) -> Tuple[DiskId, ...]: ...

    def available_locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """The subset of :meth:`locations` currently able to service
        requests; equal to it when no fault injection is active."""
        ...


class Scheduler(ABC):
    """Common base: every scheduler has a report-friendly name."""

    @property
    def name(self) -> str:
        return type(self).__name__


class OnlineScheduler(Scheduler):
    """Assigns each request to a disk the moment it arrives."""

    @abstractmethod
    def choose(self, request: Request, view: SystemView) -> DiskId:
        """Pick one of the request's data locations."""


class BatchScheduler(Scheduler):
    """Assigns all requests queued during a scheduling interval at once.

    ``interval`` is the scheduling-interval length in simulated seconds.
    """

    def __init__(self, interval: float):
        if interval <= 0:
            raise ConfigurationError(f"batch interval must be positive, got {interval}")
        self.interval = interval

    @abstractmethod
    def choose_batch(
        self, requests: Sequence[Request], view: SystemView
    ) -> Dict[RequestId, DiskId]:
        """Pick a location for every request of the batch."""


class OfflineScheduler(Scheduler):
    """Schedules a whole problem with a-priori arrival knowledge."""

    @abstractmethod
    def schedule(self, problem: SchedulingProblem) -> Assignment:
        """Return a complete, feasible assignment."""


SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(
    name: str,
) -> Callable[[Callable[[], Scheduler]], Callable[[], Scheduler]]:
    """Decorator registering a zero-argument scheduler factory by name."""

    def decorator(factory: Callable[[], Scheduler]) -> Callable[[], Scheduler]:
        if name in SCHEDULER_FACTORIES:
            raise ConfigurationError(f"scheduler {name!r} registered twice")
        SCHEDULER_FACTORIES[name] = factory
        return factory

    return decorator


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler with its paper-default config."""
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULER_FACTORIES)}"
        )
    return factory()
