"""The scheduling problem ``ES(R, D, L, P)`` and schedule validation.

Mirrors Table 1 of the paper:

* ``R`` — request stream sorted by disk access time,
* ``D`` — the disks (``range(num_disks)``),
* ``L`` — the placement catalog,
* ``P`` — the 2CPM power configuration (a ``DiskPowerProfile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import PlacementError, SchedulingError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import DiskPowerProfile
from repro.types import Assignment, DiskId, Request


@dataclass(frozen=True)
class SchedulingProblem:
    """One instance of energy-aware scheduling.

    Attributes:
        requests: ``R`` — sorted by time ascending (validated).
        catalog: ``L`` — each request's data must be placed.
        profile: ``P`` — power configuration (supplies TB, Eup/down, PI).
        num_disks: ``|D|``; disks are ids ``0 .. num_disks-1``.
    """

    requests: Tuple[Request, ...]
    catalog: PlacementCatalog
    profile: DiskPowerProfile
    num_disks: int

    def __post_init__(self) -> None:
        if self.num_disks <= 0:
            raise SchedulingError("num_disks must be positive")
        previous_time = None
        for request in self.requests:
            if previous_time is not None and request.time < previous_time:
                raise SchedulingError("requests must be sorted by time")
            previous_time = request.time
            try:
                locations = self.catalog.locations(request.data_id)
            except PlacementError as exc:
                raise SchedulingError(str(exc))
            for disk in locations:
                if not 0 <= disk < self.num_disks:
                    raise SchedulingError(
                        f"data {request.data_id} placed on unknown disk {disk}"
                    )

    @staticmethod
    def build(
        requests: Sequence[Request],
        catalog: PlacementCatalog,
        profile: DiskPowerProfile,
        num_disks: int,
    ) -> "SchedulingProblem":
        return SchedulingProblem(
            requests=tuple(sorted(requests)),
            catalog=catalog,
            profile=profile,
            num_disks=num_disks,
        )

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def disks(self) -> range:
        return range(self.num_disks)

    def locations_of(self, request: Request) -> Tuple[DiskId, ...]:
        """The disks holding ``request``'s data (original first)."""
        return self.catalog.locations(request.data_id)

    def new_assignment(self) -> Assignment:
        """An empty assignment over this problem's request stream."""
        return Assignment(self.requests)

    def validate_schedule(self, assignment: Assignment) -> None:
        """Raise unless ``assignment`` is a feasible schedule of this problem.

        Feasible = complete (every request assigned) and every request sits
        on one of its data locations.
        """
        if not assignment.is_complete():
            missing = [r.request_id for r in assignment.unassigned()]
            raise SchedulingError(f"schedule incomplete; unassigned: {missing[:10]}")
        for request in self.requests:
            disk = assignment.disk_of(request.request_id)
            if disk not in self.locations_of(request):
                raise SchedulingError(
                    f"request {request.request_id} scheduled on disk {disk}, "
                    f"but its data {request.data_id} lives on "
                    f"{self.locations_of(request)}"
                )

    def used_disks(self, assignment: Assignment) -> List[DiskId]:
        """Sorted disks that service at least one request."""
        return sorted(assignment.chains())
