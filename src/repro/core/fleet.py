"""Columnar fleet-cost kernel: Eq. 5/Eq. 6 over the fleet as arrays.

The per-arrival hot path of the online Heuristic — and the per-tick
weight pass of the WSC batch scheduler — score disks with Eq. 5
(marginal energy) and Eq. 6 (composite cost). The scalar path walks
Python objects: one attribute dance per disk per score. This module
mirrors the scheduling-relevant state of every disk into four parallel
``array('d')`` columns (structure-of-arrays):

``pi``
    Idle-power slope in watts: ``profile.idle_power`` while the disk is
    IDLE with a recorded ``Tlast``, else ``0.0``.
``const``
    Memoised constant term in joules: the standby/spin-down wake-up
    cost ``Eup + Edown + TB * PI`` in those states, else ``0.0``.
``tlast``
    ``Tlast`` of Eq. 5 (seconds); meaningless — and masked by
    ``pi == 0`` — until the disk first receives a request.
``queue``
    ``P(dk)`` of Eq. 7: queued requests plus the one in service.

so that for every disk, at every instant::

    E(dk) = (now - tlast) * pi + const          (Eq. 5)
    C(dk) = E(dk) * alpha / beta + queue * lw   (Eq. 6, lw = 1 - alpha)

**bit-identically** to the scalar reference (`repro.core.cost`): in the
IDLE branch ``const`` is ``0.0`` and IEEE-754 guarantees ``x + 0.0 == x``
for the non-negative products that occur; in every other branch ``pi``
is ``0.0`` and the expression collapses to the memoised constant. The
same expression evaluated elementwise by numpy ufuncs produces the same
bits — numpy does not fuse the multiply-add.

The columns are plain ``array('d')`` buffers: the disks' state-machine
hooks write single slots at Python-float speed, while numpy views
created once with :func:`numpy.frombuffer` share the memory zero-copy
for the vectorised passes. Candidate sets smaller than
:data:`SMALL_CANDIDATE_CUTOFF` are scored by a scalar gather over the
columns instead — ufunc dispatch overhead dwarfs the arithmetic at
replication-factor-sized candidate lists — with the identical
arithmetic, so the adaptive switch can never change a decision.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence

import numpy as np

from repro.power.profile import DiskPowerProfile
from repro.power.states import DiskPowerState
from repro.types import DiskId

#: Below this many candidates the scalar gather beats the numpy path
#: (ufunc dispatch costs ~µs; the paper's replication factors are 1-5).
SMALL_CANDIDATE_CUTOFF = 32

#: Recognised cost-kernel names.
KERNELS = ("python", "numpy")

#: Environment variable consulted for the session-wide default kernel.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_default_kernel_override: Optional[str] = None


def default_kernel() -> str:
    """The kernel used when a config does not pin one explicitly.

    Resolution order: :func:`set_default_kernel` override, then the
    ``REPRO_KERNEL`` environment variable, then ``"numpy"``.
    """
    if _default_kernel_override is not None:
        return _default_kernel_override
    kernel = os.environ.get(KERNEL_ENV_VAR, "numpy")
    if kernel not in KERNELS:
        raise ValueError(
            f"{KERNEL_ENV_VAR}={kernel!r}: expected one of {KERNELS}"
        )
    return kernel


def set_default_kernel(kernel: Optional[str]) -> None:
    """Process-wide kernel override (the CLI ``--kernel`` flag).

    ``None`` clears the override, falling back to the environment.
    """
    global _default_kernel_override
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}: expected one of {KERNELS}")
    _default_kernel_override = kernel


class FleetCostState:
    """Columnar mirror of per-disk scheduling state, plus its kernels.

    Owned by the :class:`~repro.sim.storage.StorageSystem` when the
    ``numpy`` kernel is selected and exposed to schedulers as
    ``view.fleet``; each :class:`~repro.disk.drive.SimulatedDisk` holds
    direct references to the columns and maintains its own slot from the
    state-transition/submit/complete hooks.
    """

    __slots__ = (
        "num_disks",
        "pi",
        "const",
        "tlast",
        "queue",
        "idle_power",
        "standby_marginal",
        "_np_pi",
        "_np_const",
        "_np_tlast",
        "_np_queue",
    )

    def __init__(
        self,
        num_disks: int,
        profile: DiskPowerProfile,
        initial_state: DiskPowerState = DiskPowerState.STANDBY,
    ):
        if num_disks <= 0:
            raise ValueError("num_disks must be positive")
        self.num_disks = num_disks
        self.idle_power = profile.idle_power
        # Same expression SimulatedDisk memoises for STANDBY/SPIN_DOWN.
        self.standby_marginal = (
            profile.transition_energy
            + profile.breakeven_time * profile.idle_power
        )
        zeros = bytes(8 * num_disks)
        self.pi = array("d", zeros)
        self.const = array("d", zeros)
        self.tlast = array("d", zeros)
        self.queue = array("d", zeros)
        if initial_state in (DiskPowerState.STANDBY, DiskPowerState.SPIN_DOWN):
            for i in range(num_disks):
                self.const[i] = self.standby_marginal
        # IDLE starts with Tlast unset => pi stays 0 and E(dk) is 0,
        # matching energy_cost()'s never-touched branch.
        # Zero-copy float64 views over the same buffers: the scalar
        # hooks write through the array('d') handles, the vector
        # kernels read through these.
        self._np_pi = np.frombuffer(self.pi, dtype=np.float64)
        self._np_const = np.frombuffer(self.const, dtype=np.float64)
        self._np_tlast = np.frombuffer(self.tlast, dtype=np.float64)
        self._np_queue = np.frombuffer(self.queue, dtype=np.float64)

    # -- scalar reads (tests, parity checks) ---------------------------

    def marginal_energy(self, disk_id: DiskId, now: float) -> float:
        """Eq. 5 marginal energy in joules from the columns (debug read)."""
        return (now - self.tlast[disk_id]) * self.pi[disk_id] + self.const[
            disk_id
        ]

    def cost(
        self,
        disk_id: DiskId,
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> float:
        """Eq. 6 for one disk from the columns (reference/debug read)."""
        energy = self.marginal_energy(disk_id, now)
        return energy * alpha / beta + self.queue[disk_id] * load_weight

    # -- kernels -------------------------------------------------------

    def choose(
        self,
        candidates: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> DiskId:
        """Cheapest candidate by Eq. 6; ties by queue, then disk id.

        Bit-identical to the scalar loop in
        :meth:`repro.core.heuristic.HeuristicScheduler.choose` — same
        arithmetic, same evaluation order, same unrolled tie-break.
        Dispatches between the scalar gather and the vectorised pass on
        candidate-set size; both branches are exposed directly
        (:meth:`choose_scalar`, :meth:`choose_vector`) for parity tests
        and microbenches.
        """
        if len(candidates) < SMALL_CANDIDATE_CUTOFF:
            return self.choose_scalar(candidates, now, alpha, beta, load_weight)
        return self.choose_vector(candidates, now, alpha, beta, load_weight)

    def choose_scalar(
        self,
        candidates: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> DiskId:
        """The scalar-gather branch of :meth:`choose` (any size)."""
        pi = self.pi
        const = self.const
        tlast = self.tlast
        queue = self.queue
        best_disk: int = -1
        best_cost = 0.0
        best_queue = 0.0
        for disk_id in candidates:
            energy = (now - tlast[disk_id]) * pi[disk_id] + const[disk_id]
            queue_length = queue[disk_id]
            cost = energy * alpha / beta + queue_length * load_weight
            if (
                best_disk < 0
                or cost < best_cost
                or (
                    cost == best_cost
                    and (
                        queue_length < best_queue
                        or (
                            queue_length == best_queue
                            and disk_id < best_disk
                        )
                    )
                )
            ):
                best_cost = cost
                best_queue = queue_length
                best_disk = disk_id
        assert best_disk >= 0  # candidates is non-empty
        return best_disk

    def choose_vector(
        self,
        candidates: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> DiskId:
        """The vectorised branch of :meth:`choose` (any size)."""
        idx = np.asarray(candidates, dtype=np.intp)
        energy = (now - self._np_tlast[idx]) * self._np_pi[idx]
        energy += self._np_const[idx]
        queue = self._np_queue[idx]
        cost = energy * alpha / beta + queue * load_weight
        sel = np.flatnonzero(cost == cost.min())
        if len(sel) > 1:
            tied_queues = queue[sel]
            sel = sel[tied_queues == tied_queues.min()]
            if len(sel) > 1:
                return int(idx[sel].min())
        return int(idx[sel[0]])

    def weights(
        self,
        disk_ids: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> List[float]:
        """Eq. 6 weights for ``disk_ids`` (the WSC per-tick weight pass).

        Bit-identical to calling :meth:`repro.core.cost.CostFunction.cost`
        per disk. Both branches are exposed directly
        (:meth:`weights_scalar`, :meth:`weights_vector`) for parity
        tests and microbenches.
        """
        if len(disk_ids) < SMALL_CANDIDATE_CUTOFF:
            return self.weights_scalar(disk_ids, now, alpha, beta, load_weight)
        return self.weights_vector(disk_ids, now, alpha, beta, load_weight)

    def weights_scalar(
        self,
        disk_ids: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> List[float]:
        """The scalar branch of :meth:`weights` (any size)."""
        pi = self.pi
        const = self.const
        tlast = self.tlast
        queue = self.queue
        return [
            ((now - tlast[d]) * pi[d] + const[d]) * alpha / beta
            + queue[d] * load_weight
            for d in disk_ids
        ]

    def weights_vector(
        self,
        disk_ids: Sequence[DiskId],
        now: float,
        alpha: float,
        beta: float,
        load_weight: float,
    ) -> List[float]:
        """The vectorised branch of :meth:`weights` (any size)."""
        idx = np.asarray(disk_ids, dtype=np.intp)
        energy = (now - self._np_tlast[idx]) * self._np_pi[idx]
        energy += self._np_const[idx]
        cost = energy * alpha / beta + self._np_queue[idx] * load_weight
        result: List[float] = cost.tolist()
        return result

    def energies(self, disk_ids: Sequence[DiskId], now: float) -> List[float]:
        """Eq. 5 energies for ``disk_ids`` (plain-WSC set weights)."""
        if len(disk_ids) < SMALL_CANDIDATE_CUTOFF:
            pi = self.pi
            const = self.const
            tlast = self.tlast
            return [
                (now - tlast[d]) * pi[d] + const[d] for d in disk_ids
            ]
        idx = np.asarray(disk_ids, dtype=np.intp)
        energy = (now - self._np_tlast[idx]) * self._np_pi[idx]
        energy += self._np_const[idx]
        result: List[float] = energy.tolist()
        return result
