"""Scheduling cost functions: Eq. 5 (energy), Eq. 7 (load), Eq. 6 (composite).

``E(dk)`` — the *additional* energy consumed on disk ``dk`` if the batch's
requests are scheduled there (Theorem 2)::

    E(dk) = 0                        if dk is active or spinning up
          = Eup + Edown + TB * PI    if dk is standby or spinning down
          = (Tnow - Tlast) * PI      if dk is idle

``P(dk)`` — the performance cost: the current number of requests on the
disk (queued + in service).

``C(dk) = E(dk) * alpha / beta + P(dk) * (1 - alpha)`` — the composite
cost the online Heuristic and the WSC batch scheduler minimise. ``alpha``
trades energy against response time (1 = energy only, 0 = load only);
``beta`` converts joules into the unitless load scale. The paper settles
on ``alpha = 0.2``, ``beta = 100`` (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.errors import ConfigurationError
from repro.power.profile import DiskPowerProfile
from repro.power.states import DiskPowerState


class DiskView(Protocol):
    """What a scheduler may observe about one disk."""

    @property
    def state(self) -> DiskPowerState: ...

    @property
    def queue_length(self) -> int: ...

    @property
    def last_request_time(self) -> Optional[float]:
        """``Tlast`` in simulated seconds; None before any request."""
        ...


def energy_cost(
    state: DiskPowerState,
    last_request_time: Optional[float],
    now: float,
    profile: DiskPowerProfile,
) -> float:
    """Eq. 5 — marginal energy (joules) of sending the next request(s) to a disk.

    ``last_request_time`` and ``now`` are simulated seconds.

    The idle branch charges the idle-time *extension*: an idle disk that
    last saw a request at ``Tlast`` would have spun down at
    ``Tlast + TB``; serving a new request at ``Tnow`` postpones that to
    ``Tnow + TB``, i.e. ``(Tnow - Tlast) * PI`` extra idle energy. A disk
    that has never seen a request is treated as freshly touched
    (zero extension) — it is spinning and unclaimed.
    """
    if state in (DiskPowerState.ACTIVE, DiskPowerState.SPIN_UP):
        return 0.0
    if state in (DiskPowerState.STANDBY, DiskPowerState.SPIN_DOWN):
        return profile.transition_energy + profile.breakeven_time * profile.idle_power
    # IDLE
    if last_request_time is None:
        return 0.0
    extension = now - last_request_time
    if extension < 0:
        raise ConfigurationError(
            f"last_request_time {last_request_time} is in the future of {now}"
        )
    return extension * profile.idle_power


def performance_cost(queue_length: int) -> float:
    """Eq. 7 — current number of requests on the disk."""
    if queue_length < 0:
        raise ConfigurationError("queue length must be >= 0")
    return float(queue_length)


@dataclass(frozen=True)
class CostFunction:
    """Eq. 6 — composite energy/performance cost ``C(dk)``.

    Attributes:
        alpha: Energy-vs-performance ratio in [0, 1]; 1 = energy only.
        beta: Unit factor scaling joules against queue length; > 0.
        load_weight: Derived ``1 - alpha``, precomputed for the per-arrival
            hot path (schedulers fold it into their inner loop).
    """

    alpha: float = 0.2
    beta: float = 100.0
    load_weight: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.beta <= 0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")
        object.__setattr__(self, "load_weight", 1.0 - self.alpha)

    def cost(self, disk: DiskView, now: float, profile: DiskPowerProfile) -> float:
        """Evaluate ``C(dk)`` for one disk at time ``now``.

        Live :class:`~repro.disk.drive.SimulatedDisk` views expose a
        memoised ``marginal_energy`` (same value as :func:`energy_cost`
        on their own profile, which in the simulator is always the
        ``profile`` passed here); plain protocol views fall back to the
        reference Eq. 5 evaluation.
        """
        marginal = getattr(disk, "marginal_energy", None)
        if marginal is not None:
            energy = marginal(now)
        else:
            energy = energy_cost(disk.state, disk.last_request_time, now, profile)
        queue_length = disk.queue_length
        if queue_length < 0:
            raise ConfigurationError("queue length must be >= 0")
        # NOTE: evaluation order `energy * alpha / beta` is load-bearing —
        # folding alpha/beta into one factor rounds differently and would
        # flip near-tie scheduling decisions.
        return energy * self.alpha / self.beta + queue_length * self.load_weight

    def energy_only(self) -> "CostFunction":
        """The pure-energy corner (alpha = 1) used by the plain WSC weights."""
        return CostFunction(alpha=1.0, beta=self.beta)

    def performance_only(self) -> "CostFunction":
        """The pure-performance corner (alpha = 0)."""
        return CostFunction(alpha=0.0, beta=self.beta)


#: The configuration the paper uses for Heuristic and WSC (Appendix A.2).
PAPER_COST_FUNCTION = CostFunction(alpha=0.2, beta=100.0)
