"""Random baseline: uniformly pick one of the request's data locations.

One of the paper's two energy-oblivious baselines (Section 4.3). With a
replication factor above 1 it scatters requests across disks, keeping them
all spinning — which is exactly why its energy climbs back toward the
always-on configuration as replication grows (Fig. 6).
"""

from __future__ import annotations

import random

from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError
from repro.types import DiskId, Request


class RandomScheduler(OnlineScheduler):
    """Uniform choice over *live* replica locations, seeded for
    determinism; identical draws to the pre-fault code when no fault
    injection is active."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, request: Request, view: SystemView) -> DiskId:
        available = view.available_locations(request.data_id)
        if not available:
            raise ReplicaUnavailableError(
                f"no live replica for data {request.data_id}"
            )
        return self._rng.choice(available)

    @property
    def name(self) -> str:
        return "Random"


@register_scheduler("random")
def _make_random() -> RandomScheduler:
    return RandomScheduler()
