"""Static baseline: always use the original data location.

The second energy-oblivious baseline (Section 4.3). Its behaviour is
independent of the replication factor, so its curves are flat in the
replication sweeps (Fig. 6/7) — the paper normalises the spin-up/down
counts to Static for exactly that reason.
"""

from __future__ import annotations

from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.errors import ReplicaUnavailableError
from repro.types import DiskId, Request


class StaticScheduler(OnlineScheduler):
    """Route every request to its original (first) *live* location.

    Under fault injection the original location may be dead; Static then
    falls back to the first surviving replica in placement order — the
    minimal deviation that keeps the baseline meaningful.
    """

    def choose(self, request: Request, view: SystemView) -> DiskId:
        available = view.available_locations(request.data_id)
        if not available:
            raise ReplicaUnavailableError(
                f"no live replica for data {request.data_id}"
            )
        return available[0]

    @property
    def name(self) -> str:
        return "Static"


@register_scheduler("static")
def _make_static() -> StaticScheduler:
    return StaticScheduler()
