"""Static baseline: always use the original data location.

The second energy-oblivious baseline (Section 4.3). Its behaviour is
independent of the replication factor, so its curves are flat in the
replication sweeps (Fig. 6/7) — the paper normalises the spin-up/down
counts to Static for exactly that reason.
"""

from __future__ import annotations

from repro.core.scheduler import OnlineScheduler, SystemView, register_scheduler
from repro.types import DiskId, Request


class StaticScheduler(OnlineScheduler):
    """Route every request to its original (first) location."""

    def choose(self, request: Request, view: SystemView) -> DiskId:
        return view.locations(request.data_id)[0]

    @property
    def name(self) -> str:
        return "Static"


@register_scheduler("static")
def _make_static() -> StaticScheduler:
    return StaticScheduler()
