"""State-period analysis from per-disk transition logs.

The paper's motivation lists *problem (b)*: under typical workloads disks
"do not experience long enough periods of inactivity" to cross the
breakeven threshold. Energy-aware scheduling re-shapes the workload so
that fewer disks see traffic and the rest accumulate *long* standby
periods. These helpers quantify exactly that from the transition logs
recorded with ``SimulationConfig(record_transitions=True)``:

* :func:`state_periods` — durations of every maximal interval a disk
  spent in one state;
* :func:`period_summary` — count / total / mean / max of a duration list;
* :func:`standby_periods_of_report` — all standby periods across a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.power.states import DiskPowerState
from repro.report import SimulationReport

Transition = Tuple[float, DiskPowerState]


def state_periods(
    transitions: Sequence[Transition],
    state: DiskPowerState,
    end_time: float,
) -> List[float]:
    """Durations (seconds) of maximal ``state`` intervals in a transition log.

    The log is ``(time, new_state)`` pairs, first entry = initial state;
    the final interval is closed at ``end_time`` (simulated seconds).
    """
    if not transitions:
        return []
    periods: List[float] = []
    previous_time, previous_state = transitions[0]
    for time, new_state in transitions[1:]:
        if time < previous_time:
            raise ConfigurationError("transition log not sorted")
        if previous_state is state:
            periods.append(time - previous_time)
        previous_time, previous_state = time, new_state
    if previous_state is state and end_time > previous_time:
        periods.append(end_time - previous_time)
    return periods


@dataclass(frozen=True)
class PeriodSummary:
    """Aggregate view of one duration population."""

    count: int
    total: float
    mean: float
    longest: float

    @staticmethod
    def of(durations: Sequence[float]) -> "PeriodSummary":
        """Summarise a population of period durations (seconds)."""
        if not durations:
            return PeriodSummary(count=0, total=0.0, mean=0.0, longest=0.0)
        total = sum(durations)
        return PeriodSummary(
            count=len(durations),
            total=total,
            mean=total / len(durations),
            longest=max(durations),
        )


def period_summary(durations: Sequence[float]) -> PeriodSummary:
    """Shorthand for :meth:`PeriodSummary.of` (durations in seconds)."""
    return PeriodSummary.of(durations)


def standby_periods_of_report(report: SimulationReport) -> List[float]:
    """Every standby period across all disks of a run.

    Requires the run to have been made with ``record_transitions=True``;
    disks without logs are skipped (the offline evaluator's synthetic
    ledgers, for instance).
    """
    periods: List[float] = []
    for stats in report.disk_stats.values():
        if stats.transitions is None:
            continue
        periods.extend(
            state_periods(
                stats.transitions, DiskPowerState.STANDBY, report.duration
            )
        )
    return periods


def idle_periods_of_report(report: SimulationReport) -> List[float]:
    """Every idle period across all disks of a run (same requirements)."""
    periods: List[float] = []
    for stats in report.disk_stats.values():
        if stats.transitions is None:
            continue
        periods.extend(
            state_periods(
                stats.transitions, DiskPowerState.IDLE, report.duration
            )
        )
    return periods
