"""Distribution utilities for response-time analysis (Fig. 12/13)."""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def inverse_cdf(
    values: Sequence[float], thresholds: Sequence[float]
) -> List[Tuple[float, float]]:
    """``P[value > x]`` at each threshold — the paper's Fig. 12 axes."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return [(x, 0.0) for x in thresholds]
    return [
        (x, (n - bisect.bisect_right(ordered, x)) / n)
        for x in thresholds
    ]


def nearest_rank_percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (0.9 = the paper's 90th percentile)."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def log_spaced_thresholds(
    low: float, high: float, points_per_decade: int = 4
) -> List[float]:
    """Logarithmically spaced thresholds matching Fig. 12's log x-axis."""
    if low <= 0 or high <= low:
        raise ConfigurationError("need 0 < low < high")
    if points_per_decade <= 0:
        raise ConfigurationError("points_per_decade must be positive")
    thresholds = []
    exponent = math.log10(low)
    stop = math.log10(high)
    step = 1.0 / points_per_decade
    while exponent <= stop + 1e-12:
        thresholds.append(10.0 ** exponent)
        exponent += step
    return thresholds


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (empty input rejected)."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)
