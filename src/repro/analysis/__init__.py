"""Analysis helpers: distributions, state periods, tables, exports."""

from repro.analysis.distributions import (
    inverse_cdf,
    log_spaced_thresholds,
    mean,
    nearest_rank_percentile,
)
from repro.analysis.export import (
    figure_to_csv,
    figure_to_json,
    report_to_dict,
    report_to_json,
)
from repro.analysis.idleness import (
    PeriodSummary,
    idle_periods_of_report,
    period_summary,
    standby_periods_of_report,
    state_periods,
)
from repro.analysis.tables import format_breakdown, format_series_table, format_table

__all__ = [
    "PeriodSummary",
    "figure_to_csv",
    "figure_to_json",
    "format_breakdown",
    "format_series_table",
    "format_table",
    "idle_periods_of_report",
    "inverse_cdf",
    "log_spaced_thresholds",
    "mean",
    "nearest_rank_percentile",
    "period_summary",
    "report_to_dict",
    "report_to_json",
    "standby_periods_of_report",
    "state_periods",
]
