"""Export experiment results to CSV / JSON for downstream plotting.

The benchmarks print ASCII tables; anyone recreating the paper's actual
plots (matplotlib, gnuplot, ...) can instead dump the underlying series
with these helpers::

    from repro.analysis.export import figure_to_csv, figure_to_json
    from repro.experiments.figures import fig6

    print(figure_to_csv(fig6()))
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

from repro.errors import ConfigurationError


def figure_to_rows(figure: Any) -> Dict[str, Any]:
    """Normalise a FigureResult into a plain dict of rows."""
    for attribute in ("x_label", "x_values", "series", "figure_id", "title"):
        if not hasattr(figure, attribute):
            raise ConfigurationError(
                "expected a FigureResult-like object with series data"
            )
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "x_values": list(figure.x_values),
        "series": {name: list(values) for name, values in figure.series.items()},
    }


def figure_to_csv(figure: Any) -> str:
    """One header row (x label + series names), one row per x value."""
    data = figure_to_rows(figure)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(data["series"])
    writer.writerow([data["x_label"]] + names)
    for index, x in enumerate(data["x_values"]):
        writer.writerow([x] + [data["series"][name][index] for name in names])
    return buffer.getvalue()


def figure_to_json(figure: Any, indent: int = 2) -> str:
    """The full figure payload (id, title, axes, series) as JSON."""
    return json.dumps(figure_to_rows(figure), indent=indent)


def report_to_dict(report: Any) -> Dict[str, Any]:
    """Flatten a SimulationReport into JSON-serialisable summary fields."""
    payload: Dict[str, Any] = {
        "scheduler": report.scheduler_name,
        "duration_s": report.duration,
        "total_energy_j": report.total_energy,
        "spin_ups": report.spin_ups,
        "spin_downs": report.spin_downs,
        "requests_offered": report.requests_offered,
        "requests_completed": report.requests_completed,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }
    if report.response_times:
        payload["mean_response_s"] = report.mean_response_time
        payload["p90_response_s"] = report.response_percentile(0.9)
    return payload


def report_to_json(report: Any, indent: int = 2) -> str:
    """JSON form of :func:`report_to_dict`."""
    return json.dumps(report_to_dict(report), indent=indent)
