"""ASCII table rendering for experiment reports.

Every benchmark prints its figure's series through these helpers so the
terminal output reads like the paper's plots: one row per x-value, one
column per scheduler.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with per-column width fitting."""
    if any(len(row) != len(headers) for row in rows):
        raise ConfigurationError("every row must match the header length")
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """One row per x-value, one column per named series (paper-plot style)."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} length {len(series[name])} != {len(x_values)}"
            )
    headers = [x_label] + names
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        row.extend(round(series[name][index], precision) for name in names)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_breakdown(
    fractions: Sequence[Mapping[Any, float]],
    states: Sequence[Any],
    max_rows: int = 12,
) -> str:
    """Condensed per-disk state breakdown (Fig. 9/17 style).

    Shows evenly spaced sample disks out of the standby-sorted list.
    """
    if not fractions:
        return "(no disks)"
    count = len(fractions)
    if count <= max_rows:
        picks = list(range(count))
    else:
        step = (count - 1) / (max_rows - 1)
        picks = sorted({round(i * step) for i in range(max_rows)})
    headers = ["disk#"] + [getattr(s, "value", str(s)) for s in states]
    rows = []
    for index in picks:
        row: List[object] = [index]
        row.extend(
            f"{fractions[index][state] * 100:.1f}%" for state in states
        )
        rows.append(row)
    return format_table(headers, rows)


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
