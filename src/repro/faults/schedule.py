"""Deterministic failure schedules: plan + disk count + horizon → events.

The schedule is computed *up front*, before any simulation event fires,
from dedicated per-disk RNG streams derived from the plan seed alone.
Consequences:

* the same ``(plan, num_disks, horizon)`` triple always yields the same
  schedule — in this process, in a process-pool worker, and on a
  cache-replayed run;
* fault draws never interleave with (and therefore never perturb)
  service-time draws, which use separate streams;
* the permanent-failure time of each disk is an *inverse-CDF transform
  of one per-disk uniform drawn independently of the failure rate*, so
  for a fixed seed a higher rate strictly advances every failure —
  downtime, and hence unavailability, is monotone in the rate.  The
  ``fault_sweep`` bench leans on this to produce clean degradation
  curves.

Stream derivation uses distinct odd multipliers per fault kind (the
simulated disks' service streams use ``config.seed * 1_000_003 +
disk_id``; these must never collide with them even when the plan seed
equals the config seed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.types import DiskId

_PERMANENT_STREAM = 1_000_033
_TRANSIENT_STREAM = 1_000_037
_SPIN_UP_STREAM = 1_000_039

#: Hard cap on outages per disk per run — a runaway-parameter backstop
#: (mean_repair_s far below mtbf_s cannot wedge the event loop).
MAX_OUTAGES_PER_DISK = 10_000


def _stream(seed: int, disk_id: DiskId, kind: int) -> random.Random:
    """The dedicated RNG stream of one (disk, fault-kind) pair."""
    return random.Random(seed * kind + disk_id)


def spin_up_stream(plan: FaultPlan, disk_id: DiskId) -> random.Random:
    """The per-disk RNG stream feeding spin-up failure draws."""
    return _stream(plan.seed, disk_id, _SPIN_UP_STREAM)


def weibull_time_s(u: float, mttf_s: float, shape: float) -> float:
    """Inverse-CDF Weibull draw with the given mean, in seconds.

    ``u`` is a uniform in [0, 1); for a fixed ``u`` the result scales
    linearly with ``mttf_s`` — the monotonicity the sweeps rely on.
    """
    if not 0.0 <= u < 1.0:
        raise ConfigurationError(f"u must be in [0, 1), got {u}")
    scale_s = mttf_s / math.gamma(1.0 + 1.0 / shape)
    return scale_s * (-math.log(1.0 - u)) ** (1.0 / shape)


@dataclass(frozen=True)
class DiskFaultSchedule:
    """All scheduled faults of one disk within one run's horizon.

    Attributes:
        disk_id: The disk this schedule belongs to.
        permanent_at_s: Instant of permanent death in simulated seconds,
            or ``None`` if the disk survives the horizon.
        outages: Transient ``(down_at_s, up_at_s)`` intervals, ascending,
            truncated at the permanent death when one precedes them.
    """

    disk_id: DiskId
    permanent_at_s: Optional[float]
    outages: Tuple[Tuple[float, float], ...]


def build_schedule(
    plan: FaultPlan, num_disks: int, horizon_s: float
) -> Tuple[DiskFaultSchedule, ...]:
    """Compute every disk's failure schedule for one run.

    Only events strictly inside ``[0, horizon_s)`` are emitted; scripted
    faults are applied after the stochastic models and win ties by
    overriding the permanent-death instant when earlier.
    """
    if num_disks <= 0:
        raise ConfigurationError(f"num_disks must be positive, got {num_disks}")
    if horizon_s < 0:
        raise ConfigurationError(f"horizon_s must be >= 0, got {horizon_s}")

    permanent_at: Dict[DiskId, float] = {}
    outages: Dict[DiskId, List[Tuple[float, float]]] = {
        disk_id: [] for disk_id in range(num_disks)
    }

    if plan.permanent is not None:
        for disk_id in range(num_disks):
            rng = _stream(plan.seed, disk_id, _PERMANENT_STREAM)
            death_s = weibull_time_s(
                rng.random(),
                plan.permanent.mttf_s,
                plan.permanent.weibull_shape,
            )
            if death_s < horizon_s:
                permanent_at[disk_id] = death_s

    if plan.transient is not None:
        for disk_id in range(num_disks):
            rng = _stream(plan.seed, disk_id, _TRANSIENT_STREAM)
            now_s = 0.0
            for _ in range(MAX_OUTAGES_PER_DISK):
                down_at_s = now_s + rng.expovariate(1.0 / plan.transient.mtbf_s)
                if down_at_s >= horizon_s:
                    break
                up_at_s = down_at_s + rng.expovariate(
                    1.0 / plan.transient.mean_repair_s
                )
                outages[disk_id].append((down_at_s, up_at_s))
                now_s = up_at_s

    for fault in plan.scripted:
        if not 0 <= fault.disk_id < num_disks:
            raise ConfigurationError(
                f"scripted fault targets unknown disk {fault.disk_id} "
                f"(have {num_disks})"
            )
        if fault.at_s >= horizon_s:
            continue
        if fault.permanent:
            current = permanent_at.get(fault.disk_id)
            if current is None or fault.at_s < current:
                permanent_at[fault.disk_id] = fault.at_s
        else:
            assert fault.repair_after_s is not None
            outages[fault.disk_id].append(
                (fault.at_s, fault.at_s + fault.repair_after_s)
            )

    schedules: List[DiskFaultSchedule] = []
    for disk_id in range(num_disks):
        death_s = permanent_at.get(disk_id)
        kept = sorted(
            (down_s, up_s)
            for down_s, up_s in outages[disk_id]
            if death_s is None or down_s < death_s
        )
        schedules.append(
            DiskFaultSchedule(
                disk_id=disk_id,
                permanent_at_s=death_s,
                outages=tuple(kept),
            )
        )
    return tuple(schedules)
