"""Runtime fault injection: planned faults become engine events.

The :class:`FaultInjector` sits between a :class:`FaultPlan` and the
simulated disks.  At install time it materialises the plan into a
deterministic schedule (:func:`repro.faults.schedule.build_schedule`)
and posts one engine event per fault; at run time those events
crash-stop disks, the disks hand back their drained requests, and the
storage layer (via the ``on_disk_failed`` callback) fails them over to
surviving replicas.  The injector also owns all availability
accounting: per-disk downtime intervals and the failure counters that
end up in :class:`repro.report.AvailabilityReport`.

The injector is only ever constructed for an *active* plan —
``FaultPlan.none()`` runs take a code path where no injector exists at
all, which is what keeps their output byte-identical to the pre-fault
code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping

from repro.errors import SimulationError
from repro.faults.health import DiskHealth
from repro.faults.plan import FaultPlan
from repro.faults.schedule import build_schedule, spin_up_stream
from repro.report import AvailabilityReport
from repro.types import DiskId, Request

if TYPE_CHECKING:  # annotations only; avoids a package import cycle
    from repro.disk.drive import SimulatedDisk
    from repro.sim.engine import SimulationEngine

#: Storage-layer callback: a disk just became unavailable; the second
#: argument is every request drained from its queue (possibly empty).
DiskFailedCallback = Callable[[DiskId, List[Request]], None]


class _FaultEvent:
    """Engine callback firing one scheduled fault action on one disk."""

    __slots__ = ("_action", "_disk_id")

    def __init__(self, action: Callable[[DiskId], None], disk_id: DiskId):
        self._action = action
        self._disk_id = disk_id

    def __call__(self) -> None:
        self._action(self._disk_id)

    def __repr__(self) -> str:
        name = getattr(self._action, "__name__", repr(self._action))
        return f"<fault {name.lstrip('_')} disk={self._disk_id}>"


class FaultInjector:
    """Drives one run's fault plan against the simulated disks.

    Lifecycle: construct (arms each disk's spin-up fault hook), then
    :meth:`install` once the run horizon is known, run the engine, then
    :meth:`close` and :meth:`availability_report`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        engine: "SimulationEngine",
        disks: Mapping[DiskId, "SimulatedDisk"],
        on_disk_failed: DiskFailedCallback,
    ) -> None:
        if not plan.active:
            raise SimulationError("FaultInjector created with an inactive plan")
        self._plan = plan
        self._engine = engine
        self._disks: Dict[DiskId, "SimulatedDisk"] = dict(disks)
        self._on_disk_failed = on_disk_failed
        #: Open unavailability intervals: disk -> instant it went down.
        self._down_since: Dict[DiskId, float] = {}
        #: Closed unavailability totals per disk, in seconds.
        self._downtime_s: Dict[DiskId, float] = {}
        #: Nesting depth of overlapping scripted/stochastic outages.
        self._outage_depth: Dict[DiskId, int] = {}
        self._disk_failures = 0
        self._transient_outages = 0
        self._spin_up_failures = 0
        self._installed = False
        self._closed = False
        for disk_id, disk in self._disks.items():
            disk.enable_fault_injection(
                spin_up=plan.spin_up,
                spin_up_rng=(
                    spin_up_stream(plan, disk_id)
                    if plan.spin_up is not None
                    else None
                ),
                on_spin_up_failure=self._note_spin_up_failure,
                on_fault_death=self._on_spin_up_death,
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def install(self, horizon_s: float) -> None:
        """Post every planned fault within ``[0, horizon_s)`` as events."""
        if self._installed:
            raise SimulationError("fault schedule installed twice")
        self._installed = True
        for sched in build_schedule(self._plan, len(self._disks), horizon_s):
            if sched.permanent_at_s is not None:
                self._engine.schedule(
                    sched.permanent_at_s,
                    _FaultEvent(self._fail_permanently, sched.disk_id),
                )
            for down_at_s, up_at_s in sched.outages:
                self._engine.schedule(
                    down_at_s, _FaultEvent(self._start_outage, sched.disk_id)
                )
                self._engine.schedule(
                    up_at_s, _FaultEvent(self._end_outage, sched.disk_id)
                )

    def close(self, end_s: float) -> None:
        """Close still-open downtime intervals at simulation end."""
        if self._closed:
            raise SimulationError("fault injector closed twice")
        self._closed = True
        for disk_id, down_since_s in self._down_since.items():
            self._downtime_s[disk_id] = self._downtime_s.get(
                disk_id, 0.0
            ) + max(0.0, end_s - down_since_s)
        self._down_since.clear()

    def availability_report(
        self,
        duration_s: float,
        requests_lost: int,
        requests_redispatched: int,
        failover_retries: int,
    ) -> AvailabilityReport:
        """Bundle the accounting into an :class:`AvailabilityReport`."""
        if not self._closed:
            raise SimulationError("availability report requested before close()")
        downtime_s = {
            disk_id: seconds
            for disk_id, seconds in sorted(self._downtime_s.items())
            if seconds > 0
        }
        return AvailabilityReport(
            requests_lost=requests_lost,
            requests_redispatched=requests_redispatched,
            failover_retries=failover_retries,
            spin_up_failures=self._spin_up_failures,
            disk_failures=self._disk_failures,
            transient_outages=self._transient_outages,
            downtime_s=downtime_s,
            disk_seconds=len(self._disks) * duration_s,
        )

    # ------------------------------------------------------------------
    # fault actions (engine events and drive callbacks)
    # ------------------------------------------------------------------

    def _fail_permanently(self, disk_id: DiskId) -> None:
        disk = self._disks[disk_id]
        if disk.health is DiskHealth.FAILED:
            return  # e.g. spin-up retries already bricked it
        was_down = disk.health is DiskHealth.DOWN
        drained = disk.fail(permanent=True)
        self._disk_failures += 1
        if not was_down:
            # A DOWN disk keeps its open interval; it simply never closes.
            self._down_since[disk_id] = self._engine.now
        self._on_disk_failed(disk_id, drained)

    def _start_outage(self, disk_id: DiskId) -> None:
        disk = self._disks[disk_id]
        if disk.health is DiskHealth.FAILED:
            return
        depth = self._outage_depth.get(disk_id, 0)
        self._outage_depth[disk_id] = depth + 1
        if depth > 0:
            return  # overlapping outages collapse into one interval
        drained = disk.fail(permanent=False)
        self._transient_outages += 1
        self._down_since[disk_id] = self._engine.now
        self._on_disk_failed(disk_id, drained)

    def _end_outage(self, disk_id: DiskId) -> None:
        disk = self._disks[disk_id]
        depth = self._outage_depth.get(disk_id, 0)
        if depth == 0:
            return  # outage start was swallowed by a permanent death
        self._outage_depth[disk_id] = depth - 1
        if depth > 1 or disk.health is not DiskHealth.DOWN:
            return  # still nested, or permanently failed meanwhile
        disk.repair()
        down_since_s = self._down_since.pop(disk_id)
        self._downtime_s[disk_id] = self._downtime_s.get(disk_id, 0.0) + (
            self._engine.now - down_since_s
        )

    def _note_spin_up_failure(self, disk_id: DiskId) -> None:
        del disk_id  # counted fleet-wide
        self._spin_up_failures += 1

    def _on_spin_up_death(self, disk_id: DiskId, drained: List[Request]) -> None:
        """Drive callback: consecutive spin-up failures bricked the disk."""
        self._disk_failures += 1
        self._down_since.setdefault(disk_id, self._engine.now)
        self._on_disk_failed(disk_id, drained)
