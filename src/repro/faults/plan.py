"""Fault plans: the seeded, declarative description of what breaks.

A :class:`FaultPlan` is to failures what
:class:`~repro.sim.config.SimulationConfig` is to the disk model: a
frozen value object naming *everything* that determines the failure
behaviour of a run and nothing else.  The same plan and the same seed
always produce the same failure schedule (see
:mod:`repro.faults.schedule`), across serial, process-pool and
cache-replayed executions.

Three stochastic failure models (each optional, freely combined):

* :class:`PermanentFaults` — disk death with Weibull-distributed time to
  failure (shape 1.0 = the classic exponential/constant-hazard model).
* :class:`TransientFaults` — an alternating-renewal outage process:
  exponentially distributed up-times and repair times (controller
  resets, cable pulls, firmware hangs).
* :class:`SpinUpFaults` — each spin-up attempt fails with fixed
  probability; after a bounded number of consecutive failed retries the
  disk is declared permanently dead (a disk that will not spin is a
  brick).

Plus :class:`ScriptedFault` entries for deterministic fault drills:
"disk 3 dies at t=120 s" — the tool for regression tests and incident
reproduction.

``FaultPlan.none()`` is the zero overlay: no injector is created, no
events are scheduled, no RNG stream is consumed, and every simulation
result is byte-identical to a run without any plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import DiskId


@dataclass(frozen=True)
class PermanentFaults:
    """Weibull-distributed permanent disk death.

    Attributes:
        mttf_s: Mean time to failure in simulated seconds.
        weibull_shape: Weibull shape parameter ``k``; 1.0 gives the
            exponential distribution (constant hazard), > 1 models
            wear-out (hazard grows with age).
    """

    mttf_s: float
    weibull_shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mttf_s <= 0:
            raise ConfigurationError(f"mttf_s must be > 0, got {self.mttf_s}")
        if self.weibull_shape <= 0:
            raise ConfigurationError(
                f"weibull_shape must be > 0, got {self.weibull_shape}"
            )


@dataclass(frozen=True)
class TransientFaults:
    """Alternating-renewal transient outages (down, then repaired).

    Attributes:
        mtbf_s: Mean up-time between outages in simulated seconds
            (exponentially distributed).
        mean_repair_s: Mean outage duration in simulated seconds
            (exponentially distributed).
    """

    mtbf_s: float
    mean_repair_s: float

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ConfigurationError(f"mtbf_s must be > 0, got {self.mtbf_s}")
        if self.mean_repair_s <= 0:
            raise ConfigurationError(
                f"mean_repair_s must be > 0, got {self.mean_repair_s}"
            )


@dataclass(frozen=True)
class SpinUpFaults:
    """Probabilistic spin-up failure with bounded retry.

    Attributes:
        probability: Per-attempt failure probability in [0, 1].
        max_retries: Consecutive failed attempts tolerated; when the
            streak *exceeds* this bound the disk is declared permanently
            failed (with ``max_retries=2``, the third consecutive failure
            kills the disk).
    """

    probability: float
    max_retries: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


@dataclass(frozen=True)
class ScriptedFault:
    """One hand-scheduled fault: deterministic drills and regressions.

    Attributes:
        disk_id: The disk that fails.
        at_s: Failure instant in simulated seconds.
        repair_after_s: Outage duration in seconds for a transient fault;
            ``None`` makes the failure permanent.
    """

    disk_id: DiskId
    at_s: float
    repair_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError(f"at_s must be >= 0, got {self.at_s}")
        if self.repair_after_s is not None and self.repair_after_s <= 0:
            raise ConfigurationError(
                f"repair_after_s must be > 0, got {self.repair_after_s}"
            )

    @property
    def permanent(self) -> bool:
        """True when the disk never recovers from this fault."""
        return self.repair_after_s is None


@dataclass(frozen=True)
class FaultPlan:
    """Everything that determines the failure behaviour of one run.

    Attributes:
        seed: Fault-stream RNG seed.  Deliberately separate from the
            simulation seed so fault draws never perturb service-time or
            placement streams.
        permanent: Optional permanent-death model.
        transient: Optional transient-outage model.
        spin_up: Optional spin-up failure model.
        scripted: Hand-scheduled faults, applied on top of the models.
    """

    seed: int = 0
    permanent: Optional[PermanentFaults] = None
    transient: Optional[TransientFaults] = None
    spin_up: Optional[SpinUpFaults] = None
    scripted: Tuple[ScriptedFault, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit no-fault plan: a byte-exact zero overlay."""
        return cls()

    @classmethod
    def canonical(cls, failure_rate_per_s: float, seed: int = 0) -> "FaultPlan":
        """The fault-sweep parameterisation: one rate knob.

        Permanent exponential failures at ``failure_rate_per_s`` per disk
        per simulated second (MTTF = 1/rate).  Kept permanent-only so the
        sweep's availability curve is provably monotone in the rate under
        a shared seed (see :mod:`repro.faults.schedule`).
        """
        if failure_rate_per_s <= 0:
            raise ConfigurationError(
                f"failure_rate_per_s must be > 0, got {failure_rate_per_s}"
            )
        return cls(
            seed=seed, permanent=PermanentFaults(mttf_s=1.0 / failure_rate_per_s)
        )

    @property
    def active(self) -> bool:
        """True when any fault source is configured (injector needed)."""
        return (
            self.permanent is not None
            or self.transient is not None
            or self.spin_up is not None
            or bool(self.scripted)
        )

    def key_payload(self) -> Dict[str, Any]:
        """The plan as a plain dict (cache-key / provenance material)."""
        return {
            "seed": self.seed,
            "permanent": None
            if self.permanent is None
            else {
                "mttf_s": self.permanent.mttf_s,
                "weibull_shape": self.permanent.weibull_shape,
            },
            "transient": None
            if self.transient is None
            else {
                "mtbf_s": self.transient.mtbf_s,
                "mean_repair_s": self.transient.mean_repair_s,
            },
            "spin_up": None
            if self.spin_up is None
            else {
                "probability": self.spin_up.probability,
                "max_retries": self.spin_up.max_retries,
            },
            "scripted": [
                {
                    "disk_id": fault.disk_id,
                    "at_s": fault.at_s,
                    "repair_after_s": fault.repair_after_s,
                }
                for fault in self.scripted
            ],
        }
