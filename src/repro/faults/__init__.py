"""Deterministic, seeded fault injection for the storage simulation.

The paper evaluates its schedulers on a fleet where every disk always
works; this package asks the follow-up question every operator asks:
*what do those schedulers cost you when disks fail?*  It layers three
seeded failure models — permanent death (Weibull/exponential MTTF),
transient outages (alternating renewal with exponential repair) and
probabilistic spin-up failure with bounded retry — on top of the
existing event engine, plus scripted faults for deterministic drills.

Design invariants:

* **Zero overlay.** Without an active plan no injector exists, no RNG
  stream is consumed and no report field is emitted: serialised results
  are byte-identical to the pre-fault code.
* **Schedule determinism.** Failure schedules are precomputed from the
  plan seed alone (:mod:`repro.faults.schedule`), so the same plan
  yields the same faults across serial, process-pool and cache-replayed
  runs, and fault draws never perturb service-time streams.
* **Health is orthogonal to power.** A failed disk is ``FAILED`` on the
  :class:`DiskHealth` axis while its power ledger keeps the ordinary
  five states (:mod:`repro.faults.health` explains why).

Entry points: embed a :class:`FaultPlan` in a
:class:`~repro.sim.config.SimulationConfig`, or sweep failure rates via
the ``fault_sweep`` bench.
"""

from __future__ import annotations

from repro.faults.health import DiskHealth
from repro.faults.injector import DiskFailedCallback, FaultInjector
from repro.faults.plan import (
    FaultPlan,
    PermanentFaults,
    ScriptedFault,
    SpinUpFaults,
    TransientFaults,
)
from repro.faults.schedule import (
    MAX_OUTAGES_PER_DISK,
    DiskFaultSchedule,
    build_schedule,
    spin_up_stream,
    weibull_time_s,
)

__all__ = [
    "MAX_OUTAGES_PER_DISK",
    "DiskFailedCallback",
    "DiskFaultSchedule",
    "DiskHealth",
    "FaultInjector",
    "FaultPlan",
    "PermanentFaults",
    "ScriptedFault",
    "SpinUpFaults",
    "TransientFaults",
    "build_schedule",
    "spin_up_stream",
    "weibull_time_s",
]
