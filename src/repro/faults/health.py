"""Disk health: the availability axis, orthogonal to the power state.

The paper's model assumes every disk always works; real replicated
storage keeps replicas around precisely because disks do not.  Health is
deliberately *not* folded into
:class:`~repro.power.states.DiskPowerState` — the power ledger and its
serialised form stay byte-identical when fault injection is disabled,
and a transiently-down disk still has a well-defined (stopped) power
state underneath.
"""

from __future__ import annotations

from enum import Enum


class DiskHealth(Enum):
    """Availability of a simulated disk, independent of its power state."""

    #: Fully operational: may service requests (subject to power state).
    HEALTHY = "healthy"
    #: Transient outage in progress: unavailable now, will be repaired.
    DOWN = "down"
    #: Permanent failure: the disk never comes back.
    FAILED = "failed"

    @property
    def is_available(self) -> bool:
        """True when the disk can accept and service requests."""
        return self is DiskHealth.HEALTHY

    @property
    def is_terminal(self) -> bool:
        """True when the disk is permanently dead (no repair coming)."""
        return self is DiskHealth.FAILED
