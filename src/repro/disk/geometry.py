"""Mechanical disk geometry used by the analytic service-time model.

This is the Disksim substitute's physical layer: enough geometry (RPM,
cylinder count, transfer rate, seek curve) to produce millisecond-scale
service times with realistic seek/rotate/transfer structure. The default
matches the Seagate Cheetah 15K.5 the paper simulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DiskGeometry:
    """Mechanical parameters of one drive.

    Attributes:
        name: Identifier used in reports.
        rpm: Spindle speed; rotational latency averages half a revolution.
        cylinders: Number of cylinders; seek distance is measured in
            cylinders.
        capacity_bytes: Addressable capacity; logical block addresses are
            mapped linearly onto cylinders.
        max_transfer_rate: Sustained media transfer rate in bytes/second.
        track_to_track_seek: Seconds for a single-cylinder seek.
        full_stroke_seek: Seconds for a full-stroke seek.
        controller_overhead: Fixed per-request controller latency in seconds.
    """

    name: str = "cheetah-15k5"
    rpm: float = 15000.0
    cylinders: int = 50_000
    capacity_bytes: int = 300 * 10**9
    max_transfer_rate: float = 125 * 10**6
    track_to_track_seek: float = 0.0002
    full_stroke_seek: float = 0.0038
    controller_overhead: float = 0.0001

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ConfigurationError("rpm must be positive")
        if self.cylinders <= 0:
            raise ConfigurationError("cylinders must be positive")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.max_transfer_rate <= 0:
            raise ConfigurationError("transfer rate must be positive")
        if self.full_stroke_seek < self.track_to_track_seek:
            raise ConfigurationError(
                "full-stroke seek cannot be faster than track-to-track seek"
            )

    @property
    def rotation_time(self) -> float:
        """Seconds per full revolution."""
        return 60.0 / self.rpm

    @property
    def average_rotational_latency(self) -> float:
        """Expected rotational latency (half a revolution)."""
        return self.rotation_time / 2.0

    def cylinder_of(self, lba: int) -> int:
        """Map a byte offset / LBA onto a cylinder (linear layout)."""
        if lba < 0:
            raise ConfigurationError("lba must be >= 0")
        bytes_per_cylinder = self.capacity_bytes / self.cylinders
        cylinder = int(lba / bytes_per_cylinder)
        return min(cylinder, self.cylinders - 1)

    def seek_time(self, distance: int) -> float:
        """Seek time in seconds for a cylinder distance.

        Uses the standard concave seek curve: a square-root ramp between the
        track-to-track and full-stroke endpoints, which matches measured
        drives far better than a linear model.
        """
        if distance < 0:
            raise ConfigurationError("seek distance must be >= 0")
        if distance == 0:
            return 0.0
        if distance >= self.cylinders:
            return self.full_stroke_seek
        span = self.full_stroke_seek - self.track_to_track_seek
        fraction = math.sqrt(distance / (self.cylinders - 1))
        return self.track_to_track_seek + span * fraction

    def transfer_time(self, size_bytes: int) -> float:
        """Media transfer time in seconds for a payload of ``size_bytes``."""
        if size_bytes < 0:
            raise ConfigurationError("size must be >= 0")
        return size_bytes / self.max_transfer_rate


#: Geometry the paper's Disksim configuration modelled.
CHEETAH_15K5_GEOMETRY = DiskGeometry()

#: Capacity-oriented 7200 RPM geometry matching the Barracuda power profile.
BARRACUDA_GEOMETRY = DiskGeometry(
    name="barracuda-7200",
    rpm=7200.0,
    cylinders=60_000,
    capacity_bytes=750 * 10**9,
    max_transfer_rate=78 * 10**6,
    track_to_track_seek=0.0008,
    full_stroke_seek=0.0210,
    controller_overhead=0.0002,
)
