"""Disk substrate: geometry, service-time model, drive state machine."""

from repro.disk.drive import SimulatedDisk
from repro.disk.geometry import (
    BARRACUDA_GEOMETRY,
    CHEETAH_15K5_GEOMETRY,
    DiskGeometry,
)
from repro.disk.service import (
    AnalyticServiceModel,
    ConstantServiceModel,
    PositionAwareServiceModel,
    ServiceTimeModel,
)
from repro.disk.stats import DiskStats

__all__ = [
    "AnalyticServiceModel",
    "BARRACUDA_GEOMETRY",
    "CHEETAH_15K5_GEOMETRY",
    "ConstantServiceModel",
    "DiskGeometry",
    "DiskStats",
    "PositionAwareServiceModel",
    "ServiceTimeModel",
    "SimulatedDisk",
]
