"""Request service-time models (the Disksim substitute's timing layer).

The paper couples OMNeT++ with Disksim purely to charge each request a
realistic millisecond-scale I/O time. :class:`AnalyticServiceModel`
reproduces that role with a seek + rotational-latency + transfer + overhead
decomposition over a :class:`~repro.disk.geometry.DiskGeometry`;
:class:`ConstantServiceModel` supports the paper's *analysis* assumption
that I/O time is negligible (Section 2.1), which the offline model and unit
examples use.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.disk.geometry import CHEETAH_15K5_GEOMETRY, DiskGeometry
from repro.errors import ConfigurationError
from repro.types import Request


class ServiceTimeModel(ABC):
    """Computes how long a disk is ACTIVE servicing one request."""

    @abstractmethod
    def service_time(self, request: Request, rng: random.Random) -> float:
        """Seconds of ACTIVE time for ``request`` (must be >= 0)."""


@dataclass(frozen=True)
class ConstantServiceModel(ServiceTimeModel):
    """Fixed service time per request (0 reproduces the paper's analysis)."""

    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError("service time must be >= 0")

    def service_time(self, request: Request, rng: random.Random) -> float:
        return self.seconds


class AnalyticServiceModel(ServiceTimeModel):
    """Seek + rotate + transfer + controller-overhead service model.

    Per-disk head position is *not* tracked here (the model is shared by all
    disks); instead the seek distance is drawn uniformly over the cylinder
    span, which matches the random-placement workloads the paper replays.
    Rotational latency is drawn uniformly over one revolution. Both draws
    come from the caller-supplied seeded RNG so simulations stay
    deterministic.
    """

    def __init__(self, geometry: DiskGeometry = CHEETAH_15K5_GEOMETRY):
        self._geometry = geometry
        # Inlined randrange: CPython's Random.randrange(n) reduces to a
        # getrandbits(k) rejection loop (_randbelow_with_getrandbits).
        # Drawing through getrandbits directly consumes the identical
        # bit stream — same draws, same rejections — at roughly half the
        # per-call cost, which matters on the one-draw-per-request path.
        self._cylinders = geometry.cylinders
        self._cylinder_bits = geometry.cylinders.bit_length()
        # The rest of the decomposition is fixed arithmetic over the
        # geometry; resolve every term once so service_time() is pure
        # local-variable math. Each cached value is computed by the same
        # expression the DiskGeometry methods use, so the per-request
        # results are bit-identical to calling them.
        self._seek_denominator = geometry.cylinders - 1
        self._track_to_track_seek = geometry.track_to_track_seek
        self._seek_span = geometry.full_stroke_seek - geometry.track_to_track_seek
        self._full_stroke_seek = geometry.full_stroke_seek
        self._rotation_time = geometry.rotation_time
        self._max_transfer_rate = geometry.max_transfer_rate
        self._controller_overhead = geometry.controller_overhead

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    def service_time(self, request: Request, rng: random.Random) -> float:
        cylinders = self._cylinders
        bits = self._cylinder_bits
        seek_distance = rng.getrandbits(bits)
        while seek_distance >= cylinders:
            seek_distance = rng.getrandbits(bits)
        # Inlined DiskGeometry.seek_time / transfer_time (the rejection
        # loop already guarantees 0 <= distance < cylinders, so only the
        # zero-distance branch of the seek curve remains).
        if seek_distance:
            seek = self._track_to_track_seek + self._seek_span * math.sqrt(
                seek_distance / self._seek_denominator
            )
        else:
            seek = 0.0
        rotation = rng.random() * self._rotation_time
        transfer = request.size_bytes / self._max_transfer_rate
        return seek + rotation + transfer + self._controller_overhead

    def expected_service_time(self, size_bytes: int) -> float:
        """Closed-form expected service seconds, handy for utilisation
        estimates."""
        geometry = self._geometry
        # E[sqrt(U)] = 2/3 for U uniform on [0, 1].
        expected_seek = geometry.track_to_track_seek + (
            geometry.full_stroke_seek - geometry.track_to_track_seek
        ) * (2.0 / 3.0)
        return (
            expected_seek
            + geometry.average_rotational_latency
            + geometry.transfer_time(size_bytes)
            + geometry.controller_overhead
        )


class PositionAwareServiceModel(ServiceTimeModel):
    """Seek model with per-disk head-position tracking.

    Unlike :class:`AnalyticServiceModel` (which draws seek distances
    uniformly), this model remembers where each request left the head and
    charges the seek from there, so workloads with spatial locality —
    consecutive accesses to nearby data — get realistically cheaper
    seeks, the main fidelity Disksim adds over an averaged model.

    Data is laid onto cylinders deterministically by hashing the data id,
    so the mapping is stable across runs. The model is stateful *per
    disk*: construct one instance per disk (e.g. through
    ``SimulationConfig(service_model_factory=PositionAwareServiceModel.factory())``).
    """

    def __init__(self, geometry: DiskGeometry = CHEETAH_15K5_GEOMETRY):
        self._geometry = geometry
        self._head_cylinder = 0

    @property
    def geometry(self) -> DiskGeometry:
        """The mechanical model used."""
        return self._geometry

    @classmethod
    def factory(
        cls, geometry: DiskGeometry = CHEETAH_15K5_GEOMETRY
    ) -> Callable[[], "PositionAwareServiceModel"]:
        """A zero-argument constructor for per-disk instantiation."""
        return lambda: cls(geometry)

    def cylinder_of_data(self, data_id: int) -> int:
        """Deterministic data -> cylinder layout (hash-spread)."""
        spread = (data_id * 2654435761) % (2**32)
        return spread % self._geometry.cylinders

    def service_time(self, request: Request, rng: random.Random) -> float:
        geometry = self._geometry
        target = self.cylinder_of_data(request.data_id)
        distance = abs(target - self._head_cylinder)
        self._head_cylinder = target
        seek = geometry.seek_time(distance)
        rotation = rng.random() * geometry.rotation_time
        transfer = geometry.transfer_time(request.size_bytes)
        return seek + rotation + transfer + geometry.controller_overhead
