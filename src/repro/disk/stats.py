"""Per-disk statistics: state-time breakdown, energy, spin counts.

:class:`DiskStats` is a pure accumulator — the drive notifies it of every
state transition and it integrates time and energy per state. The paper's
Fig. 9 / Fig. 17 per-disk breakdowns come straight out of
:meth:`DiskStats.state_fractions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.power.profile import DiskPowerProfile
from repro.power.states import DiskPowerState


@dataclass(slots=True)
class DiskStats:
    """Time/energy ledger of one simulated disk.

    Attributes:
        profile: Power profile used to convert state time into energy.
        state_time: Seconds accumulated per power state.
        spin_ups: Completed spin-up transitions.
        spin_downs: Completed spin-down transitions.
        requests_serviced: Requests whose I/O completed on this disk.
        transitions: Optional ``(time, state)`` log (see
            :meth:`enable_transition_log`); feeds the state-period
            analyses in :mod:`repro.analysis.idleness`.
    """

    profile: DiskPowerProfile
    state_time: Dict[DiskPowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in DiskPowerState}
    )
    spin_ups: int = 0
    spin_downs: int = 0
    requests_serviced: int = 0
    transitions: Optional[List[Tuple[float, DiskPowerState]]] = None
    _current_state: DiskPowerState = DiskPowerState.STANDBY
    _state_since: float = 0.0
    _closed: bool = False

    def enable_transition_log(self) -> None:
        """Start recording every state transition as ``(time, state)``."""
        if self.transitions is None:
            self.transitions = [(self._state_since, self._current_state)]

    def begin(self, state: DiskPowerState, now: float) -> None:
        """Initialise the ledger at simulation start."""
        self._current_state = state
        self._state_since = now
        if self.transitions is not None:
            self.transitions = [(now, state)]

    def transition(self, new_state: DiskPowerState, now: float) -> None:
        """Close the current state interval and open a new one."""
        since = self._state_since
        if self._closed:
            raise SimulationError("stats already finalised")
        if now < since:
            raise SimulationError(f"time went backwards: {now} < {since}")
        self.state_time[self._current_state] += now - since
        if self.transitions is not None:
            self.transitions.append((now, new_state))
        if new_state is DiskPowerState.SPIN_UP:
            self.spin_ups += 1
        elif new_state is DiskPowerState.SPIN_DOWN:
            self.spin_downs += 1
        self._current_state = new_state
        self._state_since = now

    def note_request_serviced(self) -> None:
        """Count one completed I/O on this disk."""
        self.requests_serviced += 1

    def mark_closed(self) -> None:
        """Close a *synthetic* ledger whose times were credited directly.

        The offline evaluator fills ``state_time`` analytically instead of
        via :meth:`transition`; this seals the ledger without crediting
        any additional interval.
        """
        self._closed = True

    def finalize(self, now: float) -> None:
        """Close the open interval at simulation end (idempotent)."""
        if self._closed:
            return
        if now < self._state_since:
            raise SimulationError(
                f"time went backwards: {now} < {self._state_since}"
            )
        self.state_time[self._current_state] += now - self._state_since
        self._state_since = now
        self._closed = True

    @property
    def current_state(self) -> DiskPowerState:
        return self._current_state

    @property
    def total_time(self) -> float:
        """Seconds accounted across all power states."""
        return sum(self.state_time.values())

    @property
    def spin_operations(self) -> int:
        """Total spin transitions (the paper's Fig. 7 metric counts both)."""
        return self.spin_ups + self.spin_downs

    @property
    def energy(self) -> float:
        """Joules consumed: per-state power x time.

        Transition energy is captured through the spin-up/down state powers
        (``Eup = Pup * Tup``), so no separate lump charge is needed; for
        profiles with zero transition *time* but non-zero energy the drive
        adds the lump via :meth:`add_transition_energy`.
        """
        return (
            sum(
                self.profile.power(state) * seconds
                for state, seconds in self.state_time.items()
            )
            + self._lump_energy
        )

    def energy_at(self, now: float) -> float:
        """Joules up to ``now``, the open state interval included.

        The :attr:`energy` property only integrates *closed* intervals;
        a live reader (the serving layer's energy gauge) also wants the
        time accrued in the current state. On a finalised ledger this is
        exactly :attr:`energy`.
        """
        if self._closed or now <= self._state_since:
            return self.energy
        open_interval = self.profile.power(self._current_state) * (
            now - self._state_since
        )
        return self.energy + open_interval

    _lump_energy: float = 0.0

    @property
    def lump_transition_energy(self) -> float:
        """Joules charged via :meth:`add_transition_energy` (serialisers
        need it to rebuild an exact ledger)."""
        return self._lump_energy

    def add_transition_energy(self, joules: float) -> None:
        """Charge transition energy not representable as power x time."""
        if joules < 0:
            raise SimulationError("transition energy must be >= 0")
        self._lump_energy += joules

    def state_fractions(self) -> Dict[DiskPowerState, float]:
        """Fraction of total time per state (zeros if no time elapsed)."""
        total = self.total_time
        if total == 0:
            return {state: 0.0 for state in DiskPowerState}
        return {state: seconds / total for state, seconds in self.state_time.items()}

    def standby_fraction(self) -> float:
        """Fraction of total time spent in STANDBY."""
        return self.state_fractions()[DiskPowerState.STANDBY]
