"""Simulated disk drive: request queue + power state machine + energy ledger.

One :class:`SimulatedDisk` combines:

* a FIFO request queue serviced one request at a time (Disksim's role),
* the five-state power machine of the paper's disk model
  (standby / spin-up / idle / active / spin-down),
* a :class:`~repro.power.policy.PowerPolicy` deciding when an idle disk
  spins down (2CPM in the paper's experiments), and
* a :class:`~repro.disk.stats.DiskStats` ledger integrating time and energy.

Semantics match Section 2 of the paper:

* A request arriving at a STANDBY disk triggers a spin-up; the request (and
  any that pile up behind it) waits ``Tup`` seconds — the spin-up penalty.
* A request arriving mid-SPIN_DOWN waits for the spin-down to complete and
  then the full spin-up (the transition is not abortable).
* When the queue drains, the disk goes IDLE and arms the policy's idleness
  timer; any arrival cancels it. When the timer fires the disk spins down.
"""

from __future__ import annotations

import random
from array import array
from heapq import heappush
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.disk.service import ConstantServiceModel, ServiceTimeModel
from repro.disk.stats import DiskStats
from repro.errors import ConfigurationError, ReplicaUnavailableError, SimulationError
from repro.faults.health import DiskHealth
from repro.power.policy import PowerPolicy, TwoCompetitivePolicy
from repro.power.profile import DiskPowerProfile
from repro.power.states import DiskPowerState
from repro.types import DiskId, Request

if TYPE_CHECKING:  # used only in annotations; avoids a package import cycle
    from repro.core.fleet import FleetCostState
    from repro.faults.plan import SpinUpFaults
    from repro.sim.engine import EventCallback, ReusableTimer, SimulationEngine

CompletionCallback = Callable[[Request, DiskId, float], None]
FaultDeathCallback = Callable[[DiskId, List[Request]], None]

#: Placeholder for the fleet column slots while no fleet is attached —
#: keeps them non-Optional so the hot-path hooks skip None-narrowing.
_NO_FLEET_COLUMN: "array[float]" = array("d")

# Hot-path aliases: one global load instead of an enum attribute lookup
# per state test in submit / completion (the two per-request functions).
_HEALTHY = DiskHealth.HEALTHY
_ACTIVE = DiskPowerState.ACTIVE
_IDLE = DiskPowerState.IDLE
_STANDBY = DiskPowerState.STANDBY


class SimulatedDisk:
    """One disk inside the event-driven storage simulation."""

    __slots__ = (
        "disk_id",
        "_engine",
        "profile",
        "_policy",
        "_service_model",
        "_draw_service",
        "_rng",
        "_on_complete",
        "_state",
        "stats",
        "_queue",
        "_in_service",
        "_idle_timer",
        "_service_timer",
        "_idle_timeout_s",
        "last_request_time",
        "_idle_power_w",
        "_standby_marginal_j",
        "_marginal_const_by_state",
        "_marginal_const",
        "_f_live",
        "_f_pi",
        "_f_const",
        "_f_tlast",
        "_f_queue",
        "_health",
        "_fault_capable",
        "_fault_epoch",
        "_spin_up_faults",
        "_spin_up_rng",
        "_spin_up_streak",
        "_on_spin_up_failure",
        "_on_fault_death",
    )

    def __init__(
        self,
        disk_id: DiskId,
        engine: SimulationEngine,
        profile: DiskPowerProfile,
        policy: Optional[PowerPolicy] = None,
        service_model: Optional[ServiceTimeModel] = None,
        rng: Optional[random.Random] = None,
        on_complete: Optional[CompletionCallback] = None,
        initial_state: DiskPowerState = DiskPowerState.STANDBY,
        record_transitions: bool = False,
    ):
        if initial_state not in (DiskPowerState.STANDBY, DiskPowerState.IDLE):
            raise SimulationError(
                "disks must start in STANDBY or IDLE, got " + initial_state.value
            )
        self.disk_id = disk_id
        self._engine = engine
        self.profile = profile
        self._policy = policy or TwoCompetitivePolicy()
        self._service_model = service_model or ConstantServiceModel(0.0)
        # Bound-method cache: the per-request draw skips two attribute
        # hops (the model never changes after construction).
        self._draw_service = self._service_model.service_time
        self._rng = rng or random.Random(disk_id)
        self._on_complete = on_complete
        self._state = initial_state
        self.stats = DiskStats(profile)
        if record_transitions:
            self.stats.enable_transition_log()
        self.stats.begin(initial_state, engine.now)
        self._queue: Deque[Request] = deque()
        self._in_service: Optional[Request] = None
        # The idleness timer is a single reusable engine timer: the 2CPM
        # cancel-on-arrival / re-arm-on-drain churn then costs O(1) field
        # writes instead of one dead heap entry + allocation per arrival.
        self._idle_timer: Optional[ReusableTimer] = None
        # Service completions on no-fault runs reuse one timer as well —
        # a disk services one request at a time, so it is always free.
        self._service_timer: Optional[ReusableTimer] = None
        # The policy's timeout depends only on (policy, profile), both
        # fixed at construction — resolve it once instead of per drain.
        self._idle_timeout_s = self._policy.idle_timeout(profile)
        #: ``Tlast`` of Eq. 5 — when this disk last *received* a request.
        self.last_request_time: Optional[float] = None
        # Eq. 5 memo: the marginal energy is a per-state constant except
        # in IDLE, where it grows with the idle extension. Precompute the
        # profile-derived constants once and refresh the per-state value
        # on every transition; marginal_energy() then reads a field.
        self._idle_power_w = profile.idle_power
        self._standby_marginal_j = (
            profile.transition_energy + profile.breakeven_time * profile.idle_power
        )
        self._marginal_const_by_state: Dict[DiskPowerState, Optional[float]] = {
            DiskPowerState.ACTIVE: 0.0,
            DiskPowerState.SPIN_UP: 0.0,
            DiskPowerState.STANDBY: self._standby_marginal_j,
            DiskPowerState.SPIN_DOWN: self._standby_marginal_j,
            DiskPowerState.IDLE: None,  # dynamic: idle extension
        }
        self._marginal_const = self._marginal_const_by_state[initial_state]
        # Columnar fleet mirror (repro.core.fleet): direct references to
        # the fleet's columns, armed by attach_fleet(). On the python
        # kernel _f_live stays False and each hook costs one flag test.
        self._f_live = False
        self._f_pi: "array[float]" = _NO_FLEET_COLUMN
        self._f_const: "array[float]" = _NO_FLEET_COLUMN
        self._f_tlast: "array[float]" = _NO_FLEET_COLUMN
        self._f_queue: "array[float]" = _NO_FLEET_COLUMN
        # Fault-injection hooks; inert until enable_fault_injection().
        self._health = DiskHealth.HEALTHY
        self._fault_capable = False
        self._fault_epoch = 0
        self._spin_up_faults: Optional[SpinUpFaults] = None
        self._spin_up_rng: Optional[random.Random] = None
        self._spin_up_streak = 0
        self._on_spin_up_failure: Optional[Callable[[DiskId], None]] = None
        self._on_fault_death: Optional[FaultDeathCallback] = None
        if initial_state is DiskPowerState.IDLE:
            self._arm_idle_timer()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    @property
    def state(self) -> DiskPowerState:
        return self._state

    @property
    def queue_length(self) -> int:
        """``P(dk)`` of Eq. 7: queued requests plus the one in service."""
        return len(self._queue) + (1 if self._in_service is not None else 0)

    def marginal_energy(self, now: float) -> float:
        """Eq. 5 ``E(dk)`` in joules, from the per-state memo.

        Bit-identical to :func:`repro.core.cost.energy_cost` on this
        disk's live state — the constant branches are precomputed from
        the same profile expressions, and the IDLE branch evaluates the
        same arithmetic on demand.
        """
        const = self._marginal_const
        if const is not None:
            return const
        # IDLE: charge the idle-time extension (Tnow - Tlast) * PI.
        t_last = self.last_request_time
        if t_last is None:
            return 0.0
        extension = now - t_last
        if extension < 0:
            raise ConfigurationError(
                f"last_request_time {t_last} is in the future of {now}"
            )
        return extension * self._idle_power_w

    def attach_fleet(self, fleet: "FleetCostState") -> None:
        """Mirror this disk's scheduling state into ``fleet``'s columns.

        The disk writes its slot (indexed by ``disk_id``) on every
        state transition, submit, completion and crash-stop from then
        on; the current state is written immediately so the mirror is
        consistent from the moment of attachment.
        """
        if not 0 <= self.disk_id < fleet.num_disks:
            raise SimulationError(
                f"disk id {self.disk_id} outside fleet of {fleet.num_disks}"
            )
        self._f_pi = fleet.pi
        self._f_const = fleet.const
        self._f_tlast = fleet.tlast
        self._f_queue = fleet.queue
        self._f_live = True
        i = self.disk_id
        self._f_tlast[i] = (
            self.last_request_time if self.last_request_time is not None else 0.0
        )
        self._f_queue[i] = float(self.queue_length)
        self._write_fleet_energy()

    def _write_fleet_energy(self) -> None:
        """Refresh this disk's Eq. 5 encoding in the fleet columns."""
        i = self.disk_id
        const = self._marginal_const
        if const is None:  # IDLE: energy grows with the idle extension
            self._f_pi[i] = (
                self._idle_power_w if self.last_request_time is not None else 0.0
            )
            self._f_const[i] = 0.0
        else:
            self._f_pi[i] = 0.0
            self._f_const[i] = const

    @property
    def health(self) -> DiskHealth:
        """Availability of this disk, orthogonal to its power state."""
        return self._health

    @property
    def is_available(self) -> bool:
        """True when this disk can accept and service requests."""
        return self._health.is_available

    def submit(self, request: Request) -> None:
        """Accept a request at the current simulated time.

        Raises:
            ReplicaUnavailableError: when the disk is down or failed; the
                storage layer pre-filters such disks, so this is a
                defensive guard against direct misuse.
        """
        if self._health is not _HEALTHY:
            raise ReplicaUnavailableError(
                f"disk {self.disk_id} is {self._health.value}; cannot accept "
                f"request {request.request_id}"
            )
        engine = self._engine
        now = engine._now
        self.last_request_time = now
        if self._f_live:
            i = self.disk_id
            self._f_tlast[i] = now
            self._f_queue[i] += 1.0
        state = self._state
        if state is not _IDLE:
            self._queue.append(request)
            if state is _STANDBY:
                self._start_spin_up()
            # ACTIVE: queued behind the in-flight request.
            # SPIN_UP: serviced when the spin-up completes.
            # SPIN_DOWN: serviced after spin-down completes + full spin-up.
            return
        # Fused IDLE -> ACTIVE arrival (the hot path): inlines
        # _cancel_idle_timer, the service draw, _transition(ACTIVE) and
        # the first _service_loop iteration. Byte-identical bookkeeping:
        # the queue was empty, so the general path's append/popleft pair
        # cancels and the request goes straight into service; the service
        # draw moves ahead of the ledger update, which consumes the
        # per-disk RNG in the identical order (nothing draws in between).
        timer = self._idle_timer
        if timer is not None and timer._deadline is not None:
            timer._deadline = None
            if timer._entry_time is not None:
                engine._note_cancel()
        duration = self._draw_service(request, self._rng)
        if duration < 0:
            raise SimulationError("service model returned negative duration")
        stats = self.stats
        stats.state_time[_IDLE] += now - stats._state_since
        if stats.transitions is not None:
            stats.transitions.append((now, _ACTIVE))
        stats._current_state = _ACTIVE
        stats._state_since = now
        self._state = _ACTIVE
        self._marginal_const = 0.0
        if self._f_live:
            # IDLE already encoded const = 0.0; only pi changes.
            self._f_pi[self.disk_id] = 0.0
        self._in_service = request
        if duration > 0:
            if self._fault_capable:
                self._schedule_after(duration, self._on_service_complete)
                return
            service_timer = self._service_timer
            if service_timer is None:
                service_timer = self._service_timer = engine.timer(
                    self._on_service_complete
                )
            time = now + duration
            if service_timer._entry_time is None:
                # Inline ReusableTimer.schedule_at, fresh-arm branch: the
                # service timer's entry is always consumed before re-arm.
                service_timer._deadline = time
                service_timer._entry_time = time
                heappush(
                    engine._queue,
                    (
                        time,
                        next(engine._sequence),
                        service_timer,
                        service_timer._generation,
                    ),
                )
            else:
                service_timer.schedule_at(time)
            return
        # Zero-duration service (analysis configs): complete inline and
        # return to IDLE exactly as the general _service_loop tail does.
        self._complete_current()
        if self._queue:
            self._service_loop()
        else:
            self._transition(DiskPowerState.IDLE)
            self._arm_idle_timer()

    def finalize(self) -> None:
        """Close the stats ledger at simulation end."""
        self.stats.finalize(self._engine.now)

    # ------------------------------------------------------------------
    # fault injection (driven by repro.faults.injector.FaultInjector)
    # ------------------------------------------------------------------

    def enable_fault_injection(
        self,
        spin_up: Optional[SpinUpFaults] = None,
        spin_up_rng: Optional[random.Random] = None,
        on_spin_up_failure: Optional[Callable[[DiskId], None]] = None,
        on_fault_death: Optional[FaultDeathCallback] = None,
    ) -> None:
        """Arm this disk for fault injection.

        Turns on the epoch guard that invalidates in-flight timer events
        across a crash-stop, and (optionally) the probabilistic spin-up
        failure model.  Never called on no-fault runs, so their hot path
        stays exactly as before.
        """
        if spin_up is not None and spin_up_rng is None:
            raise SimulationError(
                f"disk {self.disk_id}: spin-up faults need a dedicated RNG"
            )
        self._fault_capable = True
        self._spin_up_faults = spin_up
        self._spin_up_rng = spin_up_rng
        self._on_spin_up_failure = on_spin_up_failure
        self._on_fault_death = on_fault_death

    def fail(self, permanent: bool) -> List[Request]:
        """Crash-stop this disk; returns every request drained from it.

        The in-service request (if any) and the whole queue are handed
        back for the storage layer to fail over.  The power state
        collapses straight to STANDBY — a crash-stop is not an orderly
        spin-down, so no spin operation is added to the ledger — and the
        fault epoch advances, invalidating every already-scheduled
        service/spin event of this disk.
        """
        if self._health is DiskHealth.FAILED:
            raise SimulationError(f"disk {self.disk_id} failed twice")
        self._health = DiskHealth.FAILED if permanent else DiskHealth.DOWN
        self._fault_epoch += 1
        self._cancel_idle_timer()
        drained: List[Request] = []
        if self._in_service is not None:
            drained.append(self._in_service)
            self._in_service = None
        drained.extend(self._queue)
        self._queue.clear()
        if self._f_live:
            self._f_queue[self.disk_id] = 0.0
        if self._state is not DiskPowerState.STANDBY:
            self._transition(DiskPowerState.STANDBY)
        return drained

    def repair(self) -> None:
        """End a transient outage; the disk returns spun-down and empty."""
        if self._health is not DiskHealth.DOWN:
            raise SimulationError(
                f"repair of disk {self.disk_id} in health {self._health.value}"
            )
        self._health = DiskHealth.HEALTHY
        self._spin_up_streak = 0
        self._fault_epoch += 1

    def _schedule_after(self, delay: float, callback: "EventCallback") -> None:
        """Engine scheduling with a fault-epoch guard.

        On fault-capable disks the callback is dropped if the disk
        crash-stopped (or was repaired) between scheduling and firing —
        a service completion from before a failure must not corrupt the
        post-repair state machine.  No-fault runs take the direct path
        and allocate nothing.
        """
        if not self._fault_capable:
            self._engine.schedule_after(delay, callback)
            return
        epoch = self._fault_epoch

        def guarded() -> None:
            if self._fault_epoch == epoch:
                callback()

        self._engine.schedule_after(delay, guarded)

    # ------------------------------------------------------------------
    # state machine internals
    # ------------------------------------------------------------------

    def _transition(self, new_state: DiskPowerState) -> None:
        self.stats.transition(new_state, self._engine.now)
        self._state = new_state
        self._marginal_const = self._marginal_const_by_state[new_state]
        if self._f_live:
            self._write_fleet_energy()

    def _start_spin_up(self) -> None:
        self._transition(DiskPowerState.SPIN_UP)
        if self.profile.spin_up_time > 0:
            self._schedule_after(
                self.profile.spin_up_time, self._on_spin_up_complete
            )
        else:
            self._on_spin_up_complete()

    def _on_spin_up_complete(self) -> None:
        if self._state is not DiskPowerState.SPIN_UP:
            raise SimulationError(
                f"spin-up completion in state {self._state.value} on disk "
                f"{self.disk_id}"
            )
        faults = self._spin_up_faults
        rng = self._spin_up_rng
        if faults is not None and rng is not None and faults.probability > 0:
            if rng.random() < faults.probability:
                self._spin_up_failed(faults)
                return
            self._spin_up_streak = 0
        self._transition(DiskPowerState.IDLE)
        if self._queue:
            self._start_service()
        else:
            self._arm_idle_timer()

    def _spin_up_failed(self, faults: SpinUpFaults) -> None:
        """One spin-up attempt failed: retry, or brick the disk."""
        self._spin_up_streak += 1
        if self._on_spin_up_failure is not None:
            self._on_spin_up_failure(self.disk_id)
        if self._spin_up_streak > faults.max_retries:
            drained = self.fail(permanent=True)
            if self._on_fault_death is not None:
                self._on_fault_death(self.disk_id, drained)
            return
        self._transition(DiskPowerState.STANDBY)
        self._start_spin_up()

    def _start_service(self) -> None:
        if self._in_service is not None:
            raise SimulationError(f"disk {self.disk_id} already servicing")
        self._transition(DiskPowerState.ACTIVE)
        self._service_loop()

    def _service_loop(self) -> None:
        """Start queued requests; zero-duration services complete inline.

        Iterative (not recursive) so a long queue with a zero-cost service
        model — the paper's analysis configuration — cannot overflow the
        stack.
        """
        while True:
            self._in_service = self._queue.popleft()
            duration = self._draw_service(self._in_service, self._rng)
            if duration < 0:
                raise SimulationError("service model returned negative duration")
            if duration > 0:
                if self._fault_capable:
                    # Fault runs need the epoch guard (a completion from
                    # before a crash-stop must not fire after it).
                    self._schedule_after(duration, self._on_service_complete)
                    return
                engine = self._engine
                timer = self._service_timer
                if timer is None:
                    timer = self._service_timer = engine.timer(
                        self._on_service_complete
                    )
                time = engine._now + duration
                if timer._entry_time is None:
                    # Inline ReusableTimer.schedule_at, fresh-arm branch
                    # (the entry is always consumed before a re-arm).
                    timer._deadline = time
                    timer._entry_time = time
                    heappush(
                        engine._queue,
                        (time, next(engine._sequence), timer, timer._generation),
                    )
                else:
                    timer.schedule_at(time)
                return
            self._complete_current()
            if not self._queue:
                self._transition(DiskPowerState.IDLE)
                self._arm_idle_timer()
                return

    def _on_service_complete(self) -> None:
        # Fused completion (the hot path): inlines _complete_current, the
        # queue-drained _transition(IDLE) and the ledger update —
        # byte-identical bookkeeping to the helpers it mirrors.
        request = self._in_service
        if request is None:
            raise SimulationError("service completion with no request in flight")
        self._in_service = None
        if self._f_live:
            self._f_queue[self.disk_id] -= 1.0
        stats = self.stats
        stats.requests_serviced += 1
        if self._on_complete is not None:
            self._on_complete(request, self.disk_id, self._engine._now)
        if self._queue:
            self._service_loop()
            return
        now = self._engine._now
        stats.state_time[_ACTIVE] += now - stats._state_since
        if stats.transitions is not None:
            stats.transitions.append((now, _IDLE))
        stats._current_state = _IDLE
        stats._state_since = now
        self._state = _IDLE
        self._marginal_const = None
        if self._f_live:
            # ACTIVE already encoded const = 0.0, and last_request_time
            # is non-None here (set when this request was submitted) —
            # only pi changes.
            self._f_pi[self.disk_id] = self._idle_power_w
        timeout = self._idle_timeout_s
        if timeout is not None:
            engine = self._engine
            timer = self._idle_timer
            if timer is None:
                timer = self._idle_timer = engine.timer(self._on_idle_timeout)
            time = now + timeout
            entry_time = timer._entry_time
            if entry_time is not None and entry_time <= time:
                # Inline ReusableTimer.schedule_at, in-place re-arm: the
                # cancelled entry fires no later than the new deadline
                # and migrates itself forward when popped.
                if timer._deadline is None:
                    engine._cancelled_pending -= 1
                timer._deadline = time
            elif entry_time is None:
                # Fresh arm (first drain, or the entry was consumed).
                timer._deadline = time
                timer._entry_time = time
                heappush(
                    engine._queue,
                    (time, next(engine._sequence), timer, timer._generation),
                )
            else:
                timer.schedule_at(time)

    def _complete_current(self) -> None:
        request = self._in_service
        if request is None:
            raise SimulationError("service completion with no request in flight")
        self._in_service = None
        if self._f_live:
            self._f_queue[self.disk_id] -= 1.0
        self.stats.note_request_serviced()
        if self._on_complete is not None:
            self._on_complete(request, self.disk_id, self._engine.now)

    def _arm_idle_timer(self) -> None:
        timeout = self._idle_timeout_s
        if timeout is None:
            return
        timer = self._idle_timer
        if timer is None:
            timer = self._idle_timer = self._engine.timer(self._on_idle_timeout)
        timer.schedule_after(timeout)

    def _cancel_idle_timer(self) -> None:
        # The timer object is kept for reuse; cancel() just disarms it.
        if self._idle_timer is not None:
            self._idle_timer.cancel()

    def _on_idle_timeout(self) -> None:
        if self._state is not DiskPowerState.IDLE:
            return  # a request slipped in and the cancel raced; ignore
        if self._queue:
            raise SimulationError("idle timeout fired with non-empty queue")
        self._start_spin_down()

    def _start_spin_down(self) -> None:
        self._transition(DiskPowerState.SPIN_DOWN)
        if self.profile.spin_down_time > 0:
            self._schedule_after(
                self.profile.spin_down_time, self._on_spin_down_complete
            )
        else:
            self._on_spin_down_complete()

    def _on_spin_down_complete(self) -> None:
        if self._state is not DiskPowerState.SPIN_DOWN:
            raise SimulationError(
                f"spin-down completion in state {self._state.value} on disk "
                f"{self.disk_id}"
            )
        self._transition(DiskPowerState.STANDBY)
        if self._queue:
            # Requests arrived during the spin-down; wake straight back up.
            self._start_spin_up()
