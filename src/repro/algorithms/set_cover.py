"""Weighted set cover: greedy (H_n-approximation) and exact solvers.

Theorem 2 of the paper reduces batch energy-aware scheduling to weighted
set cover: elements = queued requests, sets = disks, weight = the marginal
energy of using that disk (Eq. 5). The paper's experiments use the classic
greedy algorithm — iteratively pick the most *cost-effective* set
(weight divided by newly covered elements) — which is an ``H_n``-factor
approximation. :func:`exact_weighted_set_cover` is a branch-and-bound
solver for small instances used to validate the greedy in tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Set, Tuple

from repro.errors import ConfigurationError

Element = Hashable
SetId = Hashable


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted set cover problem.

    Attributes:
        universe: Elements to cover.
        sets: Mapping set id -> elements it covers.
        weights: Mapping set id -> non-negative weight.
    """

    universe: FrozenSet[Element]
    sets: Mapping[SetId, FrozenSet[Element]]
    weights: Mapping[SetId, float]

    @staticmethod
    def build(
        universe: Sequence[Element],
        sets: Mapping[SetId, Sequence[Element]],
        weights: Mapping[SetId, float],
    ) -> "SetCoverInstance":
        frozen_universe = frozenset(universe)
        frozen_sets = {
            set_id: frozenset(members) & frozen_universe
            for set_id, members in sets.items()
        }
        for set_id in frozen_sets:
            if set_id not in weights:
                raise ConfigurationError(f"set {set_id!r} has no weight")
            if weights[set_id] < 0:
                raise ConfigurationError(f"set {set_id!r} has negative weight")
        covered = (
            frozenset().union(*frozen_sets.values()) if frozen_sets else frozenset()
        )
        if covered != frozen_universe:
            missing = frozen_universe - covered
            raise ConfigurationError(
                f"universe elements not coverable: {sorted(map(repr, missing))}"
            )
        return SetCoverInstance(
            universe=frozen_universe,
            sets=frozen_sets,
            weights=dict(weights),
        )

    def cover_weight(self, chosen: Sequence[SetId]) -> float:
        """Total weight of a chosen set list."""
        return sum(self.weights[set_id] for set_id in chosen)

    def is_cover(self, chosen: Sequence[SetId]) -> bool:
        """True when the chosen sets cover the whole universe."""
        covered: Set[Element] = set()
        for set_id in chosen:
            covered |= self.sets[set_id]
        return covered >= self.universe


def greedy_weighted_set_cover(instance: SetCoverInstance) -> List[SetId]:
    """Classic greedy: repeatedly pick the most cost-effective set.

    Cost-effectiveness of a set with weight ``w`` covering ``c`` new
    elements is ``w / c``; zero-weight sets are free and picked first.
    Ties break on larger coverage, then on the set id's repr for
    determinism. Returns the chosen set ids in pick order.
    """
    uncovered = set(instance.universe)
    chosen: List[SetId] = []
    remaining = {
        set_id: set(members) for set_id, members in instance.sets.items() if members
    }
    while uncovered:
        best_id = None
        best_key: Tuple[float, int, str] = (math.inf, 0, "")
        for set_id, members in remaining.items():
            new = members & uncovered
            if not new:
                continue
            ratio = instance.weights[set_id] / len(new)
            key = (ratio, -len(new), repr(set_id))
            if best_id is None or key < best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            raise ConfigurationError("instance is not coverable")
        chosen.append(best_id)
        uncovered -= remaining.pop(best_id)
    return chosen


def exact_weighted_set_cover(
    instance: SetCoverInstance, max_sets: int = 24
) -> List[SetId]:
    """Optimal cover by best-first branch and bound (small instances only).

    Raises:
        ConfigurationError: when the instance has more than ``max_sets``
            sets (the search is exponential; this is a validation tool).
    """
    set_ids = sorted(instance.sets, key=repr)
    if len(set_ids) > max_sets:
        raise ConfigurationError(
            f"exact solver limited to {max_sets} sets, got {len(set_ids)}"
        )
    # Best-first search over (weight, covered) states.
    universe = instance.universe
    counter = 0
    heap: List[Tuple[float, int, FrozenSet[Element], List[SetId]]] = [
        (0.0, counter, frozenset(), [])
    ]
    best_seen: Dict[FrozenSet[Element], float] = {}
    while heap:
        weight, _tie, covered, chosen = heapq.heappop(heap)
        if covered >= universe:
            return chosen
        if best_seen.get(covered, math.inf) < weight:
            continue
        for set_id in set_ids:
            if set_id in chosen:
                continue
            members = instance.sets[set_id]
            new_covered = covered | members
            if new_covered == covered:
                continue
            new_weight = weight + instance.weights[set_id]
            if best_seen.get(new_covered, math.inf) <= new_weight:
                continue
            best_seen[new_covered] = new_weight
            counter += 1
            heapq.heappush(heap, (new_weight, counter, new_covered, chosen + [set_id]))
    raise ConfigurationError("instance is not coverable")


def harmonic_number(n: int) -> float:
    """``H_n = 1 + 1/2 + ... + 1/n`` — the greedy approximation factor."""
    if n < 0:
        raise ConfigurationError("n must be >= 0")
    return sum(1.0 / k for k in range(1, n + 1))
