"""Weighted set cover: greedy (H_n-approximation) and exact solvers.

Theorem 2 of the paper reduces batch energy-aware scheduling to weighted
set cover: elements = queued requests, sets = disks, weight = the marginal
energy of using that disk (Eq. 5). The paper's experiments use the classic
greedy algorithm — iteratively pick the most *cost-effective* set
(weight divided by newly covered elements) — which is an ``H_n``-factor
approximation. :func:`exact_weighted_set_cover` is a branch-and-bound
solver for small instances used to validate the greedy in tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

Element = Hashable
SetId = Hashable


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted set cover problem.

    Attributes:
        universe: Elements to cover.
        sets: Mapping set id -> elements it covers.
        weights: Mapping set id -> non-negative weight.
    """

    universe: FrozenSet[Element]
    sets: Mapping[SetId, FrozenSet[Element]]
    weights: Mapping[SetId, float]

    @staticmethod
    def build(
        universe: Sequence[Element],
        sets: Mapping[SetId, Sequence[Element]],
        weights: Mapping[SetId, float],
    ) -> "SetCoverInstance":
        frozen_universe = frozenset(universe)
        frozen_sets = {
            set_id: frozenset(members) & frozen_universe
            for set_id, members in sets.items()
        }
        for set_id in frozen_sets:
            if set_id not in weights:
                raise ConfigurationError(f"set {set_id!r} has no weight")
            if weights[set_id] < 0:
                raise ConfigurationError(f"set {set_id!r} has negative weight")
        covered = (
            frozenset().union(*frozen_sets.values()) if frozen_sets else frozenset()
        )
        if covered != frozen_universe:
            missing = frozen_universe - covered
            raise ConfigurationError(
                f"universe elements not coverable: {sorted(map(repr, missing))}"
            )
        return SetCoverInstance(
            universe=frozen_universe,
            sets=frozen_sets,
            weights=dict(weights),
        )

    def cover_weight(self, chosen: Sequence[SetId]) -> float:
        """Total weight of a chosen set list."""
        return sum(self.weights[set_id] for set_id in chosen)

    def is_cover(self, chosen: Sequence[SetId]) -> bool:
        """True when the chosen sets cover the whole universe."""
        covered: Set[Element] = set()
        for set_id in chosen:
            covered |= self.sets[set_id]
        return covered >= self.universe


def greedy_weighted_set_cover(instance: SetCoverInstance) -> List[SetId]:
    """Classic greedy: repeatedly pick the most cost-effective set.

    Cost-effectiveness of a set with weight ``w`` covering ``c`` new
    elements is ``w / c``; zero-weight sets are free and picked first.
    Ties break on larger coverage, then on the set id's repr for
    determinism. Returns the chosen set ids in pick order.
    """
    uncovered = set(instance.universe)
    chosen: List[SetId] = []
    remaining = {
        set_id: set(members) for set_id, members in instance.sets.items() if members
    }
    while uncovered:
        best_id = None
        best_key: Tuple[float, int, str] = (math.inf, 0, "")
        for set_id, members in remaining.items():
            new = members & uncovered
            if not new:
                continue
            ratio = instance.weights[set_id] / len(new)
            key = (ratio, -len(new), repr(set_id))
            if best_id is None or key < best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            raise ConfigurationError("instance is not coverable")
        chosen.append(best_id)
        uncovered -= remaining.pop(best_id)
    return chosen


def greedy_weighted_set_cover_dense(
    membership: "np.ndarray",
    weights: "np.ndarray",
    tie_rank: "np.ndarray",
) -> List[int]:
    """Vectorised greedy set cover over a dense membership matrix.

    Decision-identical to :func:`greedy_weighted_set_cover` on the same
    instance: each round picks the set minimising the scalar key
    ``(weight / new, -new, repr(set_id))``, realised here as min ratio
    (the same float64 division), then max newly-covered count, then min
    ``tie_rank`` — the caller supplies each row's rank in the
    repr-sorted order of its set id, reproducing the string tie-break
    exactly. Because the key totally orders the sets, the scalar path's
    dict-iteration order is irrelevant and both paths agree.

    Args:
        membership: ``(num_sets, num_elements)`` 0/1 int64 matrix.
        weights: ``(num_sets,)`` float64 set weights (must be >= 0).
        tie_rank: ``(num_sets,)`` int64 rank of ``repr(set_id)`` in
            sorted order; must be a permutation of ``0..num_sets-1``.

    Returns:
        Chosen row indices in pick order (covering every element).

    Raises:
        ConfigurationError: when some element is in no set.
    """
    num_sets, num_elements = membership.shape
    uncovered = np.ones(num_elements, dtype=np.int64)
    remaining = int(num_elements)
    chosen: List[int] = []
    while remaining > 0:
        new_counts = membership @ uncovered
        active = new_counts > 0
        if not active.any():
            raise ConfigurationError("instance is not coverable")
        # Same float64 division as the scalar `weight / len(new)`; the
        # clip only feeds masked-out lanes.
        ratio = np.where(
            active, weights / np.maximum(new_counts, 1), math.inf
        )
        tied = np.flatnonzero(ratio == ratio.min())
        if len(tied) > 1:
            tied_counts = new_counts[tied]
            tied = tied[tied_counts == tied_counts.max()]
        if len(tied) > 1:
            best = int(tied[tie_rank[tied].argmin()])
        else:
            best = int(tied[0])
        chosen.append(best)
        uncovered &= 1 - membership[best]
        remaining = int(uncovered.sum())
    return chosen


def repr_tie_ranks(set_ids: Sequence[SetId]) -> "np.ndarray":
    """Each set's rank under ``repr``-string ordering (dense tie-break).

    ``tie_rank[i]`` is the position of ``repr(set_ids[i])`` in the
    sorted repr order — the permutation
    :func:`greedy_weighted_set_cover_dense` needs to reproduce the
    scalar greedy's ``repr(set_id)`` tie-break.
    """
    order = sorted(range(len(set_ids)), key=lambda i: repr(set_ids[i]))
    ranks = np.empty(len(set_ids), dtype=np.int64)
    for rank, row in enumerate(order):
        ranks[row] = rank
    return ranks


def exact_weighted_set_cover(
    instance: SetCoverInstance, max_sets: int = 24
) -> List[SetId]:
    """Optimal cover by best-first branch and bound (small instances only).

    Raises:
        ConfigurationError: when the instance has more than ``max_sets``
            sets (the search is exponential; this is a validation tool).
    """
    set_ids = sorted(instance.sets, key=repr)
    if len(set_ids) > max_sets:
        raise ConfigurationError(
            f"exact solver limited to {max_sets} sets, got {len(set_ids)}"
        )
    # Best-first search over (weight, covered) states.
    universe = instance.universe
    counter = 0
    heap: List[Tuple[float, int, FrozenSet[Element], List[SetId]]] = [
        (0.0, counter, frozenset(), [])
    ]
    best_seen: Dict[FrozenSet[Element], float] = {}
    while heap:
        weight, _tie, covered, chosen = heapq.heappop(heap)
        if covered >= universe:
            return chosen
        if best_seen.get(covered, math.inf) < weight:
            continue
        for set_id in set_ids:
            if set_id in chosen:
                continue
            members = instance.sets[set_id]
            new_covered = covered | members
            if new_covered == covered:
                continue
            new_weight = weight + instance.weights[set_id]
            if best_seen.get(new_covered, math.inf) <= new_weight:
                continue
            best_seen[new_covered] = new_weight
            counter += 1
            heapq.heappush(heap, (new_weight, counter, new_covered, chosen + [set_id]))
    raise ConfigurationError("instance is not coverable")


def harmonic_number(n: int) -> float:
    """``H_n = 1 + 1/2 + ... + 1/n`` — the greedy approximation factor."""
    if n < 0:
        raise ConfigurationError("n must be >= 0")
    return sum(1.0 / k for k in range(1, n + 1))
