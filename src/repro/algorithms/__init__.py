"""Graph algorithms: weighted set cover, MWIS, NP-hardness reductions."""

from repro.algorithms.graph import ConflictGraph
from repro.algorithms.independent_set import (
    exact_mwis,
    greedy_min_degree,
    gwmin,
    gwmin2,
    gwmin_weight_bound,
    independence_check,
    solve_mwis,
)
from repro.algorithms.reductions import (
    ReducedInstance,
    cover_from_schedule,
    independent_set_from_schedule,
    reduce_mis_to_scheduling,
    reduce_set_cover_to_scheduling,
)
from repro.algorithms.set_cover import (
    SetCoverInstance,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    harmonic_number,
)

__all__ = [
    "ConflictGraph",
    "ReducedInstance",
    "SetCoverInstance",
    "cover_from_schedule",
    "exact_mwis",
    "exact_weighted_set_cover",
    "greedy_min_degree",
    "greedy_weighted_set_cover",
    "gwmin",
    "gwmin2",
    "gwmin_weight_bound",
    "harmonic_number",
    "independence_check",
    "independent_set_from_schedule",
    "reduce_mis_to_scheduling",
    "reduce_set_cover_to_scheduling",
    "solve_mwis",
]
