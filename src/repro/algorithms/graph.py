"""Lightweight weighted conflict graph.

The MWIS scheduling algorithm builds a graph whose nodes are energy-saving
terms ``X(i, j, k)`` and whose edges mark constraint violations. A custom
adjacency-set structure (rather than networkx) keeps the hot path — degree
queries and neighbourhood removal during greedy MWIS — allocation-free and
fast for the tens of thousands of nodes full-scale traces produce.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.errors import ConfigurationError

NodeId = Hashable


class ConflictGraph:
    """Undirected graph with weighted nodes."""

    def __init__(self) -> None:
        self._weights: Dict[NodeId, float] = {}
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._weights

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._weights)

    def add_node(self, node: NodeId, weight: float) -> None:
        """Add a node with a non-negative weight (duplicates rejected)."""
        if node in self._weights:
            raise ConfigurationError(f"duplicate node {node!r}")
        if weight < 0:
            raise ConfigurationError(f"node weight must be >= 0, got {weight}")
        self._weights[node] = weight
        self._adjacency[node] = set()

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Connect two existing nodes (idempotent; self-loops rejected)."""
        if u == v:
            raise ConfigurationError("self-loops are not allowed")
        if u not in self._weights or v not in self._weights:
            raise ConfigurationError("both endpoints must be added first")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when ``u`` and ``v`` are adjacent."""
        return v in self._adjacency.get(u, ())

    def weight(self, node: NodeId) -> float:
        """The node's weight."""
        return self._weights[node]

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        return len(self._adjacency[node])

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """A copy of the node's neighbour set."""
        return set(self._adjacency[node])

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._weights)

    @property
    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        seen = set()
        result = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    @property
    def num_edges(self) -> int:
        return sum(len(n) for n in self._adjacency.values()) // 2

    def total_weight(self, nodes: Iterable[NodeId]) -> float:
        """Sum of the given nodes' weights."""
        return sum(self._weights[node] for node in nodes)

    def is_independent_set(self, nodes: Iterable[NodeId]) -> bool:
        """True when no two of ``nodes`` are adjacent."""
        selected = list(nodes)
        selected_set = set(selected)
        if len(selected_set) != len(selected):
            return False
        for node in selected:
            if self._adjacency[node] & selected_set:
                return False
        return True

    def subgraph_without(self, removed: Set[NodeId]) -> "ConflictGraph":
        """Copy of the graph with ``removed`` nodes (and their edges) gone."""
        result = ConflictGraph()
        for node, weight in self._weights.items():
            if node not in removed:
                result.add_node(node, weight)
        for node, neighbors in self._adjacency.items():
            if node in removed:
                continue
            for neighbor in neighbors:
                if neighbor not in removed and not result.has_edge(node, neighbor):
                    result.add_edge(node, neighbor)
        return result
