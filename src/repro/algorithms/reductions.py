"""Theorem-3 reduction: maximum independent set -> offline scheduling.

The paper proves offline energy-aware scheduling NP-complete by reducing
the maximum independent set problem to it. Given any graph ``G(V, E)``:

* each vertex ``vi`` becomes a disk ``di``;
* each edge ``e = (vi, vj)`` becomes one *edge request* ``re`` whose data
  lives on both ``di`` and ``dj``, plus two *dummy requests* ``rei`` (data
  only on ``di``) and ``rej`` (data only on ``dj``) arriving at the same
  time as ``re``;
* edge groups are separated by time gaps much larger than ``TB``.

Scheduling ``re`` on ``di`` saves energy (it shares the disk with the
dummy ``rei`` already pinned there); per edge exactly one endpoint's
saving is realised.

**Fidelity note.** Implemented literally, the paper's gadget yields an
objective that is *invariant* to which endpoint each edge request picks —
every group saves exactly one ``EPmax`` either way, so an optimal schedule
does not by itself single out a maximum independent set (the "easy to
show" step of the paper's proof sketch glosses this). We implement the
construction faithfully, test its structural claims, and pin the
invariance itself as a regression test.

For a rigorous NP-hardness route this module also provides
:func:`reduce_set_cover_to_scheduling`: a batch of simultaneous requests
costs exactly ``EPmax`` per disk used (Theorem 2's weighted-set-cover
equivalence with uniform weights), so an optimal offline schedule of the
reduced instance has energy ``(minimum cover size) * EPmax`` — and minimum
set cover is NP-hard. This round-trips exactly and is verified in
``tests/algorithms/test_reductions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import PAPER_UNIT, DiskPowerProfile
from repro.types import Assignment, DataId, DiskId, Request


@dataclass(frozen=True)
class ReducedInstance:
    """The scheduling instance produced from a graph.

    Attributes:
        requests: The generated request stream, sorted by time.
        catalog: Data placement (edge data on both endpoints, dummy data
            on a single disk).
        profile: Power configuration (the unit model).
        edge_request_of: Edge -> request id of its edge request.
        vertex_of_dummy: Dummy request id -> the vertex/disk it pins.
    """

    requests: Tuple[Request, ...]
    catalog: PlacementCatalog
    profile: DiskPowerProfile
    edge_request_of: Dict[FrozenSet[int], int]
    vertex_of_dummy: Dict[int, int]


def reduce_mis_to_scheduling(
    num_vertices: int,
    edges: Sequence[Tuple[int, int]],
    profile: DiskPowerProfile = PAPER_UNIT,
) -> ReducedInstance:
    """Build the Theorem-3 scheduling instance for graph ``(V, E)``.

    Within an edge group the dummy requests arrive a hair *before* the
    edge request (same instant in the paper; an epsilon offset keeps our
    request stream strictly ordered without changing any gap vs ``TB``),
    and groups are spaced ``10 * (TB + Tup + Tdown + 1)`` apart so no
    saving crosses groups.
    """
    if num_vertices <= 0:
        raise ConfigurationError("graph needs at least one vertex")
    edge_sets: List[FrozenSet[int]] = []
    seen: Set[FrozenSet[int]] = set()
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ConfigurationError(f"edge ({u}, {v}) out of vertex range")
        if u == v:
            raise ConfigurationError("self-loops are not allowed")
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        edge_sets.append(key)

    gap = 10.0 * (profile.breakeven_time + profile.transition_time + 1.0)
    epsilon = min(1.0, profile.breakeven_time / 4.0) or 0.25

    requests: List[Request] = []
    locations: Dict[DataId, List[DiskId]] = {}
    edge_request_of: Dict[FrozenSet[int], int] = {}
    vertex_of_dummy: Dict[int, int] = {}
    next_data = 0
    next_request = 0

    for index, edge in enumerate(sorted(edge_sets, key=sorted)):
        u, v = sorted(edge)
        group_time = index * gap
        # Dummy requests pin each endpoint disk just before the edge request.
        for vertex in (u, v):
            dummy_data = next_data
            next_data += 1
            locations[dummy_data] = [vertex]
            requests.append(
                Request(time=group_time, request_id=next_request, data_id=dummy_data)
            )
            vertex_of_dummy[next_request] = vertex
            next_request += 1
        edge_data = next_data
        next_data += 1
        locations[edge_data] = [u, v]
        requests.append(
            Request(
                time=group_time + epsilon,
                request_id=next_request,
                data_id=edge_data,
            )
        )
        edge_request_of[edge] = next_request
        next_request += 1

    if not requests:
        # Edgeless graph: one dummy per vertex so the instance is non-empty.
        for vertex in range(num_vertices):
            locations[next_data] = [vertex]
            requests.append(
                Request(time=0.0, request_id=next_request, data_id=next_data)
            )
            vertex_of_dummy[next_request] = vertex
            next_request += 1
            next_data += 1

    return ReducedInstance(
        requests=tuple(sorted(requests)),
        catalog=PlacementCatalog(locations),
        profile=profile,
        edge_request_of=edge_request_of,
        vertex_of_dummy=vertex_of_dummy,
    )


def reduce_set_cover_to_scheduling(
    universe: Sequence[int],
    sets: Dict[int, Sequence[int]],
    profile: DiskPowerProfile = PAPER_UNIT,
) -> Tuple[Tuple[Request, ...], PlacementCatalog]:
    """Reduce minimum set cover to offline energy-aware scheduling.

    One disk per set, one request (at time 0) per universe element, the
    element's data placed on every disk whose set contains it. All
    requests are simultaneous, so each used disk's chain costs exactly
    ``EPmax`` (intra-chain gaps are 0); total energy =
    ``(number of used disks) * EPmax``. Minimising energy therefore is
    minimising the cover size.

    Returns the request stream and catalog; the disks are the set ids.
    """
    if not universe:
        raise ConfigurationError("universe must be non-empty")
    covered: Set[int] = set()
    for members in sets.values():
        covered.update(members)
    missing = set(universe) - covered
    if missing:
        raise ConfigurationError(f"elements not coverable: {sorted(missing)}")

    locations: Dict[DataId, List[DiskId]] = {}
    requests: List[Request] = []
    for index, element in enumerate(sorted(set(universe))):
        disks = sorted(
            set_id for set_id, members in sets.items() if element in members
        )
        locations[index] = disks
        requests.append(Request(time=0.0, request_id=index, data_id=index))
    return tuple(requests), PlacementCatalog(locations)


def cover_from_schedule(assignment: Assignment) -> Set[DiskId]:
    """Decode a schedule of the set-cover reduction back into a cover."""
    return set(assignment.chains())


def independent_set_from_schedule(
    instance: ReducedInstance, assignment: Assignment
) -> Set[int]:
    """Decode a schedule of the reduced instance back into a vertex set.

    A vertex is *selected* when **every** edge request incident to it was
    scheduled on that vertex's disk. Per edge only one endpoint can host
    the edge request, so the decoded set is independent in the edge-subgraph
    sense used by the reduction (isolated vertices are trivially selectable
    and are added by the caller when maximising).
    """
    chosen_endpoint: Dict[FrozenSet[int], int] = {}
    for edge, request_id in instance.edge_request_of.items():
        chosen_endpoint[edge] = assignment.disk_of(request_id)
    vertices: Set[int] = set()
    incident: Dict[int, List[FrozenSet[int]]] = {}
    for edge in instance.edge_request_of:
        for vertex in edge:
            incident.setdefault(vertex, []).append(edge)
    for vertex, vertex_edges in incident.items():
        if all(chosen_endpoint[edge] == vertex for edge in vertex_edges):
            vertices.add(vertex)
    return vertices
