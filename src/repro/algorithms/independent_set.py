"""Maximum weighted independent set (MWIS) solvers.

The offline scheduling algorithm (Section 3.1) reduces to MWIS; the paper
solves the reduced problem with the **GMIN/GWMIN** greedy of Sakai,
Togasaki & Yamazaki ("A note on greedy algorithms for the maximum weighted
independent set problem", Discrete Applied Mathematics 2003):

* :func:`gwmin` — repeatedly select the vertex maximising
  ``w(v) / (deg(v) + 1)``, add it to the solution, delete it and its
  neighbourhood. Guarantees a solution of weight at least
  ``sum_v w(v) / (deg(v)+1)``.
* :func:`gwmin2` — the sibling rule ``w(v) / w(N+(v))`` (weight over the
  closed neighbourhood's weight), often slightly stronger on weighted
  graphs.
* :func:`exact_mwis` — exact branch and bound with a greedy lower bound
  and weight-sum upper bound, for validating the greedies and for solving
  the small instances of the paper's worked examples optimally.

MWIS admits no constant-factor approximation on general graphs (Håstad),
which is why the paper accepts greedy solutions.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Set, Tuple

from repro.algorithms.graph import ConflictGraph
from repro.errors import ConfigurationError

NodeId = Hashable

#: A greedy selection rule: value to *minimise* for ``node`` given the
#: current weights and adjacency (negate for maximisation).
Scorer = Callable[[NodeId, Dict[NodeId, float], Dict[NodeId, Set[NodeId]]], float]


def _working_copy(
    graph: ConflictGraph,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Set[NodeId]]]:
    weights = {node: graph.weight(node) for node in graph.nodes}
    adjacency = {node: graph.neighbors(node) for node in graph.nodes}
    return weights, adjacency


def _remove_closed_neighborhood(
    node: NodeId,
    weights: Dict[NodeId, float],
    adjacency: Dict[NodeId, Set[NodeId]],
) -> None:
    to_remove = adjacency[node] | {node}
    for victim in to_remove:
        for neighbor in adjacency[victim]:
            if neighbor not in to_remove:
                adjacency[neighbor].discard(victim)
        del adjacency[victim]
        del weights[victim]


def gwmin(graph: ConflictGraph) -> List[NodeId]:
    """GWMIN greedy: pick argmax ``w(v) / (deg(v) + 1)`` until empty.

    Ties break deterministically on node insertion order. Returns the
    selected independent set in pick order.

    Implementation note: scores only change when a vertex loses neighbours,
    so a lazy max-heap with per-node version counters gives
    O((V + E) log V) instead of the naive O(V^2) rescan — the difference
    between seconds and hours on full-scale trace graphs.
    """

    def score(
        node: NodeId,
        weights: Dict[NodeId, float],
        adjacency: Dict[NodeId, Set[NodeId]],
    ) -> float:
        return -weights[node] / (len(adjacency[node]) + 1)

    return _lazy_heap_greedy(graph, score)


def _lazy_heap_greedy(graph: ConflictGraph, score: Scorer) -> List[NodeId]:
    """Shared lazy-heap skeleton for the greedy MWIS family.

    ``score(node, weights, adjacency)`` returns a value to *minimise*
    (negate for maximisation). A node's score may only depend on its own
    weight and its current neighbourhood, which is exactly what GWMIN,
    GWMIN2 and min-degree need: scores change only when a vertex loses
    neighbours, so stale heap entries are detected with per-node version
    counters.
    """
    weights, adjacency = _working_copy(graph)
    selected: List[NodeId] = []
    version: Dict[NodeId, int] = dict.fromkeys(weights, 0)
    order: Dict[NodeId, int] = {node: i for i, node in enumerate(weights)}

    def entry(node: NodeId) -> Tuple[float, int, int, NodeId]:
        return (score(node, weights, adjacency), order[node], version[node], node)

    heap = [entry(node) for node in weights]
    heapq.heapify(heap)
    while weights:
        _score, _order, entry_version, node = heapq.heappop(heap)
        if node not in weights or version[node] != entry_version:
            continue
        selected.append(node)
        removed = adjacency[node] | {node}
        touched: Set[NodeId] = set()
        for victim in removed:
            for neighbor in adjacency[victim]:
                if neighbor not in removed:
                    adjacency[neighbor].discard(victim)
                    touched.add(neighbor)
            del adjacency[victim]
            del weights[victim]
            version.pop(victim, None)
        for survivor in touched:
            version[survivor] += 1
            heapq.heappush(heap, entry(survivor))
    return selected


def gwmin2(graph: ConflictGraph) -> List[NodeId]:
    """GWMIN2 greedy: pick argmax ``w(v) / w(N[v])`` until empty.

    ``w(N[v])`` is the weight of the closed neighbourhood. Zero-weight
    neighbourhoods (possible when every weight is 0) fall back to degree.
    """

    def score(
        node: NodeId,
        weights: Dict[NodeId, float],
        adjacency: Dict[NodeId, Set[NodeId]],
    ) -> float:
        closed = weights[node] + sum(weights[n] for n in adjacency[node])
        if closed <= 0:
            return -1.0 / (len(adjacency[node]) + 1)
        return -weights[node] / closed

    return _lazy_heap_greedy(graph, score)


def greedy_min_degree(graph: ConflictGraph) -> List[NodeId]:
    """Unweighted classic: repeatedly take a minimum-degree vertex.

    The algorithm GMIN extends (Section 6 of the paper); included for
    ablations comparing weighted vs unweighted selection.
    """

    def score(
        node: NodeId,
        weights: Dict[NodeId, float],
        adjacency: Dict[NodeId, Set[NodeId]],
    ) -> float:
        return float(len(adjacency[node]))

    return _lazy_heap_greedy(graph, score)


def exact_mwis(
    graph: ConflictGraph, max_nodes: int = 40
) -> List[NodeId]:
    """Optimal MWIS by branch and bound (small graphs only).

    Branches on the highest-weight remaining vertex (include/exclude) with
    a remaining-weight-sum upper bound, seeded with the GWMIN solution as
    the incumbent.

    Raises:
        ConfigurationError: when the graph exceeds ``max_nodes``.
    """
    if len(graph) > max_nodes:
        raise ConfigurationError(
            f"exact solver limited to {max_nodes} nodes, got {len(graph)}"
        )
    incumbent = gwmin(graph)
    incumbent_weight = graph.total_weight(incumbent)
    insertion = {node: i for i, node in enumerate(graph.nodes)}
    order = sorted(graph.nodes, key=lambda n: (-graph.weight(n), insertion[n]))
    adjacency = {node: graph.neighbors(node) for node in graph.nodes}
    weights = {node: graph.weight(node) for node in graph.nodes}

    best_set = list(incumbent)
    best_weight = incumbent_weight

    def search(
        candidates: List[NodeId], current: List[NodeId], current_weight: float
    ) -> None:
        nonlocal best_set, best_weight
        if not candidates:
            if current_weight > best_weight:
                best_weight = current_weight
                best_set = list(current)
            return
        upper = current_weight + sum(weights[n] for n in candidates)
        if upper <= best_weight:
            return
        head, *rest = candidates
        # Branch 1: include head.
        allowed = [n for n in rest if n not in adjacency[head]]
        search(allowed, current + [head], current_weight + weights[head])
        # Branch 2: exclude head.
        search(rest, current, current_weight)

    search(order, [], 0.0)
    return best_set


def independence_check(graph: ConflictGraph, nodes: List[NodeId]) -> None:
    """Raise if ``nodes`` is not an independent set of ``graph``."""
    if not graph.is_independent_set(nodes):
        raise ConfigurationError("selected nodes are not an independent set")


def gwmin_weight_bound(graph: ConflictGraph) -> float:
    """Sakai et al.'s lower bound: ``sum_v w(v) / (deg(v) + 1)``.

    Any GWMIN solution is guaranteed to weigh at least this much — a
    property test pins our implementation to it.
    """
    return sum(
        graph.weight(node) / (graph.degree(node) + 1) for node in graph.nodes
    )


def solve_mwis(graph: ConflictGraph, method: str = "gwmin") -> List[NodeId]:
    """Dispatch by method name: gwmin | gwmin2 | min-degree | exact."""
    solvers = {
        "gwmin": gwmin,
        "gwmin2": gwmin2,
        "min-degree": greedy_min_degree,
        "exact": exact_mwis,
    }
    try:
        solver = solvers[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown MWIS method {method!r}; known: {sorted(solvers)}"
        )
    return solver(graph)
