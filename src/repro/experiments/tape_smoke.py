"""Tape-tier digest smoke: pin the tape_tier sweep, re-check in CI.

``python -m repro.experiments.tape_smoke`` runs the ``tape_tier``
ablation at CI smoke scale, digests its canonical result payload
(panels, x-values and every series value, byte-exact), and writes or
checks a pin file. The pin is the cold tier's determinism contract:
same scale + seed must reproduce every energy, latency and seek-distance
number bit for bit — across machines, Python versions and CI runs. A
mismatch means something on the tape path (sequencer order, drive state
machine, tier routing, layout) changed an observable result.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.experiments.harness.serialize import canonical_json, sha256_hex
from repro.experiments.tape_tier import run_tape_tier

#: CI smoke defaults — the same cell sizes tape-smoke runs.
DEFAULT_SCALE = 0.05
DEFAULT_SEED = 11


def tape_tier_payload(scale: float, seed: int) -> Dict[str, Any]:
    """The tape_tier sweep as a JSON-able payload (bench result shape)."""
    result = run_tape_tier(scale=scale, seed=seed)
    return {
        "ablation_id": result.ablation_id,
        "title": result.title,
        "panels": [
            {
                "name": panel.name,
                "x_label": panel.x_label,
                "x_values": list(panel.x_values),
                "series": {
                    name: list(values)
                    for name, values in panel.series.items()
                },
            }
            for panel in result.panels
        ],
    }


def digest_tape_tier(scale: float, seed: int) -> str:
    """Combined SHA-256 of the canonical tape_tier payload."""
    return sha256_hex(canonical_json(tape_tier_payload(scale, seed)))


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the tape-smoke CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tape_smoke",
        description="digest the tape_tier sweep and compare against a "
        "committed pin",
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--check",
        metavar="PIN",
        default=None,
        help="fail unless the digest equals this pin file's",
    )
    parser.add_argument(
        "--write",
        metavar="PIN",
        default=None,
        help="write the digest to this pin file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the sweep, print the digest, write/check the pin."""
    args = build_parser().parse_args(argv)
    digest = digest_tape_tier(args.scale, args.seed)
    print(f"{digest}  tape_tier scale={args.scale} seed={args.seed}")
    if args.write is not None:
        Path(args.write).write_text(digest + "\n", encoding="utf-8")
        print(f"wrote {args.write}")
    if args.check is not None:
        pinned = Path(args.check).read_text(encoding="utf-8").strip()
        if digest != pinned:
            print(
                f"digest mismatch: measured {digest} != pinned {pinned} "
                f"({args.check})",
                file=sys.stderr,
            )
            return 1
        print(f"pin ok: {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
