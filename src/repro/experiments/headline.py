"""The paper's abstract, verified.

The abstract claims the approach "significantly reduces energy
consumption up to 55% and achieves fewer disk spin-up/down operations and
shorter request response time as compared to other approaches". This
module computes those three headline numbers from the same cached
campaign the figures use, so ``repro-storage headline`` (or the
``bench_headline_claims`` benchmark) prints the abstract's scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.experiments.common import (
    REPLICATION_FACTORS,
    SCHEDULER_LABELS,
    run_cell,
)


@dataclass(frozen=True)
class HeadlineClaims:
    """The abstract's three claims, quantified on one trace.

    Attributes:
        trace: Which workload was measured.
        best_energy_reduction: Largest energy cut vs always-on achieved by
            any energy-aware scheduler at any replication factor, as a
            fraction (paper: "up to 55%" => 0.55).
        best_energy_cell: (scheduler key, replication factor) achieving
            that best energy ratio.
        spin_reduction_vs_static: 1 - (energy-aware spin ops / Static spin
            ops) at replication 3 (Heuristic).
        response_reduction_vs_static: 1 - (Heuristic mean response / Static
            mean response) at replication 3.
    """

    trace: str
    best_energy_reduction: float
    best_energy_cell: Tuple[str, int]
    spin_reduction_vs_static: float
    response_reduction_vs_static: float

    def render(self) -> str:
        """Scorecard table mirroring the abstract's three claims."""
        rows = [
            [
                "energy reduction vs always-on (best case)",
                "up to 55%",
                f"{self.best_energy_reduction * 100:.0f}% "
                f"({SCHEDULER_LABELS[self.best_energy_cell[0]]}, "
                f"rf={self.best_energy_cell[1]})",
            ],
            [
                "spin-up/down reduction vs Static (rf=3, Heuristic)",
                "fewer",
                f"{self.spin_reduction_vs_static * 100:.0f}% fewer",
            ],
            [
                "mean response reduction vs Static (rf=3, Heuristic)",
                "shorter",
                f"{self.response_reduction_vs_static * 100:.0f}% shorter",
            ],
        ]
        return format_table(
            ["claim", "paper", "measured"],
            rows,
            title=f"headline claims ({self.trace})",
        )


def headline_claims(trace: str = "cello") -> HeadlineClaims:
    """Measure the abstract's claims on one trace (cached campaign)."""
    best_reduction = 0.0
    best_cell: Tuple[str, int] = ("heuristic", 1)
    for key in ("heuristic", "wsc", "mwis"):
        for rf in REPLICATION_FACTORS:
            result = run_cell(trace, rf, key)
            reduction = 1.0 - result.normalized_energy
            if reduction > best_reduction:
                best_reduction = reduction
                best_cell = (key, rf)

    static = run_cell(trace, 3, "static")
    heuristic = run_cell(trace, 3, "heuristic")
    spin_reduction = 1.0 - heuristic.spin_operations / max(
        1, static.spin_operations
    )
    response_reduction = 1.0 - (
        heuristic.mean_response_time / static.mean_response_time
        if static.mean_response_time
        else 1.0
    )
    return HeadlineClaims(
        trace=trace,
        best_energy_reduction=best_reduction,
        best_energy_cell=best_cell,
        spin_reduction_vs_static=spin_reduction,
        response_reduction_vs_static=response_reduction,
    )
