"""Spec execution and the parallel sweep runner.

:func:`execute_spec` is the one process-safe entry point that turns a
:class:`~repro.experiments.harness.spec.RunSpec` into a result payload —
it regenerates the workload from the spec alone, so it computes the same
bytes whether it runs in this interpreter or in a
:class:`~concurrent.futures.ProcessPoolExecutor` worker.

:class:`SweepRunner` fans a list of specs out: persistent-cache hits are
returned instantly, misses are computed (in parallel when ``jobs > 1``)
and written back, and every point's wall-clock / event count / cache
status is recorded for the bench trajectory files.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core import (
    CostFunction,
    HeuristicScheduler,
    MWISOfflineScheduler,
    RandomScheduler,
    StaticScheduler,
    WSCBatchScheduler,
)
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.experiments.harness.cache import RunCache
from repro.experiments.harness.serialize import report_to_payload
from repro.experiments.harness.spec import KIND_BASELINE, RunSpec
from repro.faults.plan import FaultPlan
from repro.perf.profiler import hook_phase
from repro.placement.catalog import PlacementCatalog
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.profile import get_profile
from repro.sim import SimulationConfig, always_on_baseline, run_offline, simulate
from repro.traces import (
    CelloLikeConfig,
    FinancialLikeConfig,
    Workload,
    generate_cello_like,
    generate_financial_like,
)
from repro.types import Request

#: The paper's disk count at scale 1.0.
PAPER_NUM_DISKS = 180

_WorkloadKey = Tuple[str, float, int]
_BindingKey = Tuple[str, int, float, float, int]
_Binding = Tuple[Sequence[Request], PlacementCatalog, int]

# Process-local memos: fork()ed pool workers inherit a snapshot, and each
# worker reuses its own copies across the specs it executes.
_workloads: Dict[_WorkloadKey, Workload] = {}
_bindings: Dict[_BindingKey, _Binding] = {}


def num_disks_for(scale: float) -> int:
    """Disk count at a given scale (paper: 180 at scale 1.0)."""
    return max(2, round(PAPER_NUM_DISKS * scale))


def get_workload(trace: str, scale: float, seed: int) -> Workload:
    """Memoised synthetic workload (``trace`` in {"cello", "financial"})."""
    key = (trace, scale, seed)
    if key not in _workloads:
        if trace == "cello":
            records = generate_cello_like(CelloLikeConfig().scaled(scale), seed=seed)
        elif trace == "financial":
            records = generate_financial_like(
                FinancialLikeConfig().scaled(scale), seed=seed
            )
        else:
            raise ConfigurationError(f"unknown trace {trace!r}")
        _workloads[key] = Workload(records)
    return _workloads[key]


def get_binding(
    trace: str,
    replication_factor: int,
    zipf_exponent: float,
    scale: float,
    seed: int,
) -> _Binding:
    """Memoised (requests, catalog, num_disks) for one placement."""
    key = (trace, replication_factor, zipf_exponent, scale, seed)
    if key not in _bindings:
        workload = get_workload(trace, scale, seed)
        disks = num_disks_for(scale)
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(
                replication_factor=replication_factor,
                zipf_exponent=zipf_exponent,
            ),
            num_disks=disks,
            seed=seed + 7,
        )
        _bindings[key] = (requests, catalog, disks)
    return _bindings[key]


def clear_memos() -> None:
    """Drop the process-local workload/binding memos (testing hook)."""
    _workloads.clear()
    _bindings.clear()


def make_config(num_disks: int, profile_name: str, seed: int) -> SimulationConfig:
    """The evaluation's simulation config for one spec."""
    return SimulationConfig(
        num_disks=num_disks, profile=get_profile(profile_name), seed=seed
    )


def make_scheduler(spec: RunSpec) -> Scheduler:
    """Instantiate the scheduler a cell spec refers to."""
    key = spec.scheduler_key
    cost = CostFunction(alpha=spec.alpha, beta=spec.beta)
    if key == "static":
        return StaticScheduler()
    if key == "random":
        return RandomScheduler(seed=spec.seed)
    if key == "heuristic":
        return HeuristicScheduler(cost_function=cost)
    if key == "wsc":
        return WSCBatchScheduler(cost_function=cost)
    if key == "mwis":
        return MWISOfflineScheduler(method="gwmin", neighborhood=4)
    raise ConfigurationError(f"unknown scheduler key {key!r}")


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Compute one spec's result payload (self-contained; pool-safe).

    Returns ``{"report": <report payload>, "wall_s": <compute seconds>}``.
    Only the ``report`` part is deterministic; ``wall_s`` is measurement
    metadata and never participates in cache keys or byte comparisons.
    """
    started = time.perf_counter()
    with hook_phase("binding"):
        requests, catalog, disks = get_binding(
            spec.trace,
            spec.replication_factor,
            spec.zipf_exponent,
            spec.scale,
            spec.seed,
        )
    config = make_config(disks, spec.profile, spec.seed)
    if spec.fault_rate > 0:
        # The plan seed derives from the run seed so replication seeds get
        # independent failure schedules, while staying identical across
        # serial, pooled and cache-replayed executions of one spec.
        config = replace(
            config,
            fault_plan=FaultPlan.canonical(spec.fault_rate, seed=spec.seed),
        )
    with hook_phase("simulate"):
        if spec.kind == KIND_BASELINE:
            report = always_on_baseline(requests, catalog, config)
        elif spec.scheduler_key == "mwis":
            scheduler = make_scheduler(spec)
            if not isinstance(scheduler, MWISOfflineScheduler):
                raise ConfigurationError(
                    "mwis spec produced a non-offline scheduler"
                )
            report = run_offline(requests, catalog, scheduler, config).report
        else:
            report = simulate(requests, catalog, make_scheduler(spec), config)
    return {
        "report": report_to_payload(report),
        "wall_s": time.perf_counter() - started,
    }


@dataclass(frozen=True)
class SweepPoint:
    """Per-spec measurement of one sweep: provenance + cost."""

    spec: RunSpec
    cached: bool
    wall_s: float
    events_processed: int


@dataclass
class SweepOutcome:
    """Everything a sweep produced: payloads by spec + per-point stats."""

    payloads: Dict[RunSpec, Dict[str, Any]] = field(default_factory=dict)
    points: List[SweepPoint] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0

    @property
    def events_processed(self) -> int:
        """Simulator events across all points (cached points included —
        their counts were paid for once and recorded)."""
        return sum(point.events_processed for point in self.points)

    @property
    def hit_rate(self) -> float:
        """Cache hits over lookups (0.0 when the cache was disabled)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class SweepRunner:
    """Fan specs over workers, with the persistent cache in front."""

    def __init__(self, cache: Optional[RunCache] = None, jobs: int = 1) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self._cache = cache
        self._jobs = jobs

    def run(self, specs: Sequence[RunSpec]) -> SweepOutcome:
        """Resolve every spec to a payload (cache hit or fresh compute).

        Duplicate specs are computed once.  Results are deterministic and
        independent of ``jobs``: each worker recomputes its workload from
        the spec alone, so serial and parallel sweeps produce identical
        canonical report bytes.
        """
        outcome = SweepOutcome()
        unique: List[RunSpec] = []
        seen: Set[RunSpec] = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)

        to_compute: List[RunSpec] = []
        corrupt_before = self._cache.stats.corrupt if self._cache else 0
        for spec in unique:
            payload = self._cache.load_payload(spec) if self._cache else None
            if payload is not None:
                outcome.payloads[spec] = payload
                outcome.cache_hits += 1
                outcome.points.append(
                    SweepPoint(
                        spec=spec,
                        cached=True,
                        wall_s=0.0,
                        events_processed=payload["report"]["events_processed"],
                    )
                )
            else:
                to_compute.append(spec)
                if self._cache is not None and self._cache.enabled:
                    outcome.cache_misses += 1
        if self._cache is not None:
            outcome.cache_corrupt = self._cache.stats.corrupt - corrupt_before

        for spec, payload in zip(to_compute, self._compute(to_compute)):
            outcome.payloads[spec] = payload
            if self._cache is not None:
                self._cache.store_payload(spec, payload)
            outcome.points.append(
                SweepPoint(
                    spec=spec,
                    cached=False,
                    wall_s=payload["wall_s"],
                    events_processed=payload["report"]["events_processed"],
                )
            )
        return outcome

    def _compute(self, specs: List[RunSpec]) -> List[Dict[str, Any]]:
        if not specs:
            return []
        if self._jobs > 1 and len(specs) > 1:
            workers = min(self._jobs, len(specs))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(execute_spec, specs))
        return [execute_spec(spec) for spec in specs]
