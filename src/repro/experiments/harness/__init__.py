"""Parallel experiment harness: specs, persistent cache, sweep runner.

The harness turns the experiment campaign into data: every run is a
content-addressed :class:`RunSpec`, resolved through a persistent
:class:`RunCache` or computed (serially or over a process pool) by the
:class:`SweepRunner`, always producing byte-identical canonical report
JSON.  :mod:`repro.experiments.harness.bench` builds the
``repro-storage bench`` trajectory documents on top; it is deliberately
*not* imported here (it pulls in the figure modules, which come back
through :mod:`repro.experiments.common`).
"""

from repro.experiments.harness.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    RunCache,
    cache_enabled_by_env,
    cache_salt,
    default_cache_root,
)
from repro.experiments.harness.runner import (
    PAPER_NUM_DISKS,
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    clear_memos,
    execute_spec,
    make_scheduler,
    num_disks_for,
)
from repro.experiments.harness.schema import (
    BENCH_SCHEMA,
    validate_bench_file,
    validate_bench_payload,
)
from repro.experiments.harness.serialize import (
    REPORT_SCHEMA_VERSION,
    canonical_json,
    canonical_report_json,
    report_from_payload,
    report_to_payload,
    sha256_hex,
)
from repro.experiments.harness.spec import (
    BASELINE_SCHEDULER_KEY,
    DEFAULT_PROFILE,
    KIND_BASELINE,
    KIND_CELL,
    SCHEDULER_KEYS,
    TRACES,
    RunSpec,
    baseline_of,
    baseline_spec,
    cell_spec,
)

__all__ = [
    "BASELINE_SCHEDULER_KEY",
    "BENCH_SCHEMA",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DEFAULT_PROFILE",
    "KIND_BASELINE",
    "KIND_CELL",
    "PAPER_NUM_DISKS",
    "REPORT_SCHEMA_VERSION",
    "RunCache",
    "RunSpec",
    "SCHEDULER_KEYS",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "TRACES",
    "baseline_of",
    "baseline_spec",
    "cache_enabled_by_env",
    "cache_salt",
    "canonical_json",
    "canonical_report_json",
    "cell_spec",
    "clear_memos",
    "default_cache_root",
    "execute_spec",
    "make_scheduler",
    "num_disks_for",
    "report_from_payload",
    "report_to_payload",
    "sha256_hex",
    "validate_bench_file",
    "validate_bench_payload",
]
