"""Persistent, content-addressed result cache for simulation runs.

Each entry is one JSON file named by the SHA-256 of the canonical
:meth:`~repro.experiments.harness.spec.RunSpec.key_payload` plus a
code-version salt, so results are shared across processes and
invocations but never across incompatible code versions.  Entries carry
a digest of their payload; corrupt or truncated files are detected on
load, dropped, and transparently recomputed by the caller.

Environment:

* ``REPRO_CACHE_DIR`` — cache root (default
  ``$XDG_CACHE_HOME/repro-storage`` or ``~/.cache/repro-storage``).
* ``REPRO_NO_CACHE=1`` — disable the persistent cache entirely.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import repro
from repro.experiments.harness.serialize import (
    REPORT_SCHEMA_VERSION,
    canonical_json,
    sha256_hex,
)
from repro.experiments.harness.spec import RunSpec

#: Bump when the on-disk entry layout changes.
CACHE_FORMAT_VERSION = 1

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_NO_CACHE = "REPRO_NO_CACHE"


def cache_salt() -> str:
    """Code-version salt folded into every cache key.

    Bundles the package version with the report/cache schema versions, so
    a release or payload-layout change invalidates old entries instead of
    resurfacing stale physics.
    """
    return (
        f"repro-{repro.__version__}"
        f"/report-{REPORT_SCHEMA_VERSION}"
        f"/cache-{CACHE_FORMAT_VERSION}"
    )


def default_cache_root() -> Path:
    """Cache directory honouring ``REPRO_CACHE_DIR`` and XDG defaults."""
    explicit = os.environ.get(_ENV_CACHE_DIR)
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-storage"


def cache_enabled_by_env() -> bool:
    """False when ``REPRO_NO_CACHE`` requests a cache-free run."""
    return os.environ.get(_ENV_NO_CACHE, "").lower() not in ("1", "true", "yes")


@dataclass
class CacheStats:
    """Hit/miss/corruption counters of one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class RunCache:
    """On-disk run cache; safe for concurrent writers (atomic replace)."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        self._root = Path(root) if root is not None else default_cache_root()
        self._enabled = cache_enabled_by_env() if enabled is None else enabled
        self.stats = CacheStats()

    @property
    def root(self) -> Path:
        return self._root

    @property
    def enabled(self) -> bool:
        return self._enabled

    def key_for(self, spec: RunSpec) -> str:
        """SHA-256 cache key of a spec under the current code salt."""
        return sha256_hex(
            canonical_json({"salt": cache_salt(), "spec": spec.key_payload()})
        )

    def entry_path(self, spec: RunSpec) -> Path:
        """Where a spec's entry lives (two-level fan-out by key prefix)."""
        key = self.key_for(spec)
        return self._root / key[:2] / f"{key}.json"

    def load_payload(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The cached payload for ``spec``, or ``None`` on miss/corruption.

        A corrupt entry (unparsable, wrong key, or payload digest
        mismatch) is deleted and reported as a miss — it is never
        returned.
        """
        if not self._enabled:
            return None
        path = self.entry_path(spec)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        payload = self._verify(raw, self.key_for(spec))
        if payload is None:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        return payload

    def store_payload(self, spec: RunSpec, payload: Dict[str, Any]) -> None:
        """Persist a payload for ``spec`` (atomic write, last writer wins)."""
        if not self._enabled:
            return
        key = self.key_for(spec)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "salt": cache_salt(),
            "key": key,
            "spec": spec.key_payload(),
            "payload_sha256": sha256_hex(canonical_json(payload)),
            "payload": payload,
        }
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(canonical_json(entry), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1

    @staticmethod
    def _verify(raw: str, expected_key: str) -> Optional[Dict[str, Any]]:
        """Parse and integrity-check one entry; ``None`` when invalid."""
        try:
            entry = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return None
        if entry.get("key") != expected_key:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        digest = entry.get("payload_sha256")
        if digest != sha256_hex(canonical_json(payload)):
            return None
        return payload

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
