"""Canonical serialisation of simulation results.

The determinism and caching guarantees of the harness rest on one
function: :func:`canonical_json` — sorted keys, no whitespace, ``NaN``
rejected — so equal results serialise to byte-identical strings.  A
:class:`~repro.report.SimulationReport` round-trips exactly through
:func:`report_to_payload` / :func:`report_from_payload`: every float is
stored verbatim (JSON's shortest-repr float round-trips bit-exactly in
CPython), so a cache-hit report is indistinguishable from a freshly
computed one, byte-for-byte on the canonical form.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.disk.stats import DiskStats
from repro.errors import ConfigurationError
from repro.power.profile import DiskPowerProfile
from repro.power.states import DiskPowerState
from repro.report import AvailabilityReport, SimulationReport, TapeTierReport

#: Bump when the report payload layout changes (invalidates the cache
#: through the key salt).
REPORT_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def sha256_hex(text: str) -> str:
    """SHA-256 hex digest of a UTF-8 string."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def profile_to_payload(profile: DiskPowerProfile) -> Dict[str, Any]:
    """A power profile as a plain dict (all watts/seconds fields)."""
    return {
        "name": profile.name,
        "idle_power_watts": profile.idle_power,
        "active_power_watts": profile.active_power,
        "standby_power_watts": profile.standby_power,
        "spin_up_power_watts": profile.spin_up_power,
        "spin_down_power_watts": profile.spin_down_power,
        "spin_up_time_s": profile.spin_up_time,
        "spin_down_time_s": profile.spin_down_time,
        "breakeven_override_s": profile.breakeven_override,
    }


def profile_from_payload(payload: Dict[str, Any]) -> DiskPowerProfile:
    """Rebuild a power profile from :func:`profile_to_payload` output."""
    return DiskPowerProfile(
        name=payload["name"],
        idle_power=payload["idle_power_watts"],
        active_power=payload["active_power_watts"],
        standby_power=payload["standby_power_watts"],
        spin_up_power=payload["spin_up_power_watts"],
        spin_down_power=payload["spin_down_power_watts"],
        spin_up_time=payload["spin_up_time_s"],
        spin_down_time=payload["spin_down_time_s"],
        breakeven_override=payload["breakeven_override_s"],
    )


def _stats_to_payload(stats: DiskStats) -> Dict[str, Any]:
    return {
        "state_time_s": {
            state.name: stats.state_time.get(state, 0.0)
            for state in DiskPowerState
        },
        "spin_ups": stats.spin_ups,
        "spin_downs": stats.spin_downs,
        "requests_serviced": stats.requests_serviced,
        "lump_transition_energy_j": stats.lump_transition_energy,
    }


def _stats_from_payload(
    payload: Dict[str, Any], profile: DiskPowerProfile
) -> DiskStats:
    stats = DiskStats(
        profile=profile,
        state_time={
            DiskPowerState[name]: seconds
            for name, seconds in payload["state_time_s"].items()
        },
        spin_ups=payload["spin_ups"],
        spin_downs=payload["spin_downs"],
        requests_serviced=payload["requests_serviced"],
    )
    lump = payload["lump_transition_energy_j"]
    if lump:
        stats.add_transition_energy(lump)
    stats.mark_closed()
    return stats


def _availability_to_payload(availability: AvailabilityReport) -> Dict[str, Any]:
    return {
        "requests_lost": availability.requests_lost,
        "requests_redispatched": availability.requests_redispatched,
        "failover_retries": availability.failover_retries,
        "spin_up_failures": availability.spin_up_failures,
        "disk_failures": availability.disk_failures,
        "transient_outages": availability.transient_outages,
        "downtime_s": {
            str(disk_id): seconds
            for disk_id, seconds in availability.downtime_s.items()
        },
        "disk_seconds": availability.disk_seconds,
    }


def _availability_from_payload(payload: Dict[str, Any]) -> AvailabilityReport:
    return AvailabilityReport(
        requests_lost=payload["requests_lost"],
        requests_redispatched=payload["requests_redispatched"],
        failover_retries=payload["failover_retries"],
        spin_up_failures=payload["spin_up_failures"],
        disk_failures=payload["disk_failures"],
        transient_outages=payload["transient_outages"],
        downtime_s={
            int(disk_id): seconds
            for disk_id, seconds in payload["downtime_s"].items()
        },
        disk_seconds=payload["disk_seconds"],
    )


def _tape_to_payload(tape: TapeTierReport) -> Dict[str, Any]:
    return {
        "sequencer": tape.sequencer,
        "profile_name": tape.profile_name,
        "num_drives": tape.num_drives,
        "hot_capacity": tape.hot_capacity,
        "requests_to_disk": tape.requests_to_disk,
        "requests_to_tape": tape.requests_to_tape,
        "tape_requests_completed": tape.tape_requests_completed,
        "promotions": tape.promotions,
        "demotions": tape.demotions,
        "mounts": tape.mounts,
        "unmounts": tape.unmounts,
        "seek_distance_m": tape.seek_distance_m,
        "tape_energy_j": tape.tape_energy,
        "state_time_s": dict(tape.state_time_s),
        "tape_response_times_s": list(tape.tape_response_times),
    }


def _tape_from_payload(payload: Dict[str, Any]) -> TapeTierReport:
    return TapeTierReport(
        sequencer=payload["sequencer"],
        profile_name=payload["profile_name"],
        num_drives=payload["num_drives"],
        hot_capacity=payload["hot_capacity"],
        requests_to_disk=payload["requests_to_disk"],
        requests_to_tape=payload["requests_to_tape"],
        tape_requests_completed=payload["tape_requests_completed"],
        promotions=payload["promotions"],
        demotions=payload["demotions"],
        mounts=payload["mounts"],
        unmounts=payload["unmounts"],
        seek_distance_m=payload["seek_distance_m"],
        tape_energy=payload["tape_energy_j"],
        state_time_s=dict(payload["state_time_s"]),
        tape_response_times=tuple(payload["tape_response_times_s"]),
    )


def report_to_payload(report: SimulationReport) -> Dict[str, Any]:
    """A report as a JSON-able dict, exact to the last bit.

    ``disk_stats`` keys become strings (JSON object keys); the shared
    power profile is stored once at the top level.  The ``availability``
    and ``tape`` keys are additive: they appear only for fault-injected
    and tiered runs respectively, keeping disk-only no-fault payloads
    byte-identical to schema version 1 output.
    """
    profile: Optional[DiskPowerProfile] = None
    for stats in report.disk_stats.values():
        profile = stats.profile
        break
    payload: Dict[str, Any] = {
        "version": REPORT_SCHEMA_VERSION,
        "scheduler_name": report.scheduler_name,
        "duration_s": report.duration,
        "total_energy_j": report.total_energy,
        "requests_offered": report.requests_offered,
        "requests_completed": report.requests_completed,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "events_processed": report.events_processed,
        "profile": profile_to_payload(profile) if profile is not None else None,
        "disk_stats": {
            str(disk_id): _stats_to_payload(stats)
            for disk_id, stats in report.disk_stats.items()
        },
        "response_times_s": list(report.response_times),
    }
    if report.availability is not None:
        payload["availability"] = _availability_to_payload(report.availability)
    if report.tape is not None:
        payload["tape"] = _tape_to_payload(report.tape)
    return payload


def report_from_payload(payload: Dict[str, Any]) -> SimulationReport:
    """Rebuild a report from :func:`report_to_payload` output."""
    version = payload.get("version")
    if version != REPORT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported report payload version {version!r} "
            f"(expected {REPORT_SCHEMA_VERSION})"
        )
    profile_payload = payload["profile"]
    disk_stats: Dict[int, DiskStats] = {}
    if profile_payload is not None:
        profile = profile_from_payload(profile_payload)
        disk_stats = {
            int(disk_id): _stats_from_payload(stats_payload, profile)
            for disk_id, stats_payload in payload["disk_stats"].items()
        }
    return SimulationReport(
        scheduler_name=payload["scheduler_name"],
        duration=payload["duration_s"],
        total_energy=payload["total_energy_j"],
        disk_stats=disk_stats,
        # A tuple keeps the offline-report contract (`response_times == ()`)
        # intact across the round-trip; canonical JSON is container-agnostic.
        response_times=tuple(payload["response_times_s"]),
        requests_offered=payload["requests_offered"],
        requests_completed=payload["requests_completed"],
        cache_hits=payload["cache_hits"],
        cache_misses=payload["cache_misses"],
        events_processed=payload["events_processed"],
        availability=(
            _availability_from_payload(payload["availability"])
            if "availability" in payload
            else None
        ),
        tape=(
            _tape_from_payload(payload["tape"])
            if "tape" in payload
            else None
        ),
    )


def canonical_report_json(report: SimulationReport) -> str:
    """The canonical byte form used by the determinism test tier."""
    return canonical_json(report_to_payload(report))
