"""``repro-storage bench``: run any figure/ablation by id, record the cost.

Each bench pre-computes its evaluation cells through the
:class:`~repro.experiments.harness.runner.SweepRunner` (persistent cache
in front, process pool behind), hands the payloads to
:mod:`repro.experiments.common`, builds the figure/ablation result, and
writes one schema-versioned ``BENCH_<name>.json`` trajectory document:
wall-clock, simulator events per second, peak RSS, per-point cache
status, and the result series themselves.

This module sits *above* :mod:`repro.experiments.common` in the import
graph (the rest of the harness sits below it) — import it lazily from
user-facing entry points.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.export import figure_to_rows
from repro.errors import ConfigurationError
from repro.experiments import common
from repro.experiments.ablations import ABLATIONS, AblationResult, run_ablation
from repro.experiments.figures import (
    ALPHA_GRID,
    BETA_GRID,
    FIGURES,
    RF_GRID,
    Z_GRID,
    BreakdownResult,
)
from repro.experiments.fault_sweep import (
    FAULT_RATES_PER_S,
    SWEEP_REPLICATION,
    SWEEP_SCHEDULERS,
    SWEEP_TRACE,
    run_fault_sweep,
)
from repro.experiments.harness.cache import RunCache
from repro.experiments.harness.runner import SweepOutcome, SweepRunner
from repro.experiments.harness.schema import BENCH_SCHEMA, validate_bench_payload
from repro.experiments.harness.spec import RunSpec, baseline_of, cell_spec
from repro.experiments.headline import headline_claims
from repro.experiments.serve_scale import run_serve_scale
from repro.experiments.serve_sweep import run_serve_sweep

ALL_KEYS = ("random", "static", "heuristic", "wsc", "mwis")
ONLINE_KEYS = ("random", "static", "heuristic", "wsc")
BREAKDOWN_KEYS = ("random", "static", "wsc", "mwis")

#: specs builder signature: (scale, mwis_scale, seed) -> specs to pre-warm.
_SpecsFn = Callable[[float, float, int], List[RunSpec]]
#: result builder signature: (explicit scale or None) -> (payload, events).
_ResultFn = Callable[[Optional[float]], Tuple[Dict[str, Any], int]]


#: Bench families, in the display order of ``repro-storage bench list``.
BENCH_FAMILIES = ("figures", "ablations", "serve", "tape")


@dataclass(frozen=True)
class BenchDefinition:
    """One runnable bench: its sweep specs and its result builder."""

    bench_id: str
    description: str
    specs: _SpecsFn
    result: _ResultFn
    family: str = "figures"


def _cell(
    trace: str,
    replication_factor: int,
    key: str,
    scale: float,
    mwis_scale: float,
    seed: int,
    **kwargs: float,
) -> RunSpec:
    """One cell spec, respecting the MWIS scale split ``run_cell`` uses."""
    run_scale = mwis_scale if key == "mwis" else scale
    return cell_spec(
        trace, replication_factor, key, scale=run_scale, seed=seed, **kwargs
    )


def _with_baselines(specs: Sequence[RunSpec]) -> List[RunSpec]:
    """Cells plus every distinct always-on baseline they normalise against."""
    out: List[RunSpec] = list(specs)
    seen: Set[RunSpec] = set(out)
    for spec in specs:
        baseline = baseline_of(spec)
        if baseline not in seen:
            seen.add(baseline)
            out.append(baseline)
    return out


def _no_specs(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
    return []


def _energy_specs(trace: str) -> _SpecsFn:
    def build(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
        return _with_baselines(
            [
                _cell(trace, rf, key, scale, mwis_scale, seed)
                for key in ALL_KEYS
                for rf in common.REPLICATION_FACTORS
            ]
        )

    return build


def _spin_specs(trace: str) -> _SpecsFn:
    def build(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
        specs = [
            _cell(trace, rf, key, scale, mwis_scale, seed)
            for key in ALL_KEYS
            for rf in common.REPLICATION_FACTORS
        ]
        # fig7/fig15 normalise MWIS spin ops against Static at MWIS scale.
        specs.extend(
            cell_spec(trace, rf, "static", scale=mwis_scale, seed=seed)
            for rf in common.REPLICATION_FACTORS
        )
        return _with_baselines(specs)

    return build


def _response_specs(trace: str) -> _SpecsFn:
    def build(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
        return _with_baselines(
            [
                _cell(trace, rf, key, scale, mwis_scale, seed)
                for key in ONLINE_KEYS
                for rf in common.REPLICATION_FACTORS
            ]
        )

    return build


def _breakdown_specs(trace: str) -> _SpecsFn:
    def build(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
        return _with_baselines(
            [_cell(trace, 3, key, scale, mwis_scale, seed) for key in BREAKDOWN_KEYS]
        )

    return build


def _fig10_specs(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
    return _with_baselines(
        [
            cell_spec(
                "cello", rf, key, zipf_exponent=z, scale=scale, seed=seed
            )
            for key in ("random", "static", "heuristic")
            for rf in RF_GRID
            for z in Z_GRID
        ]
    )


def _fig11_specs(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
    return _with_baselines(
        [
            cell_spec(
                "cello", 3, "heuristic", alpha=alpha, beta=beta,
                scale=scale, seed=seed,
            )
            for beta in BETA_GRID
            for alpha in ALPHA_GRID
        ]
    )


def _fig12_specs(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
    return _with_baselines(
        [_cell("cello", 3, key, scale, mwis_scale, seed) for key in ONLINE_KEYS]
    )


def _headline_specs(trace: str) -> _SpecsFn:
    def build(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
        specs = [
            _cell(trace, rf, key, scale, mwis_scale, seed)
            for key in ("heuristic", "wsc", "mwis")
            for rf in common.REPLICATION_FACTORS
        ]
        specs.append(_cell(trace, 3, "static", scale, mwis_scale, seed))
        return _with_baselines(specs)

    return build


def _serialize_result(value: Any) -> Dict[str, Any]:
    """Normalise any figure/headline return shape into a JSON object."""
    if isinstance(value, str):
        return {"text": value}
    if isinstance(value, tuple):
        return {"parts": [_serialize_result(part) for part in value]}
    if isinstance(value, dict):
        return {name: _serialize_result(part) for name, part in value.items()}
    if isinstance(value, BreakdownResult):
        return {
            "figure_id": value.figure_id,
            "title": value.title,
            "panels": {
                name: {
                    "num_disks": len(fractions),
                    "standby_share": value.standby_share(name),
                }
                for name, fractions in value.panels.items()
            },
        }
    payload = figure_to_rows(value)
    notes = getattr(value, "notes", None)
    if notes:
        payload["notes"] = list(notes)
    return payload


def _figure_result(figure_id: str) -> _ResultFn:
    def build(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
        return _serialize_result(FIGURES[figure_id]()), 0

    return build


def _headline_result(trace: str) -> _ResultFn:
    def build(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
        claims = headline_claims(trace)
        return (
            {
                "trace": claims.trace,
                "best_energy_reduction": claims.best_energy_reduction,
                "best_energy_cell": list(claims.best_energy_cell),
                "spin_reduction_vs_static": claims.spin_reduction_vs_static,
                "response_reduction_vs_static": (
                    claims.response_reduction_vs_static
                ),
            },
            0,
        )

    return build


def _ablation_result_payload(result: AblationResult) -> Dict[str, Any]:
    return {
        "ablation_id": result.ablation_id,
        "title": result.title,
        "panels": [
            {
                "name": panel.name,
                "x_label": panel.x_label,
                "x_values": list(panel.x_values),
                "series": {
                    name: list(values) for name, values in panel.series.items()
                },
            }
            for panel in result.panels
        ],
    }


def _ablation_result(ablation_id: str) -> _ResultFn:
    def build(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
        result = run_ablation(ablation_id, scale)
        return _ablation_result_payload(result), result.events_processed

    return build


def _fault_sweep_specs(scale: float, mwis_scale: float, seed: int) -> List[RunSpec]:
    return _with_baselines(
        [
            cell_spec(
                SWEEP_TRACE,
                SWEEP_REPLICATION,
                key,
                scale=scale,
                seed=seed,
                fault_rate=rate,
            )
            for key in SWEEP_SCHEDULERS
            for rate in FAULT_RATES_PER_S
        ]
    )


def _fault_sweep_result(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
    # Cell events are already counted by the sweep points; report 0 extra.
    return _ablation_result_payload(run_fault_sweep(scale)), 0


def _serve_sweep_result(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
    # Serve cells run live (no run cache); their engine events are the
    # bench's event count.
    result = run_serve_sweep(scale)
    return _ablation_result_payload(result), result.events_processed


def _serve_scale_result(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
    # Sharded cells run live in worker processes; no run cache either.
    result = run_serve_scale(scale)
    return _ablation_result_payload(result), result.events_processed


def _tape_tier_result(scale: Optional[float]) -> Tuple[Dict[str, Any], int]:
    # Tiered cells run live (the tier axis is not part of the run-cache
    # key space); their engine events are the bench's event count.
    from repro.experiments.tape_tier import run_tape_tier

    result = run_tape_tier(scale)
    return _ablation_result_payload(result), result.events_processed


def _build_registry() -> Dict[str, BenchDefinition]:
    registry: Dict[str, BenchDefinition] = {}

    def add(
        bench_id: str,
        description: str,
        specs: _SpecsFn,
        result: _ResultFn,
        family: str = "figures",
    ) -> None:
        registry[bench_id] = BenchDefinition(
            bench_id, description, specs, result, family
        )

    add("fig5", "power configuration table", _no_specs, _figure_result("fig5"))
    add(
        "fig6", "energy vs replication (cello)",
        _energy_specs("cello"), _figure_result("fig6"),
    )
    add(
        "fig7", "spin ops vs replication (cello)",
        _spin_specs("cello"), _figure_result("fig7"),
    )
    add(
        "fig8", "mean response vs replication (cello)",
        _response_specs("cello"), _figure_result("fig8"),
    )
    add(
        "fig9", "per-disk state breakdown (cello)",
        _breakdown_specs("cello"), _figure_result("fig9"),
    )
    add(
        "fig10", "energy surface over (rf, z)",
        _fig10_specs, _figure_result("fig10"),
    )
    add(
        "fig11", "cost-function trade-off",
        _fig11_specs, _figure_result("fig11"),
    )
    add(
        "fig12", "response-time inverse CDF (cello)",
        _fig12_specs, _figure_result("fig12"),
    )
    add(
        "fig13", "p90 response vs replication (cello)",
        _response_specs("cello"), _figure_result("fig13"),
    )
    add(
        "fig14", "energy vs replication (financial)",
        _energy_specs("financial"), _figure_result("fig14"),
    )
    add(
        "fig15", "spin ops vs replication (financial)",
        _spin_specs("financial"), _figure_result("fig15"),
    )
    add(
        "fig16", "mean response vs replication (financial)",
        _response_specs("financial"), _figure_result("fig16"),
    )
    add(
        "fig17", "per-disk state breakdown (financial)",
        _breakdown_specs("financial"), _figure_result("fig17"),
    )
    add(
        "headline", "the abstract's claims (cello)",
        _headline_specs("cello"), _headline_result("cello"),
    )
    add(
        "fault_sweep",
        "availability vs failure rate (cello, rf=3)",
        _fault_sweep_specs,
        _fault_sweep_result,
        family="ablations",
    )
    add(
        "serve_sweep",
        "live serving: online vs micro-batch across arrival rates",
        _no_specs,
        _serve_sweep_result,
        family="serve",
    )
    add(
        "serve_scale",
        "sharded serving: aggregate events/sec across 1/2/4/8 shards",
        _no_specs,
        _serve_scale_result,
        family="serve",
    )
    add(
        "tape_tier",
        "tiered disk/tape: energy vs latency across tier splits",
        _no_specs,
        _tape_tier_result,
        family="tape",
    )
    for ablation_id in ABLATIONS:
        add(
            ablation_id,
            "ablation sweep (uncached)",
            _no_specs,
            _ablation_result(ablation_id),
            family="ablations",
        )
    return registry


#: Every runnable bench id, in campaign order.
BENCHES: Dict[str, BenchDefinition] = _build_registry()


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` off-POSIX."""
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024  # Linux reports kilobytes


def _point_payload(outcome: SweepOutcome) -> List[Dict[str, Any]]:
    return [
        {
            "spec": point.spec.key_payload(),
            "label": point.spec.label(),
            "cached": point.cached,
            "wall_s": point.wall_s,
            "events_processed": point.events_processed,
        }
        for point in outcome.points
    ]


def run_bench(
    bench_id: str,
    *,
    scale: Optional[float] = None,
    mwis_scale: Optional[float] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    output_dir: Union[str, Path] = ".",
) -> Tuple[Dict[str, Any], Path]:
    """Run one bench end-to-end and write its ``BENCH_<id>.json``.

    Returns the (validated) document and the path it was written to.
    Raises :class:`~repro.errors.ConfigurationError` on an unknown bench
    id or if the assembled document violates the bench schema.
    """
    try:
        bench = BENCHES[bench_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench {bench_id!r}; known: {sorted(BENCHES)}"
        )
    common.configure(scale=scale, mwis_scale=mwis_scale, seed=seed)
    if cache is None:
        cache = common.persistent_cache()
    else:
        common.set_persistent_cache(cache)
    common.clear_caches()

    started = time.perf_counter()
    specs = bench.specs(common.SCALE, common.MWIS_SCALE, common.BASE_SEED)
    outcome = SweepRunner(cache=cache, jobs=jobs).run(specs)
    common.prime_payloads(outcome.payloads)
    result, extra_events = bench.result(scale)
    wall_clock_s = time.perf_counter() - started

    events = outcome.events_processed + extra_events
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": bench_id,
        "created_unix": time.time(),
        "scale": common.SCALE,
        "mwis_scale": common.MWIS_SCALE,
        "seed": common.BASE_SEED,
        "jobs": jobs,
        "wall_clock_s": wall_clock_s,
        "events_processed": events,
        "events_per_sec": events / wall_clock_s if wall_clock_s > 0 else 0.0,
        "peak_rss_bytes": _peak_rss_bytes(),
        "cache": {
            "enabled": cache.enabled,
            "hits": outcome.cache_hits,
            "misses": outcome.cache_misses,
            "corrupt": outcome.cache_corrupt,
            "hit_rate": outcome.hit_rate,
        },
        "points": _point_payload(outcome),
        "result": result,
    }
    violations = validate_bench_payload(payload)
    if violations:
        raise ConfigurationError(
            "assembled bench document violates the schema: "
            + "; ".join(violations)
        )
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{bench_id}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload, path


def run_all(
    *,
    scale: Optional[float] = None,
    mwis_scale: Optional[float] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    output_dir: Union[str, Path] = ".",
) -> List[Path]:
    """Run every bench in registry order; returns the written paths."""
    paths: List[Path] = []
    for bench_id in BENCHES:
        _payload, path = run_bench(
            bench_id,
            scale=scale,
            mwis_scale=mwis_scale,
            seed=seed,
            jobs=jobs,
            cache=cache,
            output_dir=output_dir,
        )
        paths.append(path)
    return paths
