"""The versioned ``BENCH_<name>.json`` schema and its validator.

Every ``repro-storage bench`` invocation emits one machine-readable
document recording what was run and what it cost — the repo's perf
trajectory.  The validator is deliberately dependency-free (no
jsonschema) and returns a list of human-readable violations so CI can
fail loudly on a malformed document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List, Mapping, Tuple, Union

#: Current document schema identifier.
BENCH_SCHEMA = "repro-bench/1"

_NUMBER: Tuple[type, ...] = (int, float)
_Kinds = Union[type, Tuple[type, ...]]


def _require(
    errors: List[str],
    payload: Mapping[str, Any],
    key: str,
    kinds: _Kinds,
    where: str = "",
) -> Any:
    prefix = f"{where}." if where else ""
    if key not in payload:
        errors.append(f"missing field {prefix}{key}")
        return None
    value = payload[key]
    if isinstance(value, bool) and bool not in (
        kinds if isinstance(kinds, tuple) else (kinds,)
    ):
        errors.append(f"{prefix}{key} must not be a bool")
        return None
    if not isinstance(value, kinds):
        kind_names = (
            "/".join(k.__name__ for k in kinds)
            if isinstance(kinds, tuple)
            else kinds.__name__
        )
        errors.append(
            f"{prefix}{key} must be {kind_names}, got {type(value).__name__}"
        )
        return None
    return value


def _non_negative(
    errors: List[str], value: Any, name: str
) -> None:
    if isinstance(value, _NUMBER) and not isinstance(value, bool) and value < 0:
        errors.append(f"{name} must be >= 0, got {value}")


def validate_bench_payload(payload: Mapping[str, Any]) -> List[str]:
    """All schema violations of one bench document (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, Mapping):
        return ["bench document must be a JSON object"]

    schema = _require(errors, payload, "schema", str)
    if schema is not None and schema != BENCH_SCHEMA:
        errors.append(f"schema must be {BENCH_SCHEMA!r}, got {schema!r}")
    _require(errors, payload, "bench", str)
    _require(errors, payload, "created_unix", _NUMBER)
    scale = _require(errors, payload, "scale", _NUMBER)
    if scale is not None and scale <= 0:
        errors.append(f"scale must be > 0, got {scale}")
    mwis_scale = _require(errors, payload, "mwis_scale", _NUMBER)
    if mwis_scale is not None and mwis_scale <= 0:
        errors.append(f"mwis_scale must be > 0, got {mwis_scale}")
    _require(errors, payload, "seed", int)
    jobs = _require(errors, payload, "jobs", int)
    if jobs is not None and jobs < 1:
        errors.append(f"jobs must be >= 1, got {jobs}")
    wall = _require(errors, payload, "wall_clock_s", _NUMBER)
    _non_negative(errors, wall, "wall_clock_s")
    events = _require(errors, payload, "events_processed", int)
    _non_negative(errors, events, "events_processed")
    rate = _require(errors, payload, "events_per_sec", _NUMBER)
    _non_negative(errors, rate, "events_per_sec")
    if "peak_rss_bytes" not in payload:
        errors.append("missing field peak_rss_bytes")
    elif payload["peak_rss_bytes"] is not None:
        rss = payload["peak_rss_bytes"]
        if isinstance(rss, bool) or not isinstance(rss, int):
            errors.append("peak_rss_bytes must be an int or null")
        else:
            _non_negative(errors, rss, "peak_rss_bytes")

    cache = _require(errors, payload, "cache", dict)
    if cache is not None:
        _require(errors, cache, "enabled", bool, where="cache")
        for counter in ("hits", "misses", "corrupt"):
            value = _require(errors, cache, counter, int, where="cache")
            _non_negative(errors, value, f"cache.{counter}")
        hit_rate = _require(errors, cache, "hit_rate", _NUMBER, where="cache")
        if hit_rate is not None and not 0.0 <= hit_rate <= 1.0:
            errors.append(f"cache.hit_rate must be in [0, 1], got {hit_rate}")

    points = _require(errors, payload, "points", list)
    if points is not None:
        for index, point in enumerate(points):
            where = f"points[{index}]"
            if not isinstance(point, Mapping):
                errors.append(f"{where} must be an object")
                continue
            _require(errors, point, "spec", dict, where=where)
            _require(errors, point, "cached", bool, where=where)
            point_wall = _require(errors, point, "wall_s", _NUMBER, where=where)
            _non_negative(errors, point_wall, f"{where}.wall_s")
            point_events = _require(
                errors, point, "events_processed", int, where=where
            )
            _non_negative(errors, point_events, f"{where}.events_processed")

    _require(errors, payload, "result", dict)
    return errors


def validate_bench_file(path: Union[str, Path]) -> List[str]:
    """Validate one ``BENCH_*.json`` file on disk."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        return [f"invalid JSON in {path}: {exc}"]
    if not isinstance(payload, dict):
        return [f"{path}: bench document must be a JSON object"]
    return validate_bench_payload(payload)
