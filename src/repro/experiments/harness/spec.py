"""Run specifications: the content-addressed identity of one simulation.

A :class:`RunSpec` names everything that determines a run's result —
trace, placement knobs, scheduler, cost-function parameters, scale, seed
and power profile — and nothing else.  It is hashable (the in-memory
memo key), picklable (crosses the :class:`~concurrent.futures.
ProcessPoolExecutor` boundary) and canonically serialisable (the
persistent cache key), so the same spec resolves to the same cached
result across processes and invocations.

Two kinds exist:

* ``cell`` — one (trace, placement, scheduler) cell of the evaluation
  matrix, simulated (or, for MWIS, scheduled offline and evaluated
  analytically);
* ``baseline`` — the always-on normalisation run for a (trace, scale,
  seed, profile) combination.  Placement/scheduler fields are pinned to
  fixed values so equivalent baselines share one cache entry.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from dataclasses import dataclass

from repro.errors import ConfigurationError

KIND_CELL = "cell"
KIND_BASELINE = "baseline"

TRACES: Tuple[str, ...] = ("cello", "financial")
SCHEDULER_KEYS: Tuple[str, ...] = ("random", "static", "heuristic", "wsc", "mwis")
BASELINE_SCHEDULER_KEY = "always-on"

#: Profile used by the paper's evaluation (see ``repro.power.profile``).
DEFAULT_PROFILE = "paper-evaluation"


@dataclass(frozen=True)
class RunSpec:
    """Identity of one run.

    Attributes:
        kind: ``"cell"`` or ``"baseline"``.
        trace: Synthetic trace family (``"cello"`` or ``"financial"``).
        replication_factor: Replicas per data item (paper: 1-5).
        scheduler_key: Scheduler under test, or ``"always-on"``.
        zipf_exponent: Placement skew ``z`` of the original copies.
        alpha: Cost-function energy weight (dimensionless).
        beta: Cost-function balance weight (dimensionless).
        scale: Trace/disk scale factor (1.0 = the paper's full campaign).
        seed: Base RNG seed; workload, placement and service-time draws
            all derive from it.
        profile: Power-profile name (resolved via ``repro.power.profile``).
        fault_rate: Per-disk permanent failures per simulated second
            (``FaultPlan.canonical``); 0.0 — the default everywhere but
            the fault sweep — runs the exact pre-fault code path.
    """

    kind: str
    trace: str
    replication_factor: int
    scheduler_key: str
    zipf_exponent: float
    alpha: float
    beta: float
    scale: float
    seed: int
    profile: str
    fault_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (KIND_CELL, KIND_BASELINE):
            raise ConfigurationError(f"unknown spec kind {self.kind!r}")
        if self.trace not in TRACES:
            raise ConfigurationError(f"unknown trace {self.trace!r}")
        if self.kind == KIND_CELL and self.scheduler_key not in SCHEDULER_KEYS:
            raise ConfigurationError(
                f"unknown scheduler key {self.scheduler_key!r}"
            )
        if self.kind == KIND_BASELINE and self.scheduler_key != BASELINE_SCHEDULER_KEY:
            raise ConfigurationError(
                "baseline specs must use the always-on scheduler key"
            )
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if self.scale <= 0:
            raise ConfigurationError("scale must be > 0")
        if self.fault_rate < 0:
            raise ConfigurationError("fault_rate must be >= 0")
        if self.fault_rate > 0 and self.kind == KIND_BASELINE:
            raise ConfigurationError(
                "baseline (always-on) specs must stay fault-free"
            )
        if self.fault_rate > 0 and self.scheduler_key == "mwis":
            raise ConfigurationError(
                "offline mwis schedules cannot be fault-injected"
            )

    def key_payload(self) -> Dict[str, Any]:
        """The spec as a plain dict — the canonical cache-key material."""
        return {
            "kind": self.kind,
            "trace": self.trace,
            "replication_factor": self.replication_factor,
            "scheduler_key": self.scheduler_key,
            "zipf_exponent": self.zipf_exponent,
            "alpha": self.alpha,
            "beta": self.beta,
            "scale": self.scale,
            "seed": self.seed,
            "profile": self.profile,
            "fault_rate": self.fault_rate,
        }

    def label(self) -> str:
        """Short human-readable identifier for progress/bench output."""
        if self.kind == KIND_BASELINE:
            return f"{self.trace}/always-on@{self.scale:g}"
        label = (
            f"{self.trace}/rf{self.replication_factor}/{self.scheduler_key}"
            f"@{self.scale:g}"
        )
        if self.fault_rate > 0:
            label += f"/f{self.fault_rate:g}"
        return label


def cell_spec(
    trace: str,
    replication_factor: int,
    scheduler_key: str,
    *,
    zipf_exponent: float = 1.0,
    alpha: float = 0.2,
    beta: float = 100.0,
    scale: float,
    seed: int,
    profile: str = DEFAULT_PROFILE,
    fault_rate: float = 0.0,
) -> RunSpec:
    """One evaluation-matrix cell (simulated or offline-evaluated).

    ``fault_rate`` is in per-disk permanent failures per simulated
    second; the default 0.0 disables fault injection entirely.
    """
    return RunSpec(
        kind=KIND_CELL,
        trace=trace,
        replication_factor=replication_factor,
        scheduler_key=scheduler_key,
        zipf_exponent=zipf_exponent,
        alpha=alpha,
        beta=beta,
        scale=scale,
        seed=seed,
        profile=profile,
        fault_rate=fault_rate,
    )


def baseline_spec(
    trace: str,
    *,
    scale: float,
    seed: int,
    profile: str = DEFAULT_PROFILE,
) -> RunSpec:
    """The always-on normalisation run for a (trace, scale, seed)."""
    return RunSpec(
        kind=KIND_BASELINE,
        trace=trace,
        replication_factor=1,
        scheduler_key=BASELINE_SCHEDULER_KEY,
        zipf_exponent=1.0,
        alpha=0.0,
        beta=0.0,
        scale=scale,
        seed=seed,
        profile=profile,
    )


def baseline_of(spec: RunSpec) -> RunSpec:
    """The baseline spec a cell's energy is normalised against."""
    return baseline_spec(
        spec.trace, scale=spec.scale, seed=spec.seed, profile=spec.profile
    )
