"""Ablation sweeps beyond the paper's figures, runnable by id.

Each ablation used to live inline in one ``benchmarks/bench_ablation_*``
file; the sweeps now live here so the bench files are thin assertion
wrappers and ``repro-storage bench ablation_<name>`` can run, time and
record any of them.  Every sweep returns an :class:`AblationResult` —
one or more :class:`Panel` series blocks plus the total simulator event
count — which serialises straight into the ``BENCH_*.json`` trajectory
documents.

These sweeps exercise knobs (block caches, power policies, custom
traces) that a :class:`~repro.experiments.harness.spec.RunSpec` does not
encode, so they run outside the persistent run cache; they are sized
(default scale 0.1-0.2) to stay cheap anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.idleness import period_summary, standby_periods_of_report
from repro.analysis.tables import format_series_table
from repro.cache.policy import BlockCache, LRUBlockCache, PowerAwareLRUCache
from repro.core.covering_scheduler import CoveringSetScheduler
from repro.core.heuristic import HeuristicScheduler
from repro.core.mwis import MWISOfflineScheduler
from repro.core.offline import OfflineEvaluator
from repro.core.prediction import PredictiveHeuristicScheduler
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import OnlineScheduler, SystemView
from repro.core.writeoffload import WriteOffloadingScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.errors import ConfigurationError
from repro.experiments import common
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.oracle import empirical_competitive_ratio
from repro.power.policy import ScaledBreakevenPolicy
from repro.power.profile import PAPER_EVAL
from repro.sim.runner import always_on_baseline, simulate
from repro.traces.cello import CelloLikeConfig, generate_cello_like
from repro.traces.record import TraceRecord
from repro.traces.synthetic import (
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
    ZipfPopularity,
    coefficient_of_variation,
    inter_arrival_gaps,
)
from repro.traces.workload import Workload
from repro.types import DiskId, Request

from dataclasses import replace


@dataclass(frozen=True)
class Panel:
    """One series block of an ablation (x axis + named series)."""

    name: str
    x_label: str
    x_values: Sequence[object]
    series: Dict[str, List[float]]
    precision: int = 3

    def render(self) -> str:
        """The panel as a paper-plot-style ASCII table."""
        return format_series_table(
            self.x_label,
            self.x_values,
            self.series,
            title=self.name,
            precision=self.precision,
        )


@dataclass
class AblationResult:
    """All panels of one ablation plus measurement metadata."""

    ablation_id: str
    title: str
    panels: List[Panel] = field(default_factory=list)
    events_processed: int = 0

    def panel(self, name: str) -> Panel:
        """Look a panel up by name (assertion helper for the benches)."""
        for panel in self.panels:
            if panel.name == name:
                return panel
        raise ConfigurationError(
            f"no panel {name!r} in {self.ablation_id}; "
            f"have {[p.name for p in self.panels]}"
        )

    def series(self, panel_name: str, series_name: str) -> List[float]:
        """One series of one panel (assertion helper)."""
        return self.panel(panel_name).series[series_name]

    def render(self) -> str:
        """All panels as ASCII tables."""
        return "\n\n".join(panel.render() for panel in self.panels)


# ---------------------------------------------------------------------------
# ablation_threshold — the 2CPM idleness threshold


class _RecordingScheduler(OnlineScheduler):
    """Wraps a scheduler and records each disk's arrival chain."""

    def __init__(self, inner: OnlineScheduler):
        self._inner = inner
        self.chains: Dict[DiskId, List[float]] = {}

    def choose(self, request: Request, view: SystemView) -> DiskId:
        disk_id = self._inner.choose(request, view)
        self.chains.setdefault(disk_id, []).append(view.now)
        return disk_id

    @property
    def name(self) -> str:
        return self._inner.name


THRESHOLD_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


def run_threshold(scale: Optional[float] = None) -> AblationResult:
    """Sweep the spin-down threshold as a multiple of the breakeven TB.

    Expected story: aggressive thresholds (<< TB) burn transition energy
    and spin-up delays; conservative ones (>> TB) burn idle energy; the
    breakeven threshold (x1) sits near the energy minimum, and the
    measured 2CPM-vs-oracle competitive ratio stays far below the
    worst-case 2.
    """
    scale = 0.2 if scale is None else scale
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, scale)
    base_config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, base_config)
    events = baseline.events_processed
    energies, responses, ratios = [], [], []
    for factor in THRESHOLD_FACTORS:
        config = replace(base_config, policy=ScaledBreakevenPolicy(factor))
        scheduler = _RecordingScheduler(common.make_scheduler_for_key("heuristic"))
        report = simulate(requests, catalog, scheduler, config)
        events += report.events_processed
        energies.append(report.total_energy / baseline.total_energy)
        responses.append(report.mean_response_time)
        ratios.append(
            empirical_competitive_ratio(
                PAPER_EVAL, list(scheduler.chains.values()), report.duration
            )
        )
    return AblationResult(
        ablation_id="ablation_threshold",
        title="spin-down threshold (cello, rf=3, Heuristic)",
        panels=[
            Panel(
                name="ablation: spin-down threshold (cello, rf=3, Heuristic)",
                x_label="threshold xTB",
                x_values=THRESHOLD_FACTORS,
                series={
                    "energy vs always-on": energies,
                    "mean response (s)": responses,
                    "2CPM/oracle ratio": ratios,
                },
            )
        ],
        events_processed=events,
    )


# ---------------------------------------------------------------------------
# ablation_batch_interval — the WSC batch scheduling interval


BATCH_INTERVALS = (0.01, 0.1, 1.0, 5.0)


def run_batch_interval(scale: Optional[float] = None) -> AblationResult:
    """Sweep the WSC batch interval (the paper fixes 0.1 s).

    A longer interval batches more requests per set-cover instance
    (better covers, fewer woken disks) but every request eats the
    queueing delay.
    """
    scale = 0.2 if scale is None else scale
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, scale)
    config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, config)
    events = baseline.events_processed
    energies, responses, p90s = [], [], []
    for interval in BATCH_INTERVALS:
        scheduler = WSCBatchScheduler(interval=interval)
        report = simulate(requests, catalog, scheduler, config)
        events += report.events_processed
        energies.append(report.total_energy / baseline.total_energy)
        responses.append(report.mean_response_time)
        p90s.append(report.response_percentile(0.9))
    return AblationResult(
        ablation_id="ablation_batch_interval",
        title="WSC batch interval (cello, rf=3)",
        panels=[
            Panel(
                name="ablation: WSC batch interval (cello, rf=3)",
                x_label="interval (s)",
                x_values=BATCH_INTERVALS,
                series={
                    "energy vs always-on": energies,
                    "mean response (s)": responses,
                    "p90 response (s)": p90s,
                },
            )
        ],
        events_processed=events,
    )


# ---------------------------------------------------------------------------
# ablation_cache — power-aware block caching in front of the scheduler


CACHE_CAPACITIES = (200, 1000)


def run_cache(scale: Optional[float] = None) -> AblationResult:
    """Heuristic with no cache, plain LRU and PA-LRU at several sizes.

    The paper's related work (Zhu & Zhou) argues caching is complementary
    to energy-aware scheduling; power-aware eviction (spare the blocks of
    sleeping disks) turns hits into avoided spin-ups.
    """
    scale = 0.2 if scale is None else scale
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, scale)
    base_config = common.make_config(disks)
    baseline = always_on_baseline(requests, catalog, base_config)
    events = baseline.events_processed
    labels: List[str] = []
    energies: List[float] = []
    hit_ratios: List[float] = []
    responses: List[float] = []

    def run(label: str, factory: Optional[Callable[[], BlockCache]]) -> None:
        nonlocal events
        config = (
            base_config
            if factory is None
            else replace(base_config, cache_factory=factory)
        )
        scheduler = common.make_scheduler_for_key("heuristic")
        report = simulate(requests, catalog, scheduler, config)
        events += report.events_processed
        labels.append(label)
        energies.append(report.total_energy / baseline.total_energy)
        hit_ratios.append(report.cache_hit_ratio)
        responses.append(report.mean_response_time)

    run("no cache", None)
    for capacity in CACHE_CAPACITIES:
        run(f"lru({capacity})", lambda c=capacity: LRUBlockCache(c))
        run(
            f"pa-lru({capacity})",
            lambda c=capacity: PowerAwareLRUCache(c, scan_depth=16),
        )
    return AblationResult(
        ablation_id="ablation_cache",
        title="block cache (cello, rf=3, Heuristic)",
        panels=[
            Panel(
                name="ablation: block cache (cello, rf=3, Heuristic)",
                x_label="cache",
                x_values=labels,
                series={
                    "energy vs always-on": energies,
                    "hit ratio": hit_ratios,
                    "mean response (s)": responses,
                },
            )
        ],
        events_processed=events,
    )


# ---------------------------------------------------------------------------
# ablation_mwis_solver — solver choice and graph-construction cap


MWIS_CAPS = (1, 2, 4, 8)
MWIS_METHODS = ("gwmin", "gwmin2", "min-degree")


def run_mwis_solver(scale: Optional[float] = None) -> AblationResult:
    """Compare MWIS greedies and sweep the successor cap.

    Expected story: weighted greedies (GWMIN/GWMIN2) beat the unweighted
    min-degree rule, and a small cap already captures almost all of the
    achievable saving.
    """
    scale = 0.1 if scale is None else scale
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, scale)
    config = common.make_config(disks)
    problem = SchedulingProblem.build(requests, catalog, config.profile, disks)
    evaluator = OfflineEvaluator(problem)

    weights: List[float] = []
    true_savings: List[float] = []
    energies: List[float] = []
    for method in MWIS_METHODS:
        scheduler = MWISOfflineScheduler(method=method, neighborhood=4)
        result = scheduler.schedule_detailed(problem)
        evaluation = evaluator.evaluate(result.assignment)
        weights.append(result.estimated_saving)
        true_savings.append(evaluation.total_saving)
        energies.append(evaluation.normalized_energy)

    cap_savings: List[float] = []
    cap_nodes: List[float] = []
    for cap in MWIS_CAPS:
        scheduler = MWISOfflineScheduler(method="gwmin", neighborhood=cap)
        result = scheduler.schedule_detailed(problem)
        evaluation = evaluator.evaluate(result.assignment)
        cap_savings.append(evaluation.total_saving)
        cap_nodes.append(float(result.num_nodes))

    return AblationResult(
        ablation_id="ablation_mwis_solver",
        title="MWIS solver and successor cap (cello, rf=3)",
        panels=[
            Panel(
                name="ablation: MWIS solver (cello, rf=3, cap=4)",
                x_label="solver",
                x_values=MWIS_METHODS,
                series={
                    "MWIS weight": weights,
                    "true saving": true_savings,
                    "energy vs always-on": energies,
                },
            ),
            Panel(
                name="ablation: successor cap (gwmin)",
                x_label="cap",
                x_values=MWIS_CAPS,
                series={"true saving (J)": cap_savings, "graph nodes": cap_nodes},
                precision=0,
            ),
        ],
    )


# ---------------------------------------------------------------------------
# ablation_burstiness — arrival burstiness (Appendix A.4)


BURSTINESS_NUM_REQUESTS = 14_000
BURSTINESS_NUM_DATA = 6_000
BURSTINESS_NUM_DISKS = 36
BURSTINESS_RATE = 4.3  # matches the scaled Cello-like mean rate here

BURSTINESS_PROCESSES: Tuple[Tuple[str, object], ...] = (
    ("mmpp (cello-like)", MMPPArrivals(24.0, 0.6, 4.0, 22.0)),
    ("poisson (financial-like)", PoissonArrivals(BURSTINESS_RATE)),
    ("pareto (heavy tail)", ParetoArrivals(BURSTINESS_RATE, shape=1.6)),
)


def run_burstiness(scale: Optional[float] = None) -> AblationResult:
    """Isolate burstiness: three arrival models at one mean rate.

    The paper attributes the Cello-vs-Financial1 response-time gap
    entirely to burstiness; this sweep varies only the arrival process.
    ``scale`` scales the request count (default 1.0 of the 14 000).
    """
    requests_count = (
        BURSTINESS_NUM_REQUESTS
        if scale is None
        else max(1000, int(BURSTINESS_NUM_REQUESTS * scale / 0.2))
    )
    labels: List[str] = []
    cvs: List[float] = []
    energies: List[float] = []
    responses: List[float] = []
    p90s: List[float] = []
    events = 0
    for label, process in BURSTINESS_PROCESSES:
        rng = random.Random(7)
        times = process.generate(requests_count, rng)
        popularity = ZipfPopularity(BURSTINESS_NUM_DATA, 0.9)
        records = [
            TraceRecord(time=t, data_key=popularity.sample(rng)) for t in times
        ]
        workload = Workload(records)
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(replication_factor=3),
            num_disks=BURSTINESS_NUM_DISKS,
            seed=8,
        )
        config = common.make_config(BURSTINESS_NUM_DISKS)
        baseline = always_on_baseline(requests, catalog, config)
        report = simulate(requests, catalog, HeuristicScheduler(), config)
        events += baseline.events_processed + report.events_processed
        labels.append(label)
        cvs.append(coefficient_of_variation(inter_arrival_gaps(times)))
        energies.append(report.total_energy / baseline.total_energy)
        responses.append(report.mean_response_time)
        p90s.append(report.response_percentile(0.9))
    return AblationResult(
        ablation_id="ablation_burstiness",
        title="arrival burstiness (Heuristic, rf=3, same rate)",
        panels=[
            Panel(
                name="ablation: arrival burstiness (Heuristic, rf=3, same rate)",
                x_label="arrivals",
                x_values=labels,
                series={
                    "CV": cvs,
                    "energy vs always-on": energies,
                    "mean response (s)": responses,
                    "p90 response (s)": p90s,
                },
            )
        ],
        events_processed=events,
    )


# ---------------------------------------------------------------------------
# ablation_idle_periods — inactivity-period reshaping (problem (b))


IDLE_SCHEDULERS = ("random", "static", "heuristic", "wsc")


def run_idle_periods(scale: Optional[float] = None) -> AblationResult:
    """Measure the standby-period distribution per scheduler.

    Energy-aware scheduling re-shapes the workload: few disks absorb the
    traffic, the rest accumulate long standby periods — the paper's
    Section 1 problem (b), measured from recorded transition logs.
    """
    scale = 0.2 if scale is None else scale
    requests, catalog, disks = common.get_binding("cello", 3, 1.0, scale)
    config = replace(common.make_config(disks), record_transitions=True)
    counts: List[float] = []
    means: List[float] = []
    longests: List[float] = []
    totals: List[float] = []
    events = 0
    for key in IDLE_SCHEDULERS:
        scheduler = common.make_scheduler_for_key(key)
        report = simulate(requests, catalog, scheduler, config)
        events += report.events_processed
        summary = period_summary(standby_periods_of_report(report))
        counts.append(float(summary.count))
        means.append(summary.mean)
        longests.append(summary.longest)
        totals.append(summary.total)
    return AblationResult(
        ablation_id="ablation_idle_periods",
        title="standby-period reshaping (cello, rf=3)",
        panels=[
            Panel(
                name="ablation: standby-period reshaping (cello, rf=3)",
                x_label="scheduler",
                x_values=list(IDLE_SCHEDULERS),
                series={
                    "standby periods": counts,
                    "mean (s)": means,
                    "longest (s)": longests,
                    "total standby (s)": totals,
                },
                precision=0,
            )
        ],
        events_processed=events,
    )


# ---------------------------------------------------------------------------
# ablation_extensions — the paper-suggested extensions


EXTENSIONS_NUM_DISKS = 36


def run_extensions(scale: Optional[float] = None) -> AblationResult:
    """Prediction, write off-loading and covering-subset scheduling.

    Three ideas the paper sketches but does not evaluate: the
    EWMA-discounted cost function vs the plain Heuristic (reads), a
    70%-write workload with and without off-loading, and concentrating
    reads on a minimal covering group of disks.
    """
    scale = 0.2 if scale is None else scale
    config = common.make_config(EXTENSIONS_NUM_DISKS)
    events = 0

    read_workload = Workload(
        generate_cello_like(CelloLikeConfig().scaled(scale), seed=1)
    )
    requests, catalog = read_workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=EXTENSIONS_NUM_DISKS,
        seed=8,
    )
    baseline = always_on_baseline(requests, catalog, config)
    events += baseline.events_processed
    read_labels: List[str] = []
    read_energies: List[float] = []
    read_responses: List[float] = []
    for scheduler in (
        HeuristicScheduler(),
        PredictiveHeuristicScheduler(),
        CoveringSetScheduler(catalog),
    ):
        report = simulate(requests, catalog, scheduler, config)
        events += report.events_processed
        read_labels.append(scheduler.name)
        read_energies.append(report.total_energy / baseline.total_energy)
        read_responses.append(report.mean_response_time)

    write_config = CelloLikeConfig(
        num_requests=int(70_000 * scale),
        num_data=int(30_000 * scale),
        burst_rate=120.0 * scale,
        quiet_rate=3.0 * scale,
        read_fraction=0.3,
    )
    write_workload = Workload(
        generate_cello_like(write_config, seed=2), include_writes=True
    )
    wrequests, wcatalog = write_workload.bind(
        ZipfOriginalUniformReplicas(replication_factor=3),
        num_disks=EXTENSIONS_NUM_DISKS,
        seed=8,
    )
    wbaseline = always_on_baseline(wrequests, wcatalog, config)
    events += wbaseline.events_processed
    offloader = WriteOffloadingScheduler(HeuristicScheduler())
    write_labels: List[str] = []
    write_energies: List[float] = []
    write_responses: List[float] = []
    for scheduler in (HeuristicScheduler(), offloader):
        report = simulate(wrequests, wcatalog, scheduler, config)
        events += report.events_processed
        write_labels.append(scheduler.name)
        write_energies.append(report.total_energy / wbaseline.total_energy)
        write_responses.append(report.mean_response_time)

    result = AblationResult(
        ablation_id="ablation_extensions",
        title="paper-suggested extensions (cello, rf=3)",
        panels=[
            Panel(
                name="ablation: extensions, read workload (cello, rf=3)",
                x_label="scheduler",
                x_values=read_labels,
                series={
                    "energy vs always-on": read_energies,
                    "mean response (s)": read_responses,
                },
            ),
            Panel(
                name="ablation: extensions, 70% writes (cello, rf=3)",
                x_label="scheduler",
                x_values=write_labels,
                series={
                    "energy vs always-on": write_energies,
                    "mean response (s)": write_responses,
                },
            ),
        ],
        events_processed=events,
    )
    # Assertion hook the bench file needs: did off-loading divert writes?
    result.total_offloaded = offloader.total_offloaded  # type: ignore[attr-defined]
    return result


#: Registry consumed by the bench CLI (`repro-storage bench ablation_*`).
ABLATIONS: Dict[str, Callable[[Optional[float]], AblationResult]] = {
    "ablation_threshold": run_threshold,
    "ablation_batch_interval": run_batch_interval,
    "ablation_cache": run_cache,
    "ablation_mwis_solver": run_mwis_solver,
    "ablation_burstiness": run_burstiness,
    "ablation_idle_periods": run_idle_periods,
    "ablation_extensions": run_extensions,
}


def run_ablation(
    ablation_id: str, scale: Optional[float] = None
) -> AblationResult:
    """Dispatch one ablation by id."""
    try:
        sweep = ABLATIONS[ablation_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown ablation {ablation_id!r}; known: {sorted(ABLATIONS)}"
        )
    return sweep(scale)
