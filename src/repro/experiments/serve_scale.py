"""Serve scale-out: aggregate throughput across 1/2/4/8 shards.

The same open-loop workload is served by sharded deployments of growing
width; every cell is one full multi-process run through the consistent-
hash router (:mod:`repro.serve.shard`). Two throughput readings per
cell:

* **wall** — engine events per raw router wall second. Honest but
  machine-bound: on a single-core host the workers time-slice and the
  wall rate barely moves with the shard count.
* **critical path** — engine events per ``router overhead + slowest
  shard compute`` second, each term measured in-process. This is the
  quantity an N-core host's wall clock approaches, and the one that
  shows near-linear scale-out on any machine: each shard owns ~1/N of
  the keyspace, so the slowest shard's compute shrinks ~linearly.

The ``speedup (critical path)`` panel is the acceptance gate: 4 shards
must clear 3x over the 1-shard cell of the same policy. Outcome quality
(completed fraction) is reported alongside to show scale-out does not
trade away availability.

The **degraded** panels rerun the multi-shard cells with cross-shard
replication on (``shard_replication_factor = 2``) and the last shard
SIGKILLed mid-schedule, unsupervised: every request fails over to the
surviving replica shards. They report what the self-healing tier costs
and buys — throughput with a shard-sized hole in the fleet, and the
availability the replicas preserve through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.ablations import AblationResult, Panel
from repro.serve.loadgen import LoadgenConfig, tally_outcomes
from repro.serve.service import POLICIES
from repro.serve.shard import ShardKill, ShardedServiceConfig, run_sharded

#: Deployment widths of the sweep columns.
SCALE_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Fleet size: divisible by every shard count, and 8 shards still hold
#: 6 disks each — double the replication factor.
SCALE_DISKS = 48

#: Data population (spread across shards by the routing ring).
SCALE_DATA = 4_000

#: Requests per cell at scale 1.0.
SCALE_REQUESTS = 6_000

#: Mean Poisson arrival rate (requests/second).
SCALE_RATE_PER_S = 300.0

#: Timing rounds per policy. Outcomes are identical across rounds (the
#: virtual timeline is deterministic); only the CPU-clock readings vary
#: with machine conditions. Each round runs the *whole* shard-count
#: column back to back, so the speedup ratio is paired — host-speed
#: drift between cells minutes apart cancels out of the ratio — and
#: each cell/ratio reports its best round, the same best-of-N
#: discipline as ``repro.perf``.
SCALE_REPEATS = 3


def run_serve_scale(
    scale: Optional[float] = None,
    shard_counts: Sequence[int] = SCALE_SHARD_COUNTS,
    seed: int = 3,
    multiprocess: bool = True,
    repeats: int = SCALE_REPEATS,
) -> AblationResult:
    """Sweep shard counts across both serving policies.

    Args:
        scale: Optional multiplier on the per-cell request count (the
            bench tier's usual knob; ``None`` = 1.0).
        shard_counts: Deployment widths to sweep.
        seed: Deployment + workload base seed.
        multiprocess: Worker processes (the default, and the point);
            False runs the serial reference path, where the critical
            path degenerates to the wall path.
        repeats: Timing rounds per policy; each round measures every
            shard count back to back and the speedup is the best
            *paired* ratio across rounds.
    """
    num_requests = max(1, round(SCALE_REQUESTS * (scale if scale else 1.0)))
    rounds = max(1, repeats)
    wall_rate: Dict[str, List[float]] = {}
    critical_rate: Dict[str, List[float]] = {}
    speedup: Dict[str, List[float]] = {}
    completed_fraction: Dict[str, List[float]] = {}
    degraded_rate: Dict[str, List[float]] = {}
    degraded_availability: Dict[str, List[float]] = {}
    # Degraded cells need >= 2 shards (replicas must span shards) and
    # real worker processes (a serial run cannot lose one).
    degraded_counts = (
        [n for n in shard_counts if n >= 2] if multiprocess else []
    )
    events = 0
    for policy in POLICIES:
        load = LoadgenConfig(
            num_requests=num_requests,
            rate_per_s=SCALE_RATE_PER_S,
            num_clients=8,
            seed=seed * 31 + 7,
        )
        # round_critical[r][i]: critical-path rate of shard_counts[i]
        # in timing round r (same column, seconds apart — paired).
        round_critical: List[List[float]] = []
        round_wall: List[List[float]] = []
        fractions: List[float] = []
        for _round in range(rounds):
            column_critical: List[float] = []
            column_wall: List[float] = []
            fractions = []
            for num_shards in shard_counts:
                config = ShardedServiceConfig(
                    policy=policy,
                    num_shards=num_shards,
                    num_disks=SCALE_DISKS,
                    num_data=SCALE_DATA,
                    seed=seed,
                )
                run = run_sharded(config, load, multiprocess=multiprocess)
                events += run.events_processed
                column_critical.append(run.events_per_sec_critical)
                column_wall.append(run.events_per_sec_wall)
                fractions.append(
                    tally_outcomes(run.outcomes).completed_fraction
                )
            round_critical.append(column_critical)
            round_wall.append(column_wall)
        wall_rate[policy] = [
            max(column[i] for column in round_wall)
            for i in range(len(shard_counts))
        ]
        critical_rate[policy] = [
            max(column[i] for column in round_critical)
            for i in range(len(shard_counts))
        ]
        speedup[policy] = [
            max(
                column[i] / column[0] if column[0] > 0 else 0.0
                for column in round_critical
            )
            for i in range(len(shard_counts))
        ]
        completed_fraction[policy] = fractions
        degraded_column: List[float] = []
        degraded_avail_column: List[float] = []
        for num_shards in degraded_counts:
            config = ShardedServiceConfig(
                policy=policy,
                num_shards=num_shards,
                num_disks=SCALE_DISKS,
                num_data=SCALE_DATA,
                shard_replication_factor=2,
                seed=seed,
            )
            # Fell the last shard halfway through the schedule; its
            # whole keyspace must ride the replicas from then on.
            kill = ShardKill(
                shard_id=num_shards - 1,
                time_s=num_requests / SCALE_RATE_PER_S / 2.0,
            )
            run = run_sharded(config, load, kills=(kill,))
            events += run.events_processed
            degraded_column.append(run.events_per_sec_critical)
            degraded_avail_column.append(run.availability)
        degraded_rate[policy] = degraded_column
        degraded_availability[policy] = degraded_avail_column
    degraded_panels = (
        [
            Panel(
                name=(
                    "serve scale degraded: events/s (critical path, "
                    "R=2, one shard killed mid-run)"
                ),
                x_label="shards",
                x_values=[float(n) for n in degraded_counts],
                series=degraded_rate,
                precision=0,
            ),
            Panel(
                name=(
                    "serve scale degraded: availability "
                    "(R=2, one shard killed mid-run)"
                ),
                x_label="shards",
                x_values=[float(n) for n in degraded_counts],
                series=degraded_availability,
                precision=4,
            ),
        ]
        if degraded_counts
        else []
    )
    return AblationResult(
        ablation_id="serve_scale",
        title=(
            f"serve scale-out ({num_requests} requests, {SCALE_DISKS} disks, "
            f"{'multiprocess' if multiprocess else 'serial'} shards)"
        ),
        panels=[
            Panel(
                name="serve scale: events/s (critical path)",
                x_label="shards",
                x_values=[float(n) for n in shard_counts],
                series=critical_rate,
                precision=0,
            ),
            Panel(
                name="serve scale: speedup vs 1 shard (critical path)",
                x_label="shards",
                x_values=[float(n) for n in shard_counts],
                series=speedup,
                precision=2,
            ),
            Panel(
                name="serve scale: events/s (raw wall)",
                x_label="shards",
                x_values=[float(n) for n in shard_counts],
                series=wall_rate,
                precision=0,
            ),
            Panel(
                name="serve scale: completed fraction of offered",
                x_label="shards",
                x_values=[float(n) for n in shard_counts],
                series=completed_fraction,
                precision=4,
            ),
            *degraded_panels,
        ],
        events_processed=events,
    )


__all__ = [
    "SCALE_DATA",
    "SCALE_DISKS",
    "SCALE_RATE_PER_S",
    "SCALE_REPEATS",
    "SCALE_REQUESTS",
    "SCALE_SHARD_COUNTS",
    "run_serve_scale",
]
