"""Shared experiment plumbing: cached workloads, bindings and runs.

The benchmark files (one per paper figure) all pull from this module, so
a pytest session computes each (trace, placement, scheduler) combination
exactly once — Fig. 6, 7, 8, 9, 12 and 13 share the same underlying runs,
just as the paper's figures all describe one experiment campaign.

Since the harness rewrite this module is a thin façade over
:mod:`repro.experiments.harness`: every run is identified by a
:class:`~repro.experiments.harness.spec.RunSpec`, fetched from (in
order) an in-memory memo, the persistent on-disk
:class:`~repro.experiments.harness.cache.RunCache`, or a fresh compute —
so repeated figure benches and pytest sessions reuse runs across
processes and invocations, not just within one interpreter.

Scale control (environment variables, read at import; override at
runtime with :func:`configure` or by assigning the module globals):

* ``REPRO_SCALE`` — trace/disks scale factor for simulated runs
  (default 1.0 = the paper's full 70 000 requests on 180 disks; the
  event simulator handles that in seconds).
* ``REPRO_MWIS_SCALE`` — scale for offline MWIS runs (default 0.15;
  the MWIS conflict graph at full scale has ~1M nodes, which pure-Python
  greedy MWIS handles too slowly for a default benchmark run).
* ``REPRO_SEED`` — base RNG seed (default 1).
* ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` — persistent run cache
  location / kill-switch (see :mod:`repro.experiments.harness.cache`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.scheduler import Scheduler
from repro.experiments.harness import cache as harness_cache
from repro.experiments.harness import runner as harness_runner
from repro.experiments.harness.cache import RunCache
from repro.experiments.harness.serialize import report_from_payload
from repro.experiments.harness.spec import (
    DEFAULT_PROFILE,
    RunSpec,
    baseline_spec,
    cell_spec,
)
from repro.placement.catalog import PlacementCatalog
from repro.report import SimulationReport
from repro.sim import SimulationConfig
from repro.traces import Workload
from repro.types import Request

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
MWIS_SCALE = float(os.environ.get("REPRO_MWIS_SCALE", "0.15"))
BASE_SEED = int(os.environ.get("REPRO_SEED", "1"))

PAPER_NUM_DISKS = harness_runner.PAPER_NUM_DISKS
REPLICATION_FACTORS = (1, 2, 3, 4, 5)

#: Display names matching the paper's legends.
SCHEDULER_LABELS = {
    "random": "Random",
    "static": "Static",
    "heuristic": "Energy-aware Heuristic",
    "wsc": "Energy-aware WSC(batch 0.1s)",
    "mwis": "Energy-aware MWIS(offline)",
    "always-on": "Always-on",
}

_run_cache: Dict[RunSpec, "RunResult"] = {}
_payload_cache: Dict[RunSpec, Dict[str, Any]] = {}
_baseline_cache: Dict[RunSpec, SimulationReport] = {}
_persistent_cache: Optional[RunCache] = None


def configure(
    scale: Optional[float] = None,
    mwis_scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> None:
    """Override the campaign's scale/seed at runtime (CLI ``--scale``)."""
    global SCALE, MWIS_SCALE, BASE_SEED
    if scale is not None:
        SCALE = scale
    if mwis_scale is not None:
        MWIS_SCALE = mwis_scale
    if seed is not None:
        BASE_SEED = seed


def persistent_cache() -> RunCache:
    """The process-wide persistent run cache (lazily constructed)."""
    global _persistent_cache
    if _persistent_cache is None:
        _persistent_cache = RunCache()
    return _persistent_cache


def set_persistent_cache(cache: Optional[RunCache]) -> None:
    """Swap (or, with ``None``, lazily re-resolve) the persistent cache."""
    global _persistent_cache
    _persistent_cache = cache


@dataclass(frozen=True)
class RunResult:
    """One (trace, placement, scheduler) cell of the evaluation.

    ``baseline_energy`` is the always-on energy in joules over the same
    horizon.
    """

    scheduler_key: str
    report: SimulationReport
    baseline_energy: float

    @property
    def normalized_energy(self) -> float:
        """Energy as a fraction of the always-on baseline (unitless)."""
        return self.report.total_energy / self.baseline_energy

    @property
    def spin_operations(self) -> int:
        return self.report.spin_operations

    @property
    def mean_response_time(self) -> float:
        """Mean response time in seconds."""
        return self.report.mean_response_time

    def response_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of this run's response times."""
        if not self.report.response_times:
            return 0.0
        return self.report.response_percentile(fraction)


def num_disks_for(scale: float) -> int:
    """Disk count at a given scale (paper: 180 at scale 1.0)."""
    return harness_runner.num_disks_for(scale)


def get_workload(
    trace: str, scale: float, seed: Optional[int] = None
) -> Workload:
    """Cached synthetic workload (``trace`` in {"cello", "financial"})."""
    return harness_runner.get_workload(
        trace, scale, BASE_SEED if seed is None else seed
    )


def get_binding(
    trace: str,
    replication_factor: int,
    zipf_exponent: float = 1.0,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[Sequence[Request], PlacementCatalog, int]:
    """Cached (requests, catalog, num_disks) for one placement."""
    return harness_runner.get_binding(
        trace,
        replication_factor,
        zipf_exponent,
        SCALE if scale is None else scale,
        BASE_SEED if seed is None else seed,
    )


def make_config(num_disks: int, seed: Optional[int] = None) -> SimulationConfig:
    """The evaluation's simulation config (PAPER_EVAL profile, 2CPM)."""
    return harness_runner.make_config(
        num_disks, DEFAULT_PROFILE, BASE_SEED if seed is None else seed
    )


def make_scheduler_for_key(
    key: str, alpha: float = 0.2, beta: float = 100.0
) -> Scheduler:
    """Instantiate the scheduler a key refers to (paper configurations)."""
    spec = cell_spec(
        "cello", 1, key, alpha=alpha, beta=beta, scale=1.0, seed=BASE_SEED
    )
    return harness_runner.make_scheduler(spec)


def _fetch_payload(spec: RunSpec) -> Dict[str, Any]:
    """Payload for a spec: in-memory memo, disk cache, or fresh compute."""
    cached = _payload_cache.get(spec)
    if cached is not None:
        return cached
    payload = persistent_cache().load_payload(spec)
    if payload is None:
        payload = harness_runner.execute_spec(spec)
        persistent_cache().store_payload(spec, payload)
    _payload_cache[spec] = payload
    return payload


def prime_payloads(payloads: Mapping[RunSpec, Dict[str, Any]]) -> None:
    """Seed the in-memory payload memo (the sweep runner's hand-off)."""
    _payload_cache.update(payloads)


def get_baseline(
    trace: str, scale: Optional[float] = None, seed: Optional[int] = None
) -> SimulationReport:
    """Always-on energy for a trace (placement-independent up to ~0.1%)."""
    spec = baseline_spec(
        trace,
        scale=SCALE if scale is None else scale,
        seed=BASE_SEED if seed is None else seed,
    )
    if spec not in _baseline_cache:
        _baseline_cache[spec] = report_from_payload(_fetch_payload(spec)["report"])
    return _baseline_cache[spec]


def run_cell(
    trace: str,
    replication_factor: int,
    scheduler_key: str,
    zipf_exponent: float = 1.0,
    alpha: float = 0.2,
    beta: float = 100.0,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    fault_rate: float = 0.0,
) -> RunResult:
    """Run (or fetch from cache) one cell of the evaluation matrix.

    MWIS cells run at ``MWIS_SCALE`` with their own always-on baseline,
    so their *normalised* energies remain comparable with the simulated
    cells.  ``fault_rate`` (per-disk permanent failures per simulated
    second) > 0 turns on fault injection for the cell; its baseline
    stays fault-free so normalised energy remains a fraction of the
    healthy always-on fleet.
    """
    if scale is None:
        scale = MWIS_SCALE if scheduler_key == "mwis" else SCALE
    if seed is None:
        seed = BASE_SEED
    spec = cell_spec(
        trace,
        replication_factor,
        scheduler_key,
        zipf_exponent=zipf_exponent,
        alpha=alpha,
        beta=beta,
        scale=scale,
        seed=seed,
        fault_rate=fault_rate,
    )
    memo = _run_cache.get(spec)
    if memo is not None:
        return memo
    report = report_from_payload(_fetch_payload(spec)["report"])
    baseline = get_baseline(trace, scale=scale, seed=seed)
    result = RunResult(
        scheduler_key=scheduler_key,
        report=report,
        baseline_energy=baseline.total_energy,
    )
    _run_cache[spec] = result
    return result


def clear_caches() -> None:
    """Testing hook: drop all in-memory memos (not the on-disk cache)."""
    _run_cache.clear()
    _payload_cache.clear()
    _baseline_cache.clear()
    harness_runner.clear_memos()


# Re-exported for callers that poke the cache machinery directly.
__all__ = [
    "BASE_SEED",
    "MWIS_SCALE",
    "PAPER_NUM_DISKS",
    "REPLICATION_FACTORS",
    "RunResult",
    "SCALE",
    "SCHEDULER_LABELS",
    "clear_caches",
    "configure",
    "get_baseline",
    "get_binding",
    "get_workload",
    "harness_cache",
    "make_config",
    "make_scheduler_for_key",
    "num_disks_for",
    "persistent_cache",
    "prime_payloads",
    "run_cell",
    "set_persistent_cache",
]
