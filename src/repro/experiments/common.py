"""Shared experiment plumbing: cached workloads, bindings and runs.

The benchmark files (one per paper figure) all pull from this module, so
a pytest session computes each (trace, placement, scheduler) combination
exactly once — Fig. 6, 7, 8, 9, 12 and 13 share the same underlying runs,
just as the paper's figures all describe one experiment campaign.

Scale control (environment variables, read at import):

* ``REPRO_SCALE`` — trace/disks scale factor for simulated runs
  (default 1.0 = the paper's full 70 000 requests on 180 disks; the
  event simulator handles that in seconds).
* ``REPRO_MWIS_SCALE`` — scale for offline MWIS runs (default 0.15;
  the MWIS conflict graph at full scale has ~1M nodes, which pure-Python
  greedy MWIS handles too slowly for a default benchmark run).
* ``REPRO_SEED`` — base RNG seed (default 1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import (
    CostFunction,
    HeuristicScheduler,
    MWISOfflineScheduler,
    RandomScheduler,
    StaticScheduler,
    WSCBatchScheduler,
)
from repro.errors import ConfigurationError
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.profile import PAPER_EVAL
from repro.report import SimulationReport
from repro.sim import SimulationConfig, always_on_baseline, run_offline, simulate
from repro.traces import (
    CelloLikeConfig,
    FinancialLikeConfig,
    Workload,
    generate_cello_like,
    generate_financial_like,
)

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
MWIS_SCALE = float(os.environ.get("REPRO_MWIS_SCALE", "0.15"))
BASE_SEED = int(os.environ.get("REPRO_SEED", "1"))

PAPER_NUM_DISKS = 180
REPLICATION_FACTORS = (1, 2, 3, 4, 5)

#: Display names matching the paper's legends.
SCHEDULER_LABELS = {
    "random": "Random",
    "static": "Static",
    "heuristic": "Energy-aware Heuristic",
    "wsc": "Energy-aware WSC(batch 0.1s)",
    "mwis": "Energy-aware MWIS(offline)",
    "always-on": "Always-on",
}

_workload_cache: Dict[Tuple, Workload] = {}
_binding_cache: Dict[Tuple, Tuple] = {}
_run_cache: Dict[Tuple, "RunResult"] = {}
_baseline_cache: Dict[Tuple, SimulationReport] = {}


@dataclass(frozen=True)
class RunResult:
    """One (trace, placement, scheduler) cell of the evaluation.

    ``baseline_energy`` is the always-on energy in joules over the same
    horizon.
    """

    scheduler_key: str
    report: SimulationReport
    baseline_energy: float

    @property
    def normalized_energy(self) -> float:
        """Energy as a fraction of the always-on baseline (unitless)."""
        return self.report.total_energy / self.baseline_energy

    @property
    def spin_operations(self) -> int:
        return self.report.spin_operations

    @property
    def mean_response_time(self) -> float:
        """Mean response time in seconds."""
        return self.report.mean_response_time

    def response_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of this run's response times."""
        if not self.report.response_times:
            return 0.0
        return self.report.response_percentile(fraction)


def num_disks_for(scale: float) -> int:
    """Disk count at a given scale (paper: 180 at scale 1.0)."""
    return max(2, round(PAPER_NUM_DISKS * scale))


def get_workload(trace: str, scale: float, seed: int = BASE_SEED) -> Workload:
    """Cached synthetic workload (``trace`` in {"cello", "financial"})."""
    key = (trace, scale, seed)
    if key not in _workload_cache:
        if trace == "cello":
            records = generate_cello_like(CelloLikeConfig().scaled(scale), seed=seed)
        elif trace == "financial":
            records = generate_financial_like(
                FinancialLikeConfig().scaled(scale), seed=seed
            )
        else:
            raise ConfigurationError(f"unknown trace {trace!r}")
        _workload_cache[key] = Workload(records)
    return _workload_cache[key]


def get_binding(
    trace: str,
    replication_factor: int,
    zipf_exponent: float = 1.0,
    scale: float = SCALE,
    seed: int = BASE_SEED,
):
    """Cached (requests, catalog, num_disks) for one placement."""
    key = (trace, replication_factor, zipf_exponent, scale, seed)
    if key not in _binding_cache:
        workload = get_workload(trace, scale, seed)
        disks = num_disks_for(scale)
        requests, catalog = workload.bind(
            ZipfOriginalUniformReplicas(
                replication_factor=replication_factor,
                zipf_exponent=zipf_exponent,
            ),
            num_disks=disks,
            seed=seed + 7,
        )
        _binding_cache[key] = (requests, catalog, disks)
    return _binding_cache[key]


def make_config(num_disks: int, seed: int = BASE_SEED) -> SimulationConfig:
    """The evaluation's simulation config (PAPER_EVAL profile, 2CPM)."""
    return SimulationConfig(num_disks=num_disks, profile=PAPER_EVAL, seed=seed)


def get_baseline(
    trace: str, scale: float = SCALE, seed: int = BASE_SEED
) -> SimulationReport:
    """Always-on energy for a trace (placement-independent up to ~0.1%)."""
    key = (trace, scale, seed)
    if key not in _baseline_cache:
        requests, catalog, disks = get_binding(trace, 1, 1.0, scale, seed)
        _baseline_cache[key] = always_on_baseline(
            requests, catalog, make_config(disks, seed)
        )
    return _baseline_cache[key]


def make_scheduler_for_key(
    key: str, alpha: float = 0.2, beta: float = 100.0
):
    """Instantiate the scheduler a key refers to (paper configurations)."""
    cost = CostFunction(alpha=alpha, beta=beta)
    if key == "static":
        return StaticScheduler()
    if key == "random":
        return RandomScheduler(seed=BASE_SEED)
    if key == "heuristic":
        return HeuristicScheduler(cost_function=cost)
    if key == "wsc":
        return WSCBatchScheduler(cost_function=cost)
    if key == "mwis":
        return MWISOfflineScheduler(method="gwmin", neighborhood=4)
    raise ConfigurationError(f"unknown scheduler key {key!r}")


def run_cell(
    trace: str,
    replication_factor: int,
    scheduler_key: str,
    zipf_exponent: float = 1.0,
    alpha: float = 0.2,
    beta: float = 100.0,
    scale: Optional[float] = None,
) -> RunResult:
    """Run (or fetch from cache) one cell of the evaluation matrix.

    MWIS cells run at ``REPRO_MWIS_SCALE`` with their own always-on
    baseline, so their *normalised* energies remain comparable with the
    simulated cells.
    """
    if scale is None:
        scale = MWIS_SCALE if scheduler_key == "mwis" else SCALE
    key = (trace, replication_factor, scheduler_key, zipf_exponent, alpha, beta, scale)
    if key in _run_cache:
        return _run_cache[key]

    requests, catalog, disks = get_binding(
        trace, replication_factor, zipf_exponent, scale
    )
    config = make_config(disks)
    baseline = _baseline_for_scale(trace, scale)
    scheduler = make_scheduler_for_key(scheduler_key, alpha, beta)
    if scheduler_key == "mwis":
        evaluation = run_offline(requests, catalog, scheduler, config)
        report = evaluation.report
    else:
        report = simulate(requests, catalog, scheduler, config)
    result = RunResult(
        scheduler_key=scheduler_key,
        report=report,
        baseline_energy=baseline.total_energy,
    )
    _run_cache[key] = result
    return result


def _baseline_for_scale(trace: str, scale: float) -> SimulationReport:
    return get_baseline(trace, scale)


def clear_caches() -> None:
    """Testing hook: drop all memoised workloads/runs."""
    _workload_cache.clear()
    _binding_cache.clear()
    _run_cache.clear()
    _baseline_cache.clear()
