"""Tape tier sweep: energy vs latency across tier splits and sequencers.

The cold-tier reading of the paper's energy/latency trade: the same
Zipf-skewed read workload served by (a) an all-disk fleet and (b) a
tiered fleet where only the hottest ids stay on disk and the cold tail
moves to one tape drive (see :mod:`repro.tape`). Every cell is one
deterministic event-driven run; the all-disk reference goes through the
*same* tiered harness at ``hot_fraction=1.0`` so both configurations pay
identical horizons and identical (idle) tape-drive power — the
comparison isolates the routing decision.

Expected panel shapes:

* **total energy** falls below the all-disk line at small hot fractions:
  cold requests stop waking standby disks (each wake is a ~360 J spin-up
  plus an idle tail), and the single tape drive serves them at a
  bounded ~27 W winding ceiling. Larger hot fractions converge back to
  the all-disk line from above (few tape requests left to amortise the
  drive).
* **mean response time** is the price: tape requests wait for winds and
  queue behind each other, so the mean grows as more of the tail goes
  to tape. This is the energy-for-latency trade, archival edition.
* **completed fraction** exposes sequencing quality: ``fifo`` random-
  walks the tape and saturates (it never drains the trace), while
  ``nearest``/``scan``/``ltsp`` amortise each batch into short sweeps
  and complete everything — the Linear Tape Scheduling Problem made
  visible (arXiv:2112.07018).
* **seek distance** separates the planners from the baseline: planned
  orders wind less tape per completed request.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.heuristic import HeuristicScheduler
from repro.experiments.ablations import AblationResult, Panel
from repro.placement.catalog import PlacementCatalog
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.placement.zipf import ZipfSampler
from repro.report import SimulationReport
from repro.sim.config import SimulationConfig
from repro.sim.runner import simulate
from repro.tape.config import TierConfig
from repro.types import OpKind, Request

#: Disks in both configurations (the tiered cells keep the full fleet —
#: the tier changes routing, not hardware).
TIER_NUM_DISKS = 24

#: Distinct data ids; the Zipf tail past the hot set is the cold data.
TIER_NUM_IDS = 2000

#: Requests per cell at scale 1.0.
TIER_REQUESTS = 6_000

#: Mean Poisson arrival rate in requests/second — low enough that disks
#: sleep between cold accesses (the spin-up-dominated regime the paper's
#: 2CPM policy targets), high enough that tape batches amortise.
TIER_RATE_PER_S = 2.0

#: Hot-set fractions swept (fraction of ids kept on disk).
TIER_HOT_FRACTIONS = (0.05, 0.1, 0.2)

#: Sequencer families compared (the full registry at time of writing).
TIER_SEQUENCERS = ("fifo", "nearest", "scan", "ltsp")

#: Replication factor of the disk placement.
TIER_REPLICATION = 2

#: Request size in bytes (modest objects; tape reads stream them fast,
#: the cost is all in the wind).
TIER_SIZE_BYTES = 512 * 1024

#: Series label of the all-disk reference (``hot_fraction=1.0``).
ALL_DISK_SERIES = "all_disk"


def _workload(num_requests: int, seed: int) -> List[Request]:
    """Poisson arrivals over a Zipf-skewed id space, fully seeded."""
    arrival_rng = random.Random(seed)
    sampler = ZipfSampler(TIER_NUM_IDS, 1.0)
    sample_rng = random.Random(seed * 31 + 7)
    requests: List[Request] = []
    time_s = 0.0
    for request_id in range(num_requests):
        time_s += arrival_rng.expovariate(TIER_RATE_PER_S)
        requests.append(
            Request(
                time=time_s,
                request_id=request_id,
                data_id=sampler.sample(sample_rng),
                size_bytes=TIER_SIZE_BYTES,
                op=OpKind.READ,
            )
        )
    return requests


def _run_cell(
    requests: Sequence[Request],
    catalog: PlacementCatalog,
    hot_fraction: float,
    sequencer: str,
    seed: int,
) -> SimulationReport:
    config = SimulationConfig(
        num_disks=TIER_NUM_DISKS,
        seed=seed,
        tier=TierConfig(hot_fraction=hot_fraction, sequencer=sequencer),
    )
    return simulate(requests, catalog, HeuristicScheduler(), config)


def run_tape_tier(
    scale: Optional[float] = None,
    hot_fractions: Sequence[float] = TIER_HOT_FRACTIONS,
    sequencers: Sequence[str] = TIER_SEQUENCERS,
    seed: int = 11,
) -> AblationResult:
    """Sweep hot fractions across the sequencer families.

    Args:
        scale: Optional multiplier on the per-cell request count (the
            bench tier's usual knob; ``None`` = 1.0).
        hot_fractions: Fractions of the id space kept on disk.
        sequencers: Sequencer family names to compare.
        seed: Workload + simulation base seed.
    """
    num_requests = max(1, round(TIER_REQUESTS * (scale if scale else 1.0)))
    requests = _workload(num_requests, seed)
    catalog = ZipfOriginalUniformReplicas(
        replication_factor=TIER_REPLICATION
    ).place(
        list(range(TIER_NUM_IDS)), TIER_NUM_DISKS, random.Random(seed * 13 + 5)
    )
    fractions = list(hot_fractions)

    reference = _run_cell(requests, catalog, 1.0, "nearest", seed)
    total_energy_j: Dict[str, List[float]] = {
        ALL_DISK_SERIES: [reference.total_energy] * len(fractions)
    }
    mean_response_s: Dict[str, List[float]] = {
        ALL_DISK_SERIES: [reference.mean_response_time] * len(fractions)
    }
    completed_fraction: Dict[str, List[float]] = {
        ALL_DISK_SERIES: [
            reference.requests_completed / max(1, reference.requests_offered)
        ]
        * len(fractions)
    }
    seek_distance_m: Dict[str, List[float]] = {}
    events = reference.events_processed

    for sequencer in sequencers:
        total_energy_j[sequencer] = []
        mean_response_s[sequencer] = []
        completed_fraction[sequencer] = []
        seek_distance_m[sequencer] = []
        for hot_fraction in fractions:
            report = _run_cell(
                requests, catalog, hot_fraction, sequencer, seed
            )
            events += report.events_processed
            tape = report.tape
            assert tape is not None
            total_energy_j[sequencer].append(report.total_energy)
            mean_response_s[sequencer].append(report.mean_response_time)
            completed_fraction[sequencer].append(
                report.requests_completed / max(1, report.requests_offered)
            )
            seek_distance_m[sequencer].append(tape.seek_distance_m)

    return AblationResult(
        ablation_id="tape_tier",
        title=(
            f"tape tier sweep ({num_requests} requests at "
            f"{TIER_RATE_PER_S}/s, {TIER_NUM_DISKS} disks, 1 tape drive)"
        ),
        panels=[
            Panel(
                name="tape tier: total energy (J)",
                x_label="hot fraction",
                x_values=fractions,
                series=total_energy_j,
                precision=0,
            ),
            Panel(
                name="tape tier: mean response time (s)",
                x_label="hot fraction",
                x_values=fractions,
                series=mean_response_s,
                precision=3,
            ),
            Panel(
                name="tape tier: completed fraction of offered",
                x_label="hot fraction",
                x_values=fractions,
                series=completed_fraction,
                precision=4,
            ),
            Panel(
                name="tape tier: tape seek distance (m)",
                x_label="hot fraction",
                x_values=fractions,
                series=seek_distance_m,
                precision=0,
            ),
        ],
        events_processed=events,
    )


__all__ = [
    "ALL_DISK_SERIES",
    "TIER_HOT_FRACTIONS",
    "TIER_NUM_DISKS",
    "TIER_NUM_IDS",
    "TIER_RATE_PER_S",
    "TIER_REPLICATION",
    "TIER_REQUESTS",
    "TIER_SEQUENCERS",
    "TIER_SIZE_BYTES",
    "run_tape_tier",
]
