"""One entry point per figure of the paper's evaluation.

Each ``figN`` function runs (cached) simulations and returns a
:class:`FigureResult` whose ``render()`` prints the same series the paper
plots. The benchmarks in ``benchmarks/`` wrap these functions; they are
equally usable from a REPL or the CLI (``python -m repro figure fig6``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tables import format_breakdown, format_series_table
from repro.errors import ConfigurationError
from repro.experiments import common
from repro.experiments.common import REPLICATION_FACTORS, SCHEDULER_LABELS, run_cell
from repro.power.profile import PAPER_EVAL
from repro.power.states import STATE_ORDER, DiskPowerState


@dataclass
class FigureResult:
    """Series data for one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    x_values: Sequence[object]
    series: Mapping[str, Sequence[float]]
    notes: List[str] = field(default_factory=list)
    precision: int = 3

    def render(self) -> str:
        """The figure's series as a paper-plot-style ASCII table."""
        body = format_series_table(
            self.x_label,
            self.x_values,
            self.series,
            title=f"{self.figure_id}: {self.title}",
            precision=self.precision,
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body


def fig5() -> str:
    """Fig. 5 — the 2CPM power configuration used by every experiment."""
    return PAPER_EVAL.describe()


def _energy_vs_replication(trace: str, figure_id: str) -> FigureResult:
    series: Dict[str, List[float]] = {}
    for key in ("random", "static", "heuristic", "wsc", "mwis"):
        label = SCHEDULER_LABELS[key]
        series[label] = [
            run_cell(trace, rf, key).normalized_energy for rf in REPLICATION_FACTORS
        ]
    return FigureResult(
        figure_id=figure_id,
        title=f"Energy consumption normalised to always-on ({trace})",
        x_label="replication",
        x_values=REPLICATION_FACTORS,
        series=series,
        notes=[
            "paper shape: Static flat, Random rises toward 1.0, "
            "energy-aware falls monotonically, MWIS <= WSC <= Heuristic",
            f"MWIS evaluated at scale {common.MWIS_SCALE} "
            "(REPRO_MWIS_SCALE) with its own always-on baseline",
        ],
    )


def fig6() -> FigureResult:
    """Fig. 6 — energy vs replication factor, Cello."""
    return _energy_vs_replication("cello", "fig6")


def _spin_vs_replication(trace: str, figure_id: str) -> FigureResult:
    static_ops = {
        rf: run_cell(trace, rf, "static").spin_operations
        for rf in REPLICATION_FACTORS
    }
    series: Dict[str, List[float]] = {}
    for key in ("random", "static", "heuristic", "wsc", "mwis"):
        label = SCHEDULER_LABELS[key]
        values = []
        for rf in REPLICATION_FACTORS:
            result = run_cell(trace, rf, key)
            if key == "mwis":
                # MWIS runs at its own scale; normalise against Static at
                # that same scale for a like-for-like ratio.
                static_at_scale = run_cell(
                    trace, rf, "static", scale=common.MWIS_SCALE
                ).spin_operations
                values.append(result.spin_operations / max(1, static_at_scale))
            else:
                values.append(result.spin_operations / max(1, static_ops[rf]))
        series[label] = values
    return FigureResult(
        figure_id=figure_id,
        title=f"Disk spin-up/down operations normalised to Static ({trace})",
        x_label="replication",
        x_values=REPLICATION_FACTORS,
        series=series,
        notes=[
            "paper shape: energy-aware and Random fall below 1.0 as "
            "replication grows; MWIS lowest",
        ],
    )


def fig7() -> FigureResult:
    """Fig. 7 — spin-up/down operations vs replication factor, Cello."""
    return _spin_vs_replication("cello", "fig7")


def _response_vs_replication(trace: str, figure_id: str) -> FigureResult:
    series: Dict[str, List[float]] = {}
    for key in ("random", "static", "heuristic", "wsc"):
        label = SCHEDULER_LABELS[key]
        series[label] = [
            run_cell(trace, rf, key).mean_response_time
            for rf in REPLICATION_FACTORS
        ]
    return FigureResult(
        figure_id=figure_id,
        title=f"Mean request response time in seconds ({trace})",
        x_label="replication",
        x_values=REPLICATION_FACTORS,
        series=series,
        notes=[
            "MWIS omitted (offline model suffers no spin-up delay), "
            "matching the paper",
            "paper shape: Heuristic < Static; WSC slightly above Heuristic "
            "(batch queueing); Random worst at high replication",
        ],
    )


def fig8() -> FigureResult:
    """Fig. 8 — mean response time vs replication factor, Cello."""
    return _response_vs_replication("cello", "fig8")


def _breakdown(trace: str, figure_id: str) -> "BreakdownResult":
    panels = {}
    for key in ("random", "static", "wsc", "mwis"):
        result = run_cell(trace, 3, key)
        panels[SCHEDULER_LABELS[key]] = result.report.per_disk_fractions()
    return BreakdownResult(
        figure_id=figure_id,
        title=f"Per-disk state-time breakdown at replication 3 ({trace})",
        panels=panels,
    )


@dataclass
class BreakdownResult:
    """Fig. 9/17 — per-disk state-time fractions, disks sorted by standby."""

    figure_id: str
    title: str
    panels: Mapping[str, List[Dict[DiskPowerState, float]]]

    def render(self) -> str:
        """All panels as sampled per-disk breakdown tables."""
        blocks = [f"{self.figure_id}: {self.title}"]
        for name, fractions in self.panels.items():
            blocks.append(f"\n[{name}] ({len(fractions)} disks, sampled)")
            blocks.append(format_breakdown(fractions, STATE_ORDER))
        return "\n".join(blocks)

    def standby_share(self, panel: str) -> float:
        """Aggregate standby fraction of one panel (test hook)."""
        fractions = self.panels[panel]
        if not fractions:
            return 0.0
        return sum(f[DiskPowerState.STANDBY] for f in fractions) / len(fractions)


def fig9() -> BreakdownResult:
    """Fig. 9 — per-disk state-time breakdown, Cello, rf=3."""
    return _breakdown("cello", "fig9")


Z_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
RF_GRID = (1, 3, 5)


def fig10(
    z_grid: Sequence[float] = Z_GRID, rf_grid: Sequence[int] = RF_GRID
) -> Dict[str, FigureResult]:
    """Fig. 10 — energy surface over (replication, data locality z).

    Returns one FigureResult per scheduler panel (Random/Static/Heuristic),
    each with one series per replication factor over the z grid. The
    paper sweeps z in steps of 0.1; the default grid here uses 0.2 steps
    (halves the run count without changing the surface shape).
    """
    panels: Dict[str, FigureResult] = {}
    for key in ("random", "static", "heuristic"):
        series: Dict[str, List[float]] = {}
        for rf in rf_grid:
            series[f"rf={rf}"] = [
                run_cell("cello", rf, key, zipf_exponent=z).normalized_energy
                for z in z_grid
            ]
        panels[key] = FigureResult(
            figure_id="fig10",
            title=f"Energy vs data locality — {SCHEDULER_LABELS[key]} (cello)",
            x_label="z",
            x_values=list(z_grid),
            series=series,
            notes=[
                "paper shape: Random/Static need skew (z->1) to save "
                "anything; Heuristic still saves heavily at z=0 when "
                "replication is high",
            ],
        )
    return panels


ALPHA_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
BETA_GRID = (1.0, 10.0, 100.0, 500.0, 1000.0)


def fig11(
    alpha_grid: Sequence[float] = ALPHA_GRID,
    beta_grid: Sequence[float] = BETA_GRID,
) -> Tuple[FigureResult, FigureResult]:
    """Fig. 11 — the Heuristic cost-function trade-off at rf=3 (Cello).

    Returns (energy, response-time) results; each series is one beta value
    over the alpha grid, normalised to that beta's alpha=0 run, exactly as
    in the paper's Appendix A.2 plot.
    """
    energy_series: Dict[str, List[float]] = {}
    response_series: Dict[str, List[float]] = {}
    for beta in beta_grid:
        energies = []
        responses = []
        for alpha in alpha_grid:
            result = run_cell("cello", 3, "heuristic", alpha=alpha, beta=beta)
            energies.append(result.report.total_energy)
            responses.append(result.mean_response_time)
        base_energy = energies[0]
        base_response = responses[0] or 1.0
        energy_series[f"beta={beta:g}"] = [e / base_energy for e in energies]
        response_series[f"beta={beta:g}"] = [r / base_response for r in responses]
    energy = FigureResult(
        figure_id="fig11a",
        title="Energy vs alpha, normalised to alpha=0 (cello, rf=3)",
        x_label="alpha",
        x_values=list(alpha_grid),
        series=energy_series,
        notes=["paper shape: energy falls as alpha rises; smaller beta falls faster"],
    )
    response = FigureResult(
        figure_id="fig11b",
        title="Mean response time vs alpha, normalised to alpha=0 (cello, rf=3)",
        x_label="alpha",
        x_values=list(alpha_grid),
        series=response_series,
        notes=["paper shape: response rises as alpha rises; larger beta rises slower"],
    )
    return energy, response


RESPONSE_THRESHOLDS = (
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
)


def fig12(trace: str = "cello") -> FigureResult:
    """Fig. 12 — inverse CDF of response time at rf=3.

    ``P[response > x]`` per scheduler; the always-on run stands in for the
    no-spin-up-delay baseline (the paper also plots MWIS there, which by
    construction matches it).
    """
    series: Dict[str, List[float]] = {}
    thresholds = list(RESPONSE_THRESHOLDS)
    requests, catalog, disks = common.get_binding(trace, 3)
    baseline = common.get_baseline(trace)
    series["Always-on"] = [p for _x, p in _icdf(baseline.response_times, thresholds)]
    for key in ("random", "static", "heuristic", "wsc"):
        result = run_cell(trace, 3, key)
        series[SCHEDULER_LABELS[key]] = [
            p for _x, p in _icdf(result.report.response_times, thresholds)
        ]
    return FigureResult(
        figure_id="fig12",
        title=f"P[response time > x] at replication 3 ({trace})",
        x_label="x (s)",
        x_values=thresholds,
        series=series,
        precision=4,
        notes=[
            "paper shape: majority of requests < 100 ms in every schedule; "
            "a small tail suffers the full spin-up delay under 2CPM",
        ],
    )


def _icdf(
    values: Sequence[float], thresholds: Sequence[float]
) -> List[Tuple[float, float]]:
    from repro.analysis.distributions import inverse_cdf

    return inverse_cdf(values, thresholds)


def fig13(trace: str = "cello") -> FigureResult:
    """Fig. 13 — 90th-percentile response time (ms) vs replication."""
    series: Dict[str, List[float]] = {}
    baseline = common.get_baseline(trace)
    base_p90 = _p90_ms(baseline.response_times)
    series["Always-on"] = [base_p90 for _ in REPLICATION_FACTORS]
    for key in ("random", "static", "heuristic", "wsc"):
        series[SCHEDULER_LABELS[key]] = [
            _p90_ms(run_cell(trace, rf, key).report.response_times)
            for rf in REPLICATION_FACTORS
        ]
    return FigureResult(
        figure_id="fig13",
        title=f"90th-percentile response time in ms ({trace})",
        x_label="replication",
        x_values=REPLICATION_FACTORS,
        series=series,
        precision=1,
        notes=[
            "paper shape: p90 stays near pure service time for always-on; "
            "WSC highest (batch queueing delay), improving with replication",
        ],
    )


def _p90_ms(response_times: Sequence[float]) -> float:
    from repro.analysis.distributions import nearest_rank_percentile

    if not response_times:
        return 0.0
    return nearest_rank_percentile(response_times, 0.9) * 1000.0


def fig14() -> FigureResult:
    """Fig. 14 — energy vs replication factor, Financial1."""
    return _energy_vs_replication("financial", "fig14")


def fig15() -> FigureResult:
    """Fig. 15 — spin-up/down operations vs replication factor, Financial1."""
    return _spin_vs_replication("financial", "fig15")


def fig16() -> FigureResult:
    """Fig. 16 — mean response time vs replication factor, Financial1."""
    return _response_vs_replication("financial", "fig16")


def fig17() -> BreakdownResult:
    """Fig. 17 — per-disk state-time breakdown, Financial1, rf=3."""
    return _breakdown("financial", "fig17")


FIGURES = {
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
}


def run_figure(figure_id: str) -> FigureResult:
    """Dispatch by figure id (used by the CLI)."""
    try:
        factory = FIGURES[figure_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    return factory()
