"""Cross-kernel digest smoke: pin a bench's reports, re-check per kernel.

``python -m repro.experiments.kernel_smoke`` executes every spec of one
bench (default: fig6 at CI smoke scale), digests each canonical report
JSON, and folds the per-spec digests into one combined SHA-256. The
combined digest is what gets pinned: generate the pin once under the
scalar reference kernel (``--kernel python --write <pin>``), then any
later run — in particular CI's ``--kernel numpy`` pass — must reproduce
it bit for bit (``--check <pin>``). A mismatch means the columnar
kernel (or anything else on the simulation path) changed an observable
result, which the determinism contract forbids.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.fleet import KERNELS, set_default_kernel
from repro.experiments.harness import canonical_json, execute_spec
from repro.experiments.harness.bench import BENCHES
from repro.experiments.harness.serialize import sha256_hex

#: CI smoke defaults — the same cell sizes bench-smoke runs.
DEFAULT_BENCH = "fig6"
DEFAULT_SCALE = 0.05
DEFAULT_SEED = 1


def digest_bench(
    bench_id: str, scale: float, mwis_scale: float, seed: int
) -> Tuple[str, List[Tuple[str, str]]]:
    """(combined digest, per-spec digests) for one bench's spec sweep.

    Specs are digested in label order so the combined digest is
    independent of registry iteration order.
    """
    if bench_id not in BENCHES:
        raise SystemExit(
            f"unknown bench {bench_id!r}; known: {sorted(BENCHES)}"
        )
    specs = BENCHES[bench_id].specs(scale, mwis_scale, seed)
    if not specs:
        raise SystemExit(f"bench {bench_id!r} has no runnable specs")
    per_spec: List[Tuple[str, str]] = []
    for spec in sorted(specs, key=lambda s: s.label()):
        payload = execute_spec(spec)
        digest = sha256_hex(canonical_json(payload["report"]))
        per_spec.append((spec.label(), digest))
    combined = sha256_hex(
        "\n".join(f"{label} {digest}" for label, digest in per_spec)
    )
    return combined, per_spec


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the kernel-smoke CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.kernel_smoke",
        description="digest a bench's reports under one cost kernel and "
        "compare against a committed pin",
    )
    parser.add_argument("--bench", default=DEFAULT_BENCH)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--mwis-scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="cost kernel to run under (default: $REPRO_KERNEL or numpy)",
    )
    parser.add_argument(
        "--check",
        metavar="PIN",
        default=None,
        help="fail unless the combined digest equals this pin file's",
    )
    parser.add_argument(
        "--write",
        metavar="PIN",
        default=None,
        help="write the combined digest to this pin file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the sweep, print per-spec digests, write/check the pin."""
    args = build_parser().parse_args(argv)
    if args.kernel is not None:
        set_default_kernel(args.kernel)
    mwis_scale = args.mwis_scale if args.mwis_scale is not None else args.scale
    combined, per_spec = digest_bench(
        args.bench, args.scale, mwis_scale, args.seed
    )
    for label, digest in per_spec:
        print(f"{digest}  {label}")
    print(f"{combined}  combined:{args.bench}")
    if args.write is not None:
        Path(args.write).write_text(combined + "\n", encoding="utf-8")
        print(f"wrote {args.write}")
    if args.check is not None:
        pinned = Path(args.check).read_text(encoding="utf-8").strip()
        if combined != pinned:
            print(
                f"digest mismatch: measured {combined} != pinned {pinned} "
                f"({args.check})",
                file=sys.stderr,
            )
            return 1
        print(f"pin ok: {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
