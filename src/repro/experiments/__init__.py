"""Experiment harness reproducing every figure of the paper's evaluation."""

from repro.experiments.ablations import ABLATIONS, AblationResult, run_ablation
from repro.experiments.common import (
    REPLICATION_FACTORS,
    SCHEDULER_LABELS,
    RunResult,
    clear_caches,
    configure,
    get_baseline,
    get_binding,
    get_workload,
    run_cell,
)
from repro.experiments.figures import (
    FIGURES,
    BreakdownResult,
    FigureResult,
    run_figure,
)
from repro.experiments.headline import HeadlineClaims, headline_claims

__all__ = [
    "ABLATIONS",
    "AblationResult",
    "BreakdownResult",
    "FIGURES",
    "FigureResult",
    "HeadlineClaims",
    "REPLICATION_FACTORS",
    "RunResult",
    "SCHEDULER_LABELS",
    "clear_caches",
    "configure",
    "get_baseline",
    "get_binding",
    "get_workload",
    "headline_claims",
    "run_ablation",
    "run_cell",
    "run_figure",
]
