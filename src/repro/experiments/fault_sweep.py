"""Fault sweep: scheduler robustness under increasing disk failure rates.

The paper's evaluation assumes a perfectly reliable fleet; this sweep
asks what each scheduler's energy/response trade-off costs in
*availability* when disks die.  Every (scheduler, rate) cell runs the
canonical permanent-failure plan (``FaultPlan.canonical``: exponential
MTTF = 1/rate) against the usual Cello-like workload at replication
factor 3; the rate-0 column runs the exact no-fault code path, so its
numbers are byte-identical to the ordinary evaluation cells.

Because every cell at one seed shares the per-disk failure uniforms
(inverse-CDF transformed by the rate), a higher rate strictly advances
every disk death — availability is monotone non-increasing along the
rate axis, which is asserted by the bench tier.

Expected curve shapes:

* availability starts at 1.0 and decays roughly linearly in the rate
  (for rate x horizon << 1 the expected downtime of a disk is about
  ``rate * horizon^2 / 2``);
* lost-request fraction stays near zero until failures outpace the
  replication factor, then grows superlinearly (a request is lost only
  when all three replicas are dead);
* normalised energy *falls* with the failure rate — dead disks draw no
  power — which is exactly why energy alone is the wrong robustness
  metric;
* mean response time creeps up as failovers re-queue requests onto
  fewer, busier surviving disks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import common
from repro.experiments.ablations import AblationResult, Panel

#: Per-disk permanent failures per simulated second.  The derived horizon
#: of the default benches is a few thousand seconds, so this grid spans
#: "nothing fails" to "most of the fleet dies mid-run".
FAULT_RATES_PER_S: Tuple[float, ...] = (0.0, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3)

#: The four fault-aware schedulers (offline MWIS cannot re-plan around
#: failures and is excluded by construction).
SWEEP_SCHEDULERS: Tuple[str, ...] = ("static", "random", "heuristic", "wsc")

#: Replication factor of every sweep cell: the paper's mid-range choice,
#: and enough redundancy that losses stay interesting rather than total.
SWEEP_REPLICATION = 3

SWEEP_TRACE = "cello"


def run_fault_sweep(
    scale: Optional[float] = None,
    rates: Sequence[float] = FAULT_RATES_PER_S,
    seed: Optional[int] = None,
) -> AblationResult:
    """Sweep failure rates across the four online/batch schedulers.

    Args:
        scale: Trace/disk scale factor (defaults to the campaign scale).
        rates: Failure rates in per-disk failures per simulated second;
            must include 0.0 first for the no-fault reference column.
        seed: Base RNG seed (defaults to the campaign seed).
    """
    availability: Dict[str, List[float]] = {}
    energy: Dict[str, List[float]] = {}
    response: Dict[str, List[float]] = {}
    lost: Dict[str, List[float]] = {}
    events = 0
    for key in SWEEP_SCHEDULERS:
        label = common.SCHEDULER_LABELS[key]
        availability[label] = []
        energy[label] = []
        response[label] = []
        lost[label] = []
        for rate in rates:
            result = common.run_cell(
                SWEEP_TRACE,
                SWEEP_REPLICATION,
                key,
                scale=scale,
                seed=seed,
                fault_rate=rate,
            )
            report = result.report
            events += report.events_processed
            avail = report.availability
            availability[label].append(
                1.0 if avail is None else avail.availability
            )
            lost[label].append(
                0.0
                if avail is None
                else avail.loss_fraction(report.requests_offered)
            )
            energy[label].append(result.normalized_energy)
            response[label].append(result.mean_response_time)
    return AblationResult(
        ablation_id="fault_sweep",
        title=(
            f"fault sweep ({SWEEP_TRACE}, rf={SWEEP_REPLICATION}, "
            f"permanent failures)"
        ),
        panels=[
            Panel(
                name="fault sweep: availability (fraction of disk-seconds)",
                x_label="failures/disk/s",
                x_values=list(rates),
                series=availability,
                precision=4,
            ),
            Panel(
                name="fault sweep: lost requests (fraction of offered)",
                x_label="failures/disk/s",
                x_values=list(rates),
                series=lost,
                precision=4,
            ),
            Panel(
                name="fault sweep: energy vs always-on",
                x_label="failures/disk/s",
                x_values=list(rates),
                series=energy,
            ),
            Panel(
                name="fault sweep: mean response (s)",
                x_label="failures/disk/s",
                x_values=list(rates),
                series=response,
            ),
        ],
        events_processed=events,
    )
