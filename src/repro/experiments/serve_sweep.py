"""Serve sweep: online vs micro-batch dispatch across arrival rates.

The serving-layer reading of the paper's central comparison (Figs. 5-7):
the same two non-clairvoyant schedulers, but driven by live Poisson
arrivals through :class:`~repro.serve.service.SchedulingService` instead
of a replayed trace. Every cell is one deterministic virtual-clock
session, so the sweep is byte-reproducible at a fixed seed.

Expected curve shapes:

* energy per request *falls* with the arrival rate for both policies
  (spin-up cost and idle power amortise over more requests);
* micro-batch spends less energy than online at moderate-to-high rates —
  whole windows dispatch through the weighted-set-cover model, which
  concentrates load on fewer disks and lets the rest sleep;
* micro-batch pays for it in response time: p95 grows by roughly the
  window length, the same latency-for-energy trade the paper's batch
  model makes against its online model;
* the completed fraction stays at 1.0 everywhere below saturation —
  admission control only sheds load under overload, which this sweep
  stays clear of.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.ablations import AblationResult, Panel
from repro.serve.clock import virtual_run
from repro.serve.loadgen import LoadgenConfig, LoadResult, run_load
from repro.serve.service import POLICIES, SchedulingService, ServiceConfig

#: Mean Poisson arrival rates (requests/second) of the sweep columns.
SERVE_RATES_PER_S: Tuple[float, ...] = (50.0, 100.0, 200.0)

#: Requests per cell: long enough that spin decisions dominate noise,
#: short enough that the whole sweep stays a few wall-seconds.
SERVE_REQUESTS = 4_000

#: Micro-batch window (seconds) of the sweep's batch column — the regime
#: where batching visibly beats per-request dispatch on energy.
SERVE_WINDOW_S = 1.0

#: Drain grace (seconds): bounds the final partial window at shutdown.
SERVE_DRAIN_GRACE_S = 2.0


def _run_cell(
    policy: str, rate_per_s: float, num_requests: int, seed: int
) -> Tuple[LoadResult, SchedulingService]:
    service = SchedulingService(
        ServiceConfig(policy=policy, seed=seed, window_s=SERVE_WINDOW_S)
    )
    load = LoadgenConfig(
        num_requests=num_requests, rate_per_s=rate_per_s, seed=seed * 31 + 7
    )

    async def go() -> LoadResult:
        return await run_load(service, load, drain_grace_s=SERVE_DRAIN_GRACE_S)

    return virtual_run(go()), service


def run_serve_sweep(
    scale: Optional[float] = None,
    rates: Sequence[float] = SERVE_RATES_PER_S,
    seed: int = 3,
) -> AblationResult:
    """Sweep arrival rates across both serving policies.

    Args:
        scale: Optional multiplier on the per-cell request count (the
            bench tier's usual knob; ``None`` = 1.0).
        rates: Mean Poisson arrival rates in requests/second.
        seed: Service + workload base seed.
    """
    num_requests = max(1, round(SERVE_REQUESTS * (scale if scale else 1.0)))
    energy_per_request: Dict[str, List[float]] = {}
    p95_response_s: Dict[str, List[float]] = {}
    completed_fraction: Dict[str, List[float]] = {}
    events = 0
    for policy in POLICIES:
        energy_per_request[policy] = []
        p95_response_s[policy] = []
        completed_fraction[policy] = []
        for rate in rates:
            result, service = _run_cell(policy, rate, num_requests, seed)
            snapshot = service.metrics_snapshot()
            events += service.backend.events_processed
            gauges = snapshot["gauges"]
            histograms = snapshot["histograms"]
            joules = float(gauges["energy.joules"])  # type: ignore[arg-type]
            completed = max(1, result.completed)
            energy_per_request[policy].append(joules / completed)
            response = histograms["response_s"]
            assert isinstance(response, dict)
            p95_response_s[policy].append(float(response["p95"]))
            completed_fraction[policy].append(result.completed_fraction)
    return AblationResult(
        ablation_id="serve_sweep",
        title=(
            f"serve sweep (poisson arrivals, {num_requests} requests, "
            f"window {SERVE_WINDOW_S}s, virtual clock)"
        ),
        panels=[
            Panel(
                name="serve sweep: energy per completed request (J)",
                x_label="arrivals/s",
                x_values=list(rates),
                series=energy_per_request,
                precision=3,
            ),
            Panel(
                name="serve sweep: p95 response time (s)",
                x_label="arrivals/s",
                x_values=list(rates),
                series=p95_response_s,
                precision=4,
            ),
            Panel(
                name="serve sweep: completed fraction of offered",
                x_label="arrivals/s",
                x_values=list(rates),
                series=completed_fraction,
                precision=4,
            ),
        ],
        events_processed=events,
    )


__all__ = [
    "SERVE_RATES_PER_S",
    "SERVE_REQUESTS",
    "SERVE_WINDOW_S",
    "run_serve_sweep",
]
