"""Placement schemes: how data items are laid out over disks.

The paper's evaluation scheme (Section 4.2):

* the **original** location of each data item is drawn from a Zipf-like
  distribution over disks (exponent ``z``, rank-to-disk mapping shuffled),
  modelling either naturally skewed locality (observed in Cello) or the
  output of a popularity-packing placement technique;
* **replica** locations are drawn uniformly over the remaining disks, the
  common fault-tolerance layout.

:class:`UniformPlacement` (everything uniform) is the ``z = 0`` corner of
the Appendix A.1 study and is provided both for that sweep and as a
baseline scheme.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError, PlacementError
from repro.placement.catalog import PlacementCatalog
from repro.placement.zipf import ZipfSampler, rank_permutation
from repro.types import DataId, DiskId


class PlacementScheme(ABC):
    """Factory producing a :class:`PlacementCatalog` for a data population."""

    @abstractmethod
    def place(
        self, data_ids: Sequence[DataId], num_disks: int, rng: random.Random
    ) -> PlacementCatalog:
        """Assign every data item its ordered location list."""


def _validate(num_disks: int, replication_factor: int) -> None:
    if num_disks <= 0:
        raise ConfigurationError("num_disks must be positive")
    if replication_factor <= 0:
        raise ConfigurationError("replication_factor must be positive")
    if replication_factor > num_disks:
        raise PlacementError(
            f"replication factor {replication_factor} exceeds disk count {num_disks}"
        )


class ZipfOriginalUniformReplicas(PlacementScheme):
    """The paper's scheme: Zipf(z) originals, uniform replicas.

    Args:
        replication_factor: Total copies per data item (1 = no replicas).
        zipf_exponent: ``z`` of the original-location distribution; the
            paper uses 1.0 in the main evaluation and sweeps 0..1 in
            Appendix A.1.
    """

    def __init__(self, replication_factor: int = 1, zipf_exponent: float = 1.0):
        if replication_factor <= 0:
            raise ConfigurationError("replication_factor must be positive")
        if zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be >= 0")
        self.replication_factor = replication_factor
        self.zipf_exponent = zipf_exponent

    def place(
        self, data_ids: Sequence[DataId], num_disks: int, rng: random.Random
    ) -> PlacementCatalog:
        _validate(num_disks, self.replication_factor)
        sampler = ZipfSampler(num_disks, self.zipf_exponent)
        rank_to_disk = rank_permutation(num_disks, rng)
        locations: Dict[DataId, List[DiskId]] = {}
        for data_id in data_ids:
            original = rank_to_disk[sampler.sample(rng)]
            disks = [original]
            disks.extend(
                _uniform_distinct(rng, num_disks, self.replication_factor - 1, disks)
            )
            locations[data_id] = disks
        return PlacementCatalog(locations)


class UniformPlacement(PlacementScheme):
    """All copies (original included) uniform over disks without repeats."""

    def __init__(self, replication_factor: int = 1):
        if replication_factor <= 0:
            raise ConfigurationError("replication_factor must be positive")
        self.replication_factor = replication_factor

    def place(
        self, data_ids: Sequence[DataId], num_disks: int, rng: random.Random
    ) -> PlacementCatalog:
        _validate(num_disks, self.replication_factor)
        locations: Dict[DataId, List[DiskId]] = {}
        for data_id in data_ids:
            locations[data_id] = _uniform_distinct(
                rng, num_disks, self.replication_factor, []
            )
        return PlacementCatalog(locations)


class PackedPlacement(PlacementScheme):
    """Popularity-packing placement (the data-placement family of related
    work, e.g. Pinheiro & Bianchini): data items are packed onto the fewest
    disks in popularity order, replicas uniform.

    Data items are assumed sorted by descending popularity (the synthetic
    generators emit ids in that order); each disk takes ``items_per_disk``
    originals before the next disk is opened.
    """

    def __init__(self, replication_factor: int = 1, items_per_disk: int = 256):
        if replication_factor <= 0:
            raise ConfigurationError("replication_factor must be positive")
        if items_per_disk <= 0:
            raise ConfigurationError("items_per_disk must be positive")
        self.replication_factor = replication_factor
        self.items_per_disk = items_per_disk

    def place(
        self, data_ids: Sequence[DataId], num_disks: int, rng: random.Random
    ) -> PlacementCatalog:
        _validate(num_disks, self.replication_factor)
        locations: Dict[DataId, List[DiskId]] = {}
        for index, data_id in enumerate(data_ids):
            original = min(index // self.items_per_disk, num_disks - 1)
            disks = [original]
            disks.extend(
                _uniform_distinct(rng, num_disks, self.replication_factor - 1, disks)
            )
            locations[data_id] = disks
        return PlacementCatalog(locations)


def _uniform_distinct(
    rng: random.Random, num_disks: int, count: int, exclude: Sequence[DiskId]
) -> List[DiskId]:
    """Draw ``count`` distinct disks uniformly, avoiding ``exclude``."""
    if count == 0:
        return []
    available = [disk for disk in range(num_disks) if disk not in set(exclude)]
    if count > len(available):
        raise PlacementError(
            f"cannot pick {count} distinct disks from {len(available)} remaining"
        )
    return rng.sample(available, count)
