"""Data placement: Zipf samplers, catalogs, placement schemes."""

from repro.placement.catalog import PlacementCatalog
from repro.placement.covering import covering_subset
from repro.placement.schemes import (
    PackedPlacement,
    PlacementScheme,
    UniformPlacement,
    ZipfOriginalUniformReplicas,
)
from repro.placement.zipf import ZipfSampler, rank_permutation, zipf_probabilities

__all__ = [
    "PackedPlacement",
    "PlacementCatalog",
    "PlacementScheme",
    "UniformPlacement",
    "ZipfOriginalUniformReplicas",
    "ZipfSampler",
    "covering_subset",
    "rank_permutation",
    "zipf_probabilities",
]
