"""Placement catalog: the paper's ``L`` — data item -> ordered disk list.

The first location of each data item is its *original* location (the one
Static always uses); subsequent entries are *replica* locations. The
catalog is immutable once built, mirroring the paper's assumption that the
scheduler never moves data — it only chooses among existing locations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import PlacementError
from repro.types import DataId, DiskId


class PlacementCatalog:
    """Immutable map from data items to their replica locations."""

    def __init__(self, locations: Mapping[DataId, Sequence[DiskId]]):
        frozen: Dict[DataId, Tuple[DiskId, ...]] = {}
        for data_id, disks in locations.items():
            disk_tuple = tuple(disks)
            if not disk_tuple:
                raise PlacementError(f"data {data_id} has no locations")
            if len(set(disk_tuple)) != len(disk_tuple):
                raise PlacementError(
                    f"data {data_id} has duplicate locations {disk_tuple}"
                )
            frozen[data_id] = disk_tuple
        self._locations = frozen

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, data_id: DataId) -> bool:
        return data_id in self._locations

    def __iter__(self) -> Iterator[DataId]:
        return iter(self._locations)

    def locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """All disks holding ``data_id`` (original first)."""
        try:
            return self._locations[data_id]
        except KeyError:
            raise PlacementError(f"unknown data id {data_id}")

    def mapping(self) -> Mapping[DataId, Tuple[DiskId, ...]]:
        """The full ``data_id -> locations`` map, for hot-path lookups.

        Returned by reference (the catalog is immutable by convention);
        callers must treat it as read-only. The storage layer uses this
        to resolve placements with one dict access per request instead of
        a method call + guarded lookup.
        """
        return self._locations

    def original(self, data_id: DataId) -> DiskId:
        """The original location (Static's choice)."""
        return self.locations(data_id)[0]

    def replicas(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Replica locations (everything but the original)."""
        return self.locations(data_id)[1:]

    def replication_factor(self, data_id: DataId) -> int:
        """Number of copies of ``data_id`` (original included)."""
        return len(self.locations(data_id))

    @property
    def disks(self) -> Tuple[DiskId, ...]:
        """Every disk referenced by at least one data item, sorted."""
        seen = set()
        for disks in self._locations.values():
            seen.update(disks)
        return tuple(sorted(seen))

    def data_on_disk(self, disk_id: DiskId) -> Tuple[DataId, ...]:
        """All data items with a copy on ``disk_id`` (sorted)."""
        return tuple(
            sorted(
                data_id
                for data_id, disks in self._locations.items()
                if disk_id in disks
            )
        )

    def load_share(self, weights: Mapping[DataId, float]) -> Dict[DiskId, float]:
        """Original-location weight landing on each disk.

        Used by placement analyses: with ``weights`` = per-data access
        counts, this is the request share Static sends to each disk.
        """
        share: Dict[DiskId, float] = {}
        for data_id, weight in weights.items():
            disk = self.original(data_id)
            share[disk] = share.get(disk, 0.0) + weight
        return share

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[DataId, Sequence[DiskId]]]
    ) -> "PlacementCatalog":
        return cls(dict(pairs))
