"""Covering subsets: minimal always-on disk groups.

The paper's related work (Leverich & Kozyrakis; Lang & Patel) keeps a
*covering subset* of nodes — a minimal group of disks that together hold
at least one replica of every data item — always on, so the remainder can
sleep without ever losing availability. :func:`covering_subset` computes
such a subset greedily; :class:`repro.core.covering_scheduler.
CoveringSetScheduler` combines it with the paper's cost function, the
combination Section 1 suggests.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.errors import PlacementError
from repro.placement.catalog import PlacementCatalog
from repro.types import DataId, DiskId


def covering_subset(
    catalog: PlacementCatalog,
    weights: Optional[Mapping[DataId, float]] = None,
) -> List[DiskId]:
    """Greedy minimal set of disks covering every data item.

    Args:
        catalog: The placement to cover.
        weights: Optional per-data access weights; when given, the greedy
            picks the disk covering the most *weight* per step, so the
            hottest data anchors the earliest (always-on) disks.

    Returns:
        Disk ids in pick order (most-covering first).
    """
    uncovered: Set[DataId] = set(catalog)
    if not uncovered:
        return []
    coverage: Dict[DiskId, Set[DataId]] = {}
    for data_id in catalog:
        for disk_id in catalog.locations(data_id):
            coverage.setdefault(disk_id, set()).add(data_id)

    def gain(disk_id: DiskId) -> float:
        new = coverage[disk_id] & uncovered
        if weights is None:
            return float(len(new))
        return sum(weights.get(data_id, 1.0) for data_id in new)

    chosen: List[DiskId] = []
    while uncovered:
        best = max(
            (disk_id for disk_id in coverage if coverage[disk_id] & uncovered),
            key=lambda disk_id: (gain(disk_id), -disk_id),
            default=None,
        )
        if best is None:
            raise PlacementError("catalog cannot be covered (orphan data)")
        chosen.append(best)
        uncovered -= coverage[best]
    return chosen
