"""Zipf and Zipf-like samplers.

The paper places *original* data locations by a Zipf-like law over disk
ranks: the probability of choosing the rank-``r`` disk is ``p = c / r^z``
(Section 4.2), with ``z`` swept from 0 (uniform) to 1 (true Zipf) in the
Appendix A.1 placement study. The same family models block popularity in
the synthetic traces (web-style skew, Breslau et al.).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence

from repro.errors import ConfigurationError


class ZipfSampler:
    """Samples ranks ``0 .. n-1`` with ``P(rank r) ∝ 1 / (r+1)^z``.

    ``z = 0`` degenerates to the uniform distribution; ``z = 1`` is the
    classic Zipf law. Sampling is O(log n) via a precomputed CDF.
    """

    def __init__(self, n: int, exponent: float):
        if n <= 0:
            raise ConfigurationError(f"population size must be positive, got {n}")
        if exponent < 0:
            raise ConfigurationError(f"zipf exponent must be >= 0, got {exponent}")
        self._n = n
        self._exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        self._cdf: List[float] = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    @property
    def n(self) -> int:
        return self._n

    @property
    def exponent(self) -> float:
        return self._exponent

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        if not 0 <= rank < self._n:
            raise ConfigurationError(f"rank {rank} out of range [0, {self._n})")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return (self._cdf[rank] - low) / self._total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        u = rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent ranks."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        return [self.sample(rng) for _ in range(count)]


def zipf_probabilities(n: int, exponent: float) -> List[float]:
    """The full probability vector of a ZipfSampler (testing/analysis)."""
    sampler = ZipfSampler(n, exponent)
    return [sampler.probability(rank) for rank in range(n)]


def rank_permutation(n: int, rng: random.Random) -> List[int]:
    """Random bijection rank -> item so rank 0 isn't always item 0.

    The paper ranks *disks*; which physical disk holds rank 0 is arbitrary,
    so placements shuffle the identity of ranks with this helper.
    """
    permutation = list(range(n))
    rng.shuffle(permutation)
    return permutation


def empirical_ranks(samples: Sequence[int], n: int) -> List[int]:
    """Histogram of samples over ``0..n-1`` (testing helper)."""
    counts = [0] * n
    for sample in samples:
        counts[sample] += 1
    return counts
